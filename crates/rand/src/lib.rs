//! A minimal, API-compatible stand-in for the `rand` crate, so the
//! workspace builds without network access.
//!
//! Provides `rand::rngs::StdRng`, [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over `f64` ranges — the surface `sb-sims` uses for
//! its seeded thermostat noise. The generator is xoshiro256++ seeded via
//! SplitMix64; streams are deterministic per seed (which is all the
//! reproducibility tests require) but not bit-identical to upstream rand.

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[range.start, range.end)`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

pub mod rngs {
    //! Standard generators.

    use super::{Rng, SeedableRng};

    /// The default deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < -0.9 && hi > 0.9, "samples should span the range");
    }
}
