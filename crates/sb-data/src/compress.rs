//! A dependency-free LZ77 block codec for wire payloads.
//!
//! The TCP transport's protocol v2 can compress each chunk payload before
//! framing it (`sb_stream::tcp::TcpOptions::with_compression`). Simulation
//! payloads are heavily structured — constant fields, smooth gradients,
//! zero-padded halos — so even a byte-oriented LZ with a 64 KiB window
//! routinely collapses them by an order of magnitude, and the decoder costs
//! a fraction of the socket write it saves.
//!
//! The format is the classic token stream of LZ4-style codecs:
//!
//! ```text
//! block    := sequence* | final_literals
//! sequence := token | lit_ext* | literal bytes | u16-LE offset | match_ext*
//! token    := (literal_len: high nibble) | (match_len - 4: low nibble)
//! ```
//!
//! A nibble of 15 spills into extension bytes (each `0xff` adds 255, the
//! first other byte terminates). Matches are at least [`MIN_MATCH`] bytes
//! and reference up to [`MAX_OFFSET`] bytes back; a match may overlap its
//! own output (offset < length), which is how runs compress. The final
//! sequence carries literals only — the input simply ends after them.
//!
//! Decoding is total: corrupt input yields a [`DataError::Container`],
//! never a panic, and the output allocation is bounded by the caller's
//! `expected_len` (which the wire layer derives from the already-validated
//! chunk header, not from the compressed bytes).

use crate::error::{DataError, DataResult};

/// Shortest encodable match.
const MIN_MATCH: usize = 4;
/// Farthest back a match may reach (u16 offset, 0 is invalid).
const MAX_OFFSET: usize = u16::MAX as usize;
/// Log2 of the compressor's hash-table size.
const HASH_BITS: u32 = 14;

/// Multiplicative hash of a 4-byte prefix into the match table.
#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn load4(input: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([input[i], input[i + 1], input[i + 2], input[i + 3]])
}

/// Length of the common prefix of `input[a..]` and `input[b..]`, capped so
/// the match never runs past the end of input. Compares a word at a time.
fn common_prefix(input: &[u8], a: usize, b: usize) -> usize {
    let max = input.len() - b;
    let mut k = 0;
    while k + 8 <= max {
        let x = u64::from_le_bytes(input[a + k..a + k + 8].try_into().expect("8-byte window"));
        let y = u64::from_le_bytes(input[b + k..b + k + 8].try_into().expect("8-byte window"));
        if x != y {
            return k + ((x ^ y).trailing_zeros() / 8) as usize;
        }
        k += 8;
    }
    while k < max && input[a + k] == input[b + k] {
        k += 1;
    }
    k
}

/// Appends a nibble-spilled length extension (LZ4 convention).
fn put_ext(out: &mut Vec<u8>, mut v: usize) {
    while v >= 255 {
        out.push(0xff);
        v -= 255;
    }
    out.push(v as u8);
}

/// Emits one sequence: `literals`, then optionally a match of `mlen` bytes
/// at `offset` back.
fn put_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit = literals.len();
    let mnib = m.map_or(0, |(mlen, _)| (mlen - MIN_MATCH).min(15));
    out.push(((lit.min(15) as u8) << 4) | mnib as u8);
    if lit >= 15 {
        put_ext(out, lit - 15);
    }
    out.extend_from_slice(literals);
    if let Some((mlen, offset)) = m {
        out.extend_from_slice(&(offset as u16).to_le_bytes());
        if mlen - MIN_MATCH >= 15 {
            put_ext(out, mlen - MIN_MATCH - 15);
        }
    }
}

/// Compresses `input` into a fresh buffer.
///
/// Always succeeds; incompressible input comes back slightly larger (one
/// token per 15-byte literal run). Callers that care — the wire layer does —
/// compare lengths and keep the raw bytes instead.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 4 + 16);
    if n < MIN_MATCH + 1 {
        put_sequence(&mut out, input, None);
        return out;
    }
    // Position+1 of the latest occurrence of each hashed 4-byte prefix;
    // 0 means empty, so the table needs no initialization sentinel logic.
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut i = 0;
    let mut lit_start = 0;
    // Leave the last few bytes for the final literal run so match
    // extension never needs a bounds branch per byte.
    while i + MIN_MATCH <= n {
        let h = hash4(load4(input, i));
        let cand = table[h] as usize;
        if let Some(slot) = table_slot(i) {
            table[h] = slot;
        }
        if cand > 0 {
            let c = cand - 1;
            if i - c <= MAX_OFFSET && load4(input, c) == load4(input, i) {
                let mlen = MIN_MATCH + common_prefix(input, c + MIN_MATCH, i + MIN_MATCH);
                put_sequence(&mut out, &input[lit_start..i], Some((mlen, i - c)));
                i += mlen;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    put_sequence(&mut out, &input[lit_start..], None);
    out
}

/// The hash-table slot encoding for a match candidate at byte position `i`,
/// or `None` when the position is not representable.
///
/// Slots store `i + 1` in a `u32` (0 is the empty sentinel), so the last
/// indexable position is `u32::MAX - 1`. Past that a plain `as u32` cast
/// would silently wrap and alias a low position — a later probe would then
/// "match" against unrelated bytes ~4 GiB away and corrupt the stream. Not
/// storing the slot instead degrades inputs beyond 4 GiB to literal runs,
/// which stay byte-exact.
#[inline]
fn table_slot(i: usize) -> Option<u32> {
    u32::try_from(i.checked_add(1)?).ok()
}

/// Reads a nibble-spilled length extension.
fn get_ext(input: &[u8], i: &mut usize, base: usize) -> DataResult<usize> {
    let mut v = base;
    loop {
        let b = *input.get(*i).ok_or_else(|| corrupt("length extension"))?;
        *i += 1;
        v += b as usize;
        if b != 0xff {
            return Ok(v);
        }
    }
}

fn corrupt(what: &str) -> DataError {
    DataError::Container {
        detail: format!("corrupt compressed block: {what}"),
    }
}

/// Decompresses a block produced by [`lz_compress`].
///
/// `expected_len` is the exact decompressed size the caller already knows
/// from validated framing; it bounds the output allocation, and any block
/// that decodes to a different length is rejected.
pub fn lz_decompress(input: &[u8], expected_len: usize) -> DataResult<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut i = 0;
    loop {
        let token = *input.get(i).ok_or_else(|| corrupt("missing token"))?;
        i += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit = get_ext(input, &mut i, 15)?;
        }
        if input.len() - i < lit {
            return Err(corrupt("literal run past end of block"));
        }
        if out.len() + lit > expected_len {
            return Err(corrupt("literal run past expected length"));
        }
        out.extend_from_slice(&input[i..i + lit]);
        i += lit;
        if i == input.len() {
            break; // the final sequence is literals-only
        }
        if input.len() - i < 2 {
            return Err(corrupt("missing match offset"));
        }
        let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
        i += 2;
        if offset == 0 || offset > out.len() {
            return Err(corrupt("match offset before start of output"));
        }
        let mut mlen = MIN_MATCH + (token & 0x0f) as usize;
        if token & 0x0f == 15 {
            mlen = get_ext(input, &mut i, mlen)?;
        }
        if out.len() + mlen > expected_len {
            return Err(corrupt("match run past expected length"));
        }
        // Overlapping matches (offset < length) replicate recent output;
        // copy in doubling runs so constant payloads decode word-fast.
        let start = out.len() - offset;
        let mut remaining = mlen;
        while remaining > 0 {
            let avail = out.len() - start;
            let take = remaining.min(avail);
            out.extend_from_within(start..start + take);
            remaining -= take;
        }
    }
    if out.len() != expected_len {
        return Err(corrupt("block shorter than expected length"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let packed = lz_compress(data);
        lz_decompress(&packed, data.len()).expect("round trip")
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"abcd", b"abcde"] {
            assert_eq!(round_trip(data), data);
        }
    }

    #[test]
    fn constant_payload_collapses() {
        let ones: Vec<u8> = 1.0f64.to_le_bytes().repeat(64 * 1024 / 8);
        let packed = lz_compress(&ones);
        assert!(
            packed.len() < ones.len() / 50,
            "constant payload compressed to {} of {}",
            packed.len(),
            ones.len()
        );
        assert_eq!(lz_decompress(&packed, ones.len()).unwrap(), ones);
    }

    #[test]
    fn structured_and_random_ish_payloads_round_trip() {
        // Smooth gradient (compressible exponent bytes), then a splitmix
        // stream (incompressible) — both must round-trip bit-exactly.
        let gradient: Vec<u8> = (0..8192)
            .flat_map(|i| ((i as f64) * 0.001).to_le_bytes())
            .collect();
        assert_eq!(round_trip(&gradient), gradient);

        let mut x = 0x9e3779b97f4a7c15u64;
        let noise: Vec<u8> = (0..8192)
            .flat_map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x.to_le_bytes()
            })
            .collect();
        let packed = lz_compress(&noise);
        assert_eq!(lz_decompress(&packed, noise.len()).unwrap(), noise);
    }

    #[test]
    fn long_literal_and_match_extensions_round_trip() {
        // >15 literals forces the literal extension; a 5000-byte run forces
        // multi-byte match extensions and the overlapping-copy path.
        let mut data = Vec::new();
        data.extend((0u16..300).flat_map(|v| v.to_le_bytes()));
        data.extend(std::iter::repeat_n(0x42u8, 5000));
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn corrupt_blocks_error_never_panic() {
        let data: Vec<u8> = 7.5f64.to_le_bytes().repeat(512);
        let clean = lz_compress(&data);
        for cut in 0..clean.len() {
            let _ = lz_decompress(&clean[..cut], data.len());
        }
        for i in 0..clean.len() {
            for flip in [0xffu8, 0x01] {
                let mut bad = clean.clone();
                bad[i] ^= flip;
                let _ = lz_decompress(&bad, data.len());
            }
        }
        // Wrong expected length is rejected, not padded or truncated.
        assert!(lz_decompress(&clean, data.len() + 1).is_err());
        assert!(lz_decompress(&clean, data.len().saturating_sub(1)).is_err());
    }

    #[test]
    fn table_slot_guards_the_4gib_boundary() {
        // Regression for the silent `(i + 1) as u32` wrap: past the last
        // representable position the slot must be withheld (literal-run
        // fallback), never aliased onto a low position. Exercised by
        // injecting the boundary indices directly — no 4 GiB allocation.
        assert_eq!(table_slot(0), Some(1));
        assert_eq!(table_slot(u32::MAX as usize - 1), Some(u32::MAX));
        // i + 1 == 2^32: the old cast produced 0 — the *empty* sentinel —
        // erasing a real candidate; now it is simply not stored.
        assert_eq!(table_slot(u32::MAX as usize), None);
        // i + 1 == 2^32 + 5: the old cast produced 5, a match candidate at
        // byte 4 — unrelated data ~4 GiB away. Must not be representable.
        assert_eq!(table_slot(u32::MAX as usize + 5), None);
        assert_eq!(table_slot(usize::MAX), None);
    }

    #[test]
    fn adversarial_lengths_cannot_overallocate() {
        // A token claiming a huge literal/match run must fail the bounds
        // check, not allocate: expected_len caps the output buffer.
        let bad = [0xf0u8, 0xff, 0xff, 0xff, 0xff, 0x10];
        assert!(lz_decompress(&bad, 16).is_err());
        let bad_match = [0x0fu8, 0x01, 0x00, 0xff, 0xff, 0x00];
        assert!(lz_decompress(&bad_match, 8).is_err());
    }
}
