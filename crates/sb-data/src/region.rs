//! Bounding boxes and block copies — the MxN redistribution primitive.
//!
//! ADIOS lets every reading process declare a bounding box of the global
//! array; FlexPath then assembles that box from however many writers hold
//! pieces of it. The algebra needed for that — intersection, containment,
//! rebasing, and strided block copies between differently shaped buffers —
//! lives here.

use crate::buffer::Buffer;
use crate::dims::Shape;
use crate::error::{DataError, DataResult};

/// An axis-aligned box in the index space of a global array:
/// `offset[i] .. offset[i] + count[i]` along each dimension.
///
/// ```
/// use sb_data::Region;
/// let a = Region::new(vec![0, 0], vec![4, 4]);
/// let b = Region::new(vec![2, 2], vec![4, 4]);
/// let i = a.intersect(&b).unwrap();
/// assert_eq!(i, Region::new(vec![2, 2], vec![2, 2]));
/// assert!(a.contains(&i));
/// assert_eq!(i.relative_to(&a).offset(), &[2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    offset: Vec<usize>,
    count: Vec<usize>,
}

impl Region {
    /// Builds a region; `offset` and `count` must have equal rank.
    pub fn new(offset: Vec<usize>, count: Vec<usize>) -> Region {
        assert_eq!(offset.len(), count.len(), "region rank mismatch");
        Region { offset, count }
    }

    /// The region covering all of `shape`.
    pub fn whole(shape: &Shape) -> Region {
        Region {
            offset: vec![0; shape.ndims()],
            count: shape.sizes(),
        }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.offset.len()
    }

    /// Per-dimension start coordinates.
    pub fn offset(&self) -> &[usize] {
        &self.offset
    }

    /// Per-dimension extents.
    pub fn count(&self) -> &[usize] {
        &self.count
    }

    /// First coordinate past the end along dimension `i`.
    pub fn end(&self, i: usize) -> usize {
        self.offset[i] + self.count[i]
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.count.iter().product()
    }

    /// True when any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.count.contains(&0)
    }

    /// Checks that the region fits inside `shape`.
    pub fn validate(&self, shape: &Shape) -> DataResult<()> {
        if self.ndims() != shape.ndims() {
            return Err(DataError::RegionOutOfBounds {
                detail: format!(
                    "region rank {} does not match shape rank {}",
                    self.ndims(),
                    shape.ndims()
                ),
            });
        }
        for i in 0..self.ndims() {
            let end = self.offset[i].checked_add(self.count[i]).ok_or_else(|| {
                DataError::RegionOutOfBounds {
                    detail: format!("dim {i}: offset + count overflows usize"),
                }
            })?;
            if end > shape.size(i) {
                return Err(DataError::RegionOutOfBounds {
                    detail: format!(
                        "dim {i}: {}..{end} exceeds extent {}",
                        self.offset[i],
                        shape.size(i)
                    ),
                });
            }
        }
        Ok(())
    }

    /// The overlap of two regions, or `None` when they are disjoint (or
    /// overlap in zero volume).
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        assert_eq!(self.ndims(), other.ndims(), "region rank mismatch");
        let mut offset = Vec::with_capacity(self.ndims());
        let mut count = Vec::with_capacity(self.ndims());
        for i in 0..self.ndims() {
            let lo = self.offset[i].max(other.offset[i]);
            let hi = self.end(i).min(other.end(i));
            if hi <= lo {
                return None;
            }
            offset.push(lo);
            count.push(hi - lo);
        }
        Some(Region { offset, count })
    }

    /// True when `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Region) -> bool {
        assert_eq!(self.ndims(), other.ndims(), "region rank mismatch");
        (0..self.ndims()).all(|i| other.offset[i] >= self.offset[i] && other.end(i) <= self.end(i))
    }

    /// True when the point `idx` lies inside the region.
    pub fn contains_point(&self, idx: &[usize]) -> bool {
        assert_eq!(self.ndims(), idx.len(), "point rank mismatch");
        (0..self.ndims()).all(|i| idx[i] >= self.offset[i] && idx[i] < self.end(i))
    }

    /// Rebases this region into the local coordinates of `outer` (which must
    /// contain it): the result's offsets are `self.offset - outer.offset`.
    pub fn relative_to(&self, outer: &Region) -> Region {
        assert!(
            outer.contains(self),
            "relative_to: {self:?} not contained in {outer:?}"
        );
        Region {
            offset: self
                .offset
                .iter()
                .zip(&outer.offset)
                .map(|(a, b)| a - b)
                .collect(),
            count: self.count.clone(),
        }
    }

    /// True when this region is a *row slab* of `outer`: it spans `outer`'s
    /// full extent in every dimension except the outermost, where it covers
    /// a contained subrange.
    ///
    /// A row slab occupies one contiguous row-major run of the buffer laid
    /// out over `outer` — the condition under which a reader can assemble
    /// its box by plain appends (no zero-fill, no strided scatter). Every
    /// 1-d decomposition chunk is a row slab of both its own region and any
    /// request it helps cover.
    pub fn is_row_slab_of(&self, outer: &Region) -> bool {
        assert_eq!(self.ndims(), outer.ndims(), "region rank mismatch");
        if self.ndims() == 0 {
            return true;
        }
        if self.offset[0] < outer.offset[0] || self.end(0) > outer.end(0) {
            return false;
        }
        (1..self.ndims())
            .all(|d| self.offset[d] == outer.offset[d] && self.count[d] == outer.count[d])
    }

    /// The local shape of a buffer covering exactly this region, reusing the
    /// dimension names of `global`.
    pub fn local_shape(&self, global: &Shape) -> Shape {
        assert_eq!(self.ndims(), global.ndims(), "region rank mismatch");
        Shape::new(
            global
                .dims()
                .iter()
                .zip(&self.count)
                .map(|(d, &c)| crate::dims::Dim::new(d.name.clone(), c))
                .collect(),
        )
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for i in 0..self.ndims() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}..{}", self.offset[i], self.end(i))?;
        }
        write!(f, ")")
    }
}

/// Copies the global region `xfer` from a source buffer covering `src_box`
/// into a destination buffer covering `dst_box`.
///
/// Both buffers are row-major over their own box extents. `xfer` must be
/// contained in both boxes; the innermost dimension is copied as contiguous
/// runs. This single function implements the data movement of the FlexPath
/// MxN exchange.
pub fn copy_region(
    src: &Buffer,
    src_box: &Region,
    dst: &mut Buffer,
    dst_box: &Region,
    xfer: &Region,
) -> DataResult<()> {
    let ndims = xfer.ndims();
    if !src_box.contains(xfer) || !dst_box.contains(xfer) {
        return Err(DataError::RegionOutOfBounds {
            detail: format!("transfer {xfer} not contained in src {src_box} / dst {dst_box}"),
        });
    }
    if src.len() != src_box.len() || dst.len() != dst_box.len() {
        return Err(DataError::ShapeMismatch {
            data_len: src.len(),
            shape_len: src_box.len(),
        });
    }
    if xfer.is_empty() {
        return Ok(());
    }
    let src_local = xfer.relative_to(src_box);
    let dst_local = xfer.relative_to(dst_box);

    // Row-major strides of the two local buffers.
    let strides = |count: &[usize]| -> Vec<usize> {
        let mut s = vec![1usize; count.len()];
        for i in (0..count.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * count[i + 1];
        }
        s
    };
    let src_strides = strides(src_box.count());
    let dst_strides = strides(dst_box.count());

    if ndims == 0 {
        return dst.copy_from(0, src, 0, 1);
    }

    // Iterate an odometer over all but the last dimension; copy the last
    // dimension as one contiguous run.
    let run = xfer.count()[ndims - 1];
    let outer_dims = ndims - 1;
    let mut idx = vec![0usize; outer_dims];
    loop {
        let mut src_off = src_local.offset()[ndims - 1];
        let mut dst_off = dst_local.offset()[ndims - 1];
        for d in 0..outer_dims {
            src_off += (src_local.offset()[d] + idx[d]) * src_strides[d];
            dst_off += (dst_local.offset()[d] + idx[d]) * dst_strides[d];
        }
        dst.copy_from(dst_off, src, src_off, run)?;

        // Advance the odometer.
        let mut d = outer_dims;
        loop {
            if d == 0 {
                return Ok(());
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < xfer.count()[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DType;

    #[test]
    fn whole_and_len() {
        let s = Shape::of(&[("a", 3), ("b", 4)]);
        let r = Region::whole(&s);
        assert_eq!(r.offset(), &[0, 0]);
        assert_eq!(r.count(), &[3, 4]);
        assert_eq!(r.len(), 12);
        assert!(!r.is_empty());
        assert!(Region::new(vec![0], vec![0]).is_empty());
    }

    #[test]
    fn validate_against_shape() {
        let s = Shape::of(&[("a", 3), ("b", 4)]);
        assert!(Region::new(vec![1, 2], vec![2, 2]).validate(&s).is_ok());
        assert!(Region::new(vec![1, 2], vec![3, 2]).validate(&s).is_err());
        assert!(Region::new(vec![0], vec![3]).validate(&s).is_err());
    }

    #[test]
    fn intersection_cases() {
        let a = Region::new(vec![0, 0], vec![4, 4]);
        let b = Region::new(vec![2, 2], vec![4, 4]);
        assert_eq!(a.intersect(&b), Some(Region::new(vec![2, 2], vec![2, 2])));
        let c = Region::new(vec![4, 0], vec![1, 1]);
        assert_eq!(a.intersect(&c), None);
        // Touching edges do not overlap.
        let d = Region::new(vec![0, 4], vec![2, 2]);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn containment_and_rebase() {
        let outer = Region::new(vec![2, 3], vec![5, 5]);
        let inner = Region::new(vec![3, 4], vec![2, 2]);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        let rel = inner.relative_to(&outer);
        assert_eq!(rel, Region::new(vec![1, 1], vec![2, 2]));
        assert!(outer.contains_point(&[6, 7]));
        assert!(!outer.contains_point(&[7, 3]));
    }

    #[test]
    fn row_slab_detection() {
        let outer = Region::new(vec![0, 0], vec![8, 5]);
        // Full-width band of rows: a slab.
        assert!(Region::new(vec![2, 0], vec![3, 5]).is_row_slab_of(&outer));
        // The whole region is trivially a slab of itself.
        assert!(outer.is_row_slab_of(&outer));
        // Narrower than the inner extent: strided, not a slab.
        assert!(!Region::new(vec![2, 1], vec![3, 3]).is_row_slab_of(&outer));
        // Overhangs the outer row range.
        assert!(!Region::new(vec![6, 0], vec![3, 5]).is_row_slab_of(&outer));
        // 1-d: any contained subrange is a slab.
        let line = Region::new(vec![4], vec![10]);
        assert!(Region::new(vec![6], vec![3]).is_row_slab_of(&line));
        assert!(!Region::new(vec![2], vec![3]).is_row_slab_of(&line));
    }

    #[test]
    fn local_shape_reuses_names() {
        let g = Shape::of(&[("rows", 10), ("cols", 8)]);
        let r = Region::new(vec![2, 0], vec![3, 8]);
        let local = r.local_shape(&g);
        assert_eq!(local, Shape::of(&[("rows", 3), ("cols", 8)]));
    }

    /// Builds an f64 buffer whose element at global index (i, j, ...) of the
    /// covering box encodes that index, so copies can be verified exactly.
    fn tagged(bx: &Region) -> Buffer {
        let shape = Shape::new(
            bx.count()
                .iter()
                .map(|&c| crate::dims::Dim::new("d", c))
                .collect(),
        );
        let v: Vec<f64> = (0..bx.len())
            .map(|lin| {
                let local = shape.multi_index(lin);
                local
                    .iter()
                    .zip(bx.offset())
                    .fold(0.0, |acc, (a, b)| acc * 1000.0 + (a + b) as f64)
            })
            .collect();
        Buffer::F64(v)
    }

    #[test]
    fn copy_region_2d_exact() {
        let src_box = Region::new(vec![0, 0], vec![4, 6]);
        let dst_box = Region::new(vec![1, 2], vec![3, 4]);
        let xfer = Region::new(vec![1, 2], vec![2, 3]);
        let src = tagged(&src_box);
        let mut dst = Buffer::zeros(DType::F64, dst_box.len());
        copy_region(&src, &src_box, &mut dst, &dst_box, &xfer).unwrap();
        // Verify each transferred element landed at its global position.
        let expected = tagged(&dst_box);
        let dshape = Shape::of(&[("r", 3), ("c", 4)]);
        for lin in 0..dst_box.len() {
            let local = dshape.multi_index(lin);
            let global = [local[0] + 1, local[1] + 2];
            let inside = xfer.contains_point(&global);
            let got = dst.get_f64(lin);
            if inside {
                assert_eq!(got, expected.get_f64(lin), "at {global:?}");
            } else {
                assert_eq!(got, 0.0, "untouched at {global:?}");
            }
        }
    }

    #[test]
    fn copy_region_1d_and_0d() {
        let src_box = Region::new(vec![10], vec![5]);
        let dst_box = Region::new(vec![12], vec![6]);
        let xfer = Region::new(vec![12], vec![3]);
        let src = Buffer::F64(vec![10.0, 11.0, 12.0, 13.0, 14.0]);
        let mut dst = Buffer::zeros(DType::F64, 6);
        copy_region(&src, &src_box, &mut dst, &dst_box, &xfer).unwrap();
        assert_eq!(dst, Buffer::F64(vec![12.0, 13.0, 14.0, 0.0, 0.0, 0.0]));

        let point = Region::new(vec![], vec![]);
        let src = Buffer::F64(vec![7.0]);
        let mut dst = Buffer::F64(vec![0.0]);
        copy_region(&src, &point, &mut dst, &point, &point).unwrap();
        assert_eq!(dst, Buffer::F64(vec![7.0]));
    }

    #[test]
    fn copy_region_rejects_uncontained_transfer() {
        let src_box = Region::new(vec![0], vec![4]);
        let dst_box = Region::new(vec![0], vec![4]);
        let xfer = Region::new(vec![2], vec![4]);
        let src = Buffer::zeros(DType::F64, 4);
        let mut dst = Buffer::zeros(DType::F64, 4);
        assert!(copy_region(&src, &src_box, &mut dst, &dst_box, &xfer).is_err());
    }

    #[test]
    fn copy_region_3d_full_reassembly() {
        // Split a 4x4x3 global array into two writer halves, then read the
        // whole thing back into one buffer — a 2-writer/1-reader exchange.
        let global = Region::new(vec![0, 0, 0], vec![4, 4, 3]);
        let top = Region::new(vec![0, 0, 0], vec![2, 4, 3]);
        let bottom = Region::new(vec![2, 0, 0], vec![2, 4, 3]);
        let src_top = tagged(&top);
        let src_bottom = tagged(&bottom);
        let mut dst = Buffer::zeros(DType::F64, global.len());
        copy_region(&src_top, &top, &mut dst, &global, &top).unwrap();
        copy_region(&src_bottom, &bottom, &mut dst, &global, &bottom).unwrap();
        assert_eq!(dst, tagged(&global));
    }
}
