//! Writer-side chunks: the local portion of a global variable that one rank
//! contributes to a step, plus the global metadata that makes the stream
//! self-describing.

use std::collections::BTreeMap;

use crate::buffer::{DType, SharedBuffer};
use crate::dims::Shape;
use crate::error::{DataError, DataResult};
use crate::region::Region;
use crate::variable::AttrValue;

/// Global metadata of a variable as visible to stream readers *before* any
/// payload is transferred — the self-description contract.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableMeta {
    /// Array name within the stream.
    pub name: String,
    /// Global shape (named dims).
    pub shape: Shape,
    /// Element type.
    pub dtype: DType,
    /// Per-dimension quantity headers.
    pub labels: BTreeMap<usize, Vec<String>>,
    /// Free-form attributes.
    pub attrs: BTreeMap<String, AttrValue>,
}

impl VariableMeta {
    /// Builds bare metadata with no headers or attributes.
    pub fn new(name: impl Into<String>, shape: Shape, dtype: DType) -> VariableMeta {
        VariableMeta {
            name: name.into(),
            shape,
            dtype,
            labels: BTreeMap::new(),
            attrs: BTreeMap::new(),
        }
    }

    /// The metadata describing an existing variable — what a writer
    /// publishes when forwarding a variable it holds.
    pub fn describing(var: &crate::variable::Variable) -> VariableMeta {
        VariableMeta {
            name: var.name.clone(),
            shape: var.shape.clone(),
            dtype: var.data.dtype(),
            labels: var.labels.clone(),
            attrs: var.attrs.clone(),
        }
    }

    /// The header of dimension `dim`, if present.
    pub fn header(&self, dim: usize) -> Option<&[String]> {
        self.labels.get(&dim).map(|v| v.as_slice())
    }

    /// Resolves quantity `label` to a row index of dimension `dim`.
    pub fn resolve_label(&self, dim: usize, label: &str) -> DataResult<usize> {
        let header = self
            .labels
            .get(&dim)
            .ok_or(DataError::MissingHeader { dim })?;
        header
            .iter()
            .position(|n| n == label)
            .ok_or_else(|| DataError::NoSuchLabel {
                label: label.to_string(),
                dim,
            })
    }

    /// Total global payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.shape.total_len() * self.dtype.elem_bytes()
    }

    /// Checks every attached header against the shape: the dimension must
    /// exist and the header must name exactly one row per extent entry.
    ///
    /// Enforced at [`Chunk::new`] so a malformed header fails the writer's
    /// `put` instead of panicking a reader slicing `names[lo..hi]` later.
    pub fn validate_labels(&self) -> DataResult<()> {
        for (&dim, names) in &self.labels {
            if dim >= self.shape.ndims() {
                return Err(DataError::MalformedHeader {
                    dim,
                    expected: 0,
                    found: names.len(),
                });
            }
            if names.len() != self.shape.size(dim) {
                return Err(DataError::MalformedHeader {
                    dim,
                    expected: self.shape.size(dim),
                    found: names.len(),
                });
            }
        }
        Ok(())
    }
}

/// One writer rank's contribution to one variable in one step: the region of
/// the global array it covers and the matching payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Metadata of the global variable this chunk belongs to.
    pub meta: VariableMeta,
    /// The box of the global array this payload covers.
    pub region: Region,
    /// Row-major payload over `region.count()`. Arc-backed: the step slot
    /// and every reader view share this one allocation.
    pub data: SharedBuffer,
}

impl Chunk {
    /// Builds a chunk, validating region-vs-shape, payload length, and
    /// header-vs-shape consistency.
    ///
    /// Accepts an owned [`Buffer`](crate::Buffer) (wrapped without copying)
    /// or an existing [`SharedBuffer`] (shared by reference count).
    pub fn new(
        meta: VariableMeta,
        region: Region,
        data: impl Into<SharedBuffer>,
    ) -> DataResult<Chunk> {
        let data = data.into();
        region.validate(&meta.shape)?;
        meta.validate_labels()?;
        if data.len() != region.len() {
            return Err(DataError::ShapeMismatch {
                data_len: data.len(),
                shape_len: region.len(),
            });
        }
        if data.dtype() != meta.dtype {
            return Err(DataError::DTypeMismatch {
                expected: meta.dtype,
                found: data.dtype(),
            });
        }
        Ok(Chunk { meta, region, data })
    }

    /// Builds the chunk for a writer that owns the *whole* variable (the
    /// common single-writer case), deriving metadata from the variable.
    pub fn whole(var: crate::variable::Variable) -> Chunk {
        let meta = VariableMeta {
            name: var.name,
            shape: var.shape.clone(),
            dtype: var.data.dtype(),
            labels: var.labels,
            attrs: var.attrs,
        };
        let region = Region::whole(&var.shape);
        Chunk {
            meta,
            region,
            data: var.data,
        }
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::variable::Variable;

    fn meta() -> VariableMeta {
        let mut m = VariableMeta::new("field", Shape::of(&[("rows", 4), ("cols", 3)]), DType::F64);
        m.labels.insert(1, vec!["a".into(), "b".into(), "c".into()]);
        m
    }

    #[test]
    fn chunk_validation() {
        let m = meta();
        let ok = Chunk::new(
            m.clone(),
            Region::new(vec![2, 0], vec![2, 3]),
            Buffer::F64(vec![0.0; 6]),
        );
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().byte_len(), 48);

        let bad_region = Chunk::new(
            m.clone(),
            Region::new(vec![3, 0], vec![2, 3]),
            Buffer::F64(vec![0.0; 6]),
        );
        assert!(bad_region.is_err());

        let bad_len = Chunk::new(
            m.clone(),
            Region::new(vec![0, 0], vec![2, 3]),
            Buffer::F64(vec![0.0; 5]),
        );
        assert!(matches!(bad_len, Err(DataError::ShapeMismatch { .. })));

        let bad_dtype = Chunk::new(
            m,
            Region::new(vec![0, 0], vec![2, 3]),
            Buffer::F32(vec![0.0; 6]),
        );
        assert!(matches!(bad_dtype, Err(DataError::DTypeMismatch { .. })));
    }

    #[test]
    fn short_header_fails_construction() {
        // A header naming fewer rows than the extent must fail the put-side
        // Chunk::new, not panic a reader slicing names[lo..hi] later.
        let mut m = meta();
        m.labels.insert(1, vec!["a".into(), "b".into()]);
        let bad = Chunk::new(
            m,
            Region::new(vec![0, 0], vec![4, 3]),
            Buffer::F64(vec![0.0; 12]),
        );
        assert!(matches!(
            bad,
            Err(DataError::MalformedHeader {
                dim: 1,
                expected: 3,
                found: 2
            })
        ));
    }

    #[test]
    fn header_on_out_of_range_dimension_fails() {
        let mut m = meta();
        m.labels.insert(7, vec!["x".into()]);
        let bad = Chunk::new(
            m,
            Region::new(vec![0, 0], vec![4, 3]),
            Buffer::F64(vec![0.0; 12]),
        );
        assert!(matches!(
            bad,
            Err(DataError::MalformedHeader { dim: 7, .. })
        ));
    }

    #[test]
    fn meta_label_resolution() {
        let m = meta();
        assert_eq!(m.resolve_label(1, "b").unwrap(), 1);
        assert!(m.resolve_label(0, "b").is_err());
        assert_eq!(m.byte_len(), 4 * 3 * 8);
        assert_eq!(m.header(1).unwrap().len(), 3);
        assert!(m.header(0).is_none());
    }

    #[test]
    fn whole_chunk_from_variable() {
        let v = Variable::new(
            "v",
            Shape::of(&[("n", 2), ("p", 2)]),
            Buffer::F64(vec![1.0; 4]),
        )
        .unwrap()
        .with_labels(1, &["x", "y"])
        .unwrap();
        let c = Chunk::whole(v);
        assert_eq!(c.region, Region::new(vec![0, 0], vec![2, 2]));
        assert_eq!(c.meta.header(1).unwrap(), &["x".to_string(), "y".into()]);
    }
}
