//! Wire frames for chunks in flight — the frame codec of the TCP transport.
//!
//! The container format (`container`) serializes whole *variables* to
//! storage; streaming transports move writer-side *chunks*: the metadata of
//! the global variable, the bounding box one rank contributes, and the raw
//! payload covering that box. This module encodes exactly that triple with
//! the same primitives (length-prefixed strings, little-endian integers,
//! [`Buffer::to_le_bytes`] payloads) so a step travels byte-identically
//! whether it crosses a thread boundary or a socket.
//!
//! ```text
//! meta   := str name | u8 dtype | u16 ndims | { str dim_name | u64 size }*
//!           | u32 nheaders | { u16 dim | u32 n | str* }*
//!           | u32 nattrs | { str key | u8 kind | str value }*
//! region := u16 ndims | { u64 offset | u64 count }*
//! chunk  := meta | region | u64 nelems | raw little-endian payload
//! str    := u32 byte_len | utf-8 bytes
//! ```
//!
//! Protocol v2 of the TCP transport stops re-sending `meta` every step:
//! the sender interns each distinct [`VariableMeta`] into a
//! [`MetaInternTable`] and ships a numbered *definition* once, after which
//! chunks reference it by id ([`encode_chunk_interned`]); the receiver
//! replays definitions into [`MetaDefs`] in the same order. Interned chunks
//! may also carry their payload compressed (see [`Compression`] and
//! [`crate::compress`]):
//!
//! ```text
//! def    := u32 meta_id | meta                      (ids are sequential)
//! ichunk := u32 meta_id | region | u64 nelems | u8 codec | payload
//! payload(raw) := raw little-endian bytes
//! payload(lz)  := u64 compressed_len | lz block
//! ```
//!
//! Decoding is total: truncated or corrupt input yields a
//! [`DataError::Container`] (or another typed `DataError` from the chunk
//! validators), never a panic and never an unbounded allocation — vector
//! capacities are clamped by what the bytes actually remaining could
//! possibly encode. Encoding is total over *valid* data but fallible:
//! counts that would silently truncate in a `u16`/`u32` field (a 65536-dim
//! shape, a 4 GiB string) come back as a `DataError` instead of a frame the
//! hardened decoder then misparses.

use std::collections::{BTreeMap, HashMap};

use bytes::{Buf, BufMut};

use crate::buffer::{Buffer, DType};
use crate::chunk::{Chunk, VariableMeta};
use crate::compress::{lz_compress, lz_decompress};
use crate::dims::{Dim, Shape};
use crate::error::{DataError, DataResult};
use crate::region::Region;
use crate::variable::AttrValue;

/// The error for a count or length too large for its wire field.
fn overflow(what: &str, n: usize, field: &str) -> DataError {
    DataError::Container {
        detail: format!("{what} {n} does not fit the {field} wire field"),
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) -> DataResult<()> {
    let len = u32::try_from(s.len()).map_err(|_| overflow("string length", s.len(), "u32"))?;
    buf.put_u32_le(len);
    buf.put_slice(s.as_bytes());
    Ok(())
}

/// Decodes a length-prefixed UTF-8 string, advancing `buf` past it.
pub fn get_str(buf: &mut &[u8]) -> DataResult<String> {
    if buf.remaining() < 4 {
        return Err(truncated("string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(truncated("string body"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DataError::Container {
        detail: "invalid utf-8 in string".into(),
    })
}

/// The error for input that ends mid-field.
pub fn truncated(what: &str) -> DataError {
    DataError::Container {
        detail: format!("truncated while reading {what}"),
    }
}

/// Clamps an untrusted element count to what the remaining bytes could
/// possibly encode, so a corrupt header cannot force a huge pre-allocation.
///
/// The clamp divides by the smallest *encoded* size of one entry, not by
/// one byte: a decoded `Dim` or `String` occupies 24–48 heap bytes, so a
/// byte-count clamp would still let a short corrupt frame demand an
/// allocation tens of times larger than the input it arrived in.
fn bounded(n: usize, remaining: usize, min_entry_bytes: usize) -> usize {
    n.min(remaining / min_entry_bytes.max(1))
}

/// Smallest encoded dimension entry: an empty name (4-byte length prefix)
/// plus the u64 size.
const MIN_DIM_BYTES: usize = 12;
/// Smallest encoded label name: the 4-byte length prefix of "".
const MIN_STR_BYTES: usize = 4;

/// Appends the encoded metadata of a variable to `buf`.
pub fn encode_meta(buf: &mut Vec<u8>, meta: &VariableMeta) -> DataResult<()> {
    put_str(buf, &meta.name)?;
    buf.put_u8(meta.dtype.tag());
    let ndims = meta.shape.ndims();
    buf.put_u16_le(u16::try_from(ndims).map_err(|_| overflow("dimension count", ndims, "u16"))?);
    for d in meta.shape.dims() {
        put_str(buf, &d.name)?;
        buf.put_u64_le(d.size as u64);
    }
    let nheaders = meta.labels.len();
    buf.put_u32_le(
        u32::try_from(nheaders).map_err(|_| overflow("label header count", nheaders, "u32"))?,
    );
    for (&dim, names) in &meta.labels {
        buf.put_u16_le(u16::try_from(dim).map_err(|_| overflow("label dimension", dim, "u16"))?);
        let n = names.len();
        buf.put_u32_le(u32::try_from(n).map_err(|_| overflow("label count", n, "u32"))?);
        for n in names {
            put_str(buf, n)?;
        }
    }
    let nattrs = meta.attrs.len();
    buf.put_u32_le(u32::try_from(nattrs).map_err(|_| overflow("attr count", nattrs, "u32"))?);
    for (k, a) in &meta.attrs {
        put_str(buf, k)?;
        let (kind, text) = match a {
            AttrValue::Text(s) => (0u8, s.clone()),
            AttrValue::Int(i) => (1u8, i.to_string()),
            AttrValue::Float(x) => (2u8, format!("{x:?}")),
        };
        buf.put_u8(kind);
        put_str(buf, &text)?;
    }
    Ok(())
}

/// Decodes variable metadata, advancing `buf` past it.
pub fn decode_meta(buf: &mut &[u8]) -> DataResult<VariableMeta> {
    let name = get_str(buf)?;
    if buf.remaining() < 3 {
        return Err(truncated("variable header"));
    }
    let dtype = DType::from_tag(buf.get_u8())?;
    let ndims = buf.get_u16_le() as usize;
    let mut dims = Vec::with_capacity(bounded(ndims, buf.remaining(), MIN_DIM_BYTES));
    for _ in 0..ndims {
        let dname = get_str(buf)?;
        if buf.remaining() < 8 {
            return Err(truncated("dimension size"));
        }
        dims.push(Dim::new(dname, buf.get_u64_le() as usize));
    }
    let shape = Shape::new(dims);
    if buf.remaining() < 4 {
        return Err(truncated("header count"));
    }
    let nheaders = buf.get_u32_le() as usize;
    let mut labels = BTreeMap::new();
    for _ in 0..nheaders {
        if buf.remaining() < 6 {
            return Err(truncated("header entry"));
        }
        let dim = buf.get_u16_le() as usize;
        let n = buf.get_u32_le() as usize;
        let mut names = Vec::with_capacity(bounded(n, buf.remaining(), MIN_STR_BYTES));
        for _ in 0..n {
            names.push(get_str(buf)?);
        }
        // Encoding iterates a map, so a valid frame names each dimension at
        // most once; accepting a duplicate here would silently drop the
        // first entry and break decode∘encode = id.
        if labels.insert(dim, names).is_some() {
            return Err(DataError::Container {
                detail: format!("duplicate label header for dimension {dim}"),
            });
        }
    }
    if buf.remaining() < 4 {
        return Err(truncated("attr count"));
    }
    let nattrs = buf.get_u32_le() as usize;
    let mut attrs = BTreeMap::new();
    for _ in 0..nattrs {
        let key = get_str(buf)?;
        if buf.remaining() < 1 {
            return Err(truncated("attr kind"));
        }
        let kind = buf.get_u8();
        let text = get_str(buf)?;
        let value = match kind {
            0 => AttrValue::Text(text),
            1 => AttrValue::Int(text.parse().map_err(|_| DataError::Container {
                detail: format!("bad int attr {text:?}"),
            })?),
            2 => AttrValue::Float(text.parse().map_err(|_| DataError::Container {
                detail: format!("bad float attr {text:?}"),
            })?),
            k => {
                return Err(DataError::Container {
                    detail: format!("unknown attr kind {k}"),
                })
            }
        };
        if attrs.insert(key.clone(), value).is_some() {
            return Err(DataError::Container {
                detail: format!("duplicate attribute {key:?}"),
            });
        }
    }
    Ok(VariableMeta {
        name,
        shape,
        dtype,
        labels,
        attrs,
    })
}

/// Appends an encoded bounding box to `buf`.
pub fn encode_region(buf: &mut Vec<u8>, region: &Region) -> DataResult<()> {
    let ndims = region.ndims();
    buf.put_u16_le(u16::try_from(ndims).map_err(|_| overflow("region rank", ndims, "u16"))?);
    for i in 0..ndims {
        buf.put_u64_le(region.offset()[i] as u64);
        buf.put_u64_le(region.count()[i] as u64);
    }
    Ok(())
}

/// Decodes a bounding box, advancing `buf` past it.
pub fn decode_region(buf: &mut &[u8]) -> DataResult<Region> {
    if buf.remaining() < 2 {
        return Err(truncated("region rank"));
    }
    let ndims = buf.get_u16_le() as usize;
    if buf.remaining() < ndims * 16 {
        return Err(truncated("region extents"));
    }
    let mut offset = Vec::with_capacity(ndims);
    let mut count = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        offset.push(buf.get_u64_le() as usize);
        count.push(buf.get_u64_le() as usize);
    }
    Ok(Region::new(offset, count))
}

/// Appends one encoded chunk — metadata, region, payload — to `buf`.
pub fn encode_chunk(buf: &mut Vec<u8>, chunk: &Chunk) -> DataResult<()> {
    buf.reserve(chunk.byte_len() + 128);
    encode_meta(buf, &chunk.meta)?;
    encode_region(buf, &chunk.region)?;
    buf.put_u64_le(chunk.data.len() as u64);
    buf.extend_from_slice(&chunk.data.to_le_bytes());
    Ok(())
}

/// Validates the `nelems` field of a chunk header against its region and
/// dtype, returning the payload byte count a well-formed frame must carry.
fn validated_payload_bytes(
    meta: &VariableMeta,
    region: &Region,
    nelems: usize,
) -> DataResult<usize> {
    // region.len() multiplies extents unchecked; corrupt counts could
    // overflow, so fold with checked_mul before trusting the volume.
    let volume = region
        .count()
        .iter()
        .try_fold(1usize, |acc, &c| acc.checked_mul(c))
        .ok_or_else(|| DataError::Container {
            detail: format!("chunk {:?}: region volume overflows usize", meta.name),
        })?;
    if nelems != volume {
        return Err(DataError::Container {
            detail: format!(
                "chunk {:?}: payload count {nelems} != region volume {volume}",
                meta.name
            ),
        });
    }
    nelems
        .checked_mul(meta.dtype.elem_bytes())
        .ok_or_else(|| truncated("payload size"))
}

/// Decodes one chunk, advancing `buf` past it.
///
/// Runs the full [`Chunk::new`] validation (region-vs-shape, payload length,
/// dtype, header consistency), so a frame that decodes successfully is safe
/// to hand to the MxN assembly path.
pub fn decode_chunk(buf: &mut &[u8]) -> DataResult<Chunk> {
    let meta = decode_meta(buf)?;
    let region = decode_region(buf)?;
    if buf.remaining() < 8 {
        return Err(truncated("element count"));
    }
    let nelems = buf.get_u64_le() as usize;
    let nbytes = validated_payload_bytes(&meta, &region, nelems)?;
    if buf.remaining() < nbytes {
        return Err(truncated("payload"));
    }
    let data = Buffer::from_le_bytes(meta.dtype, nelems, &buf[..nbytes])?;
    buf.advance(nbytes);
    Chunk::new(meta, region, data)
}

// ---------------------------------------------------------------------------
// Protocol v2: interned metadata and optional payload compression.
// ---------------------------------------------------------------------------

/// Payload codecs an interned chunk may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// Raw little-endian payload bytes, exactly as protocol v1 frames them.
    #[default]
    None,
    /// The [`crate::compress`] LZ77 block codec, applied per chunk payload.
    Lz,
}

impl Compression {
    /// The one-byte wire tag.
    pub fn tag(self) -> u8 {
        match self {
            Compression::None => 0,
            Compression::Lz => 1,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> DataResult<Compression> {
        match tag {
            0 => Ok(Compression::None),
            1 => Ok(Compression::Lz),
            t => Err(DataError::Container {
                detail: format!("unknown compression codec {t}"),
            }),
        }
    }

    /// The human name used in flags, benchmarks, and reports.
    pub fn name(self) -> &'static str {
        match self {
            Compression::None => "none",
            Compression::Lz => "lz",
        }
    }
}

/// Sender-side interning table: assigns each distinct [`VariableMeta`] a
/// sequential u32 id and keeps its pre-encoded definition.
///
/// Ids are append-only and never redefined: when a variable's metadata
/// *changes* (a growing dimension, a new attribute) the changed meta gets a
/// fresh id, so any definition a receiver has already applied stays valid
/// forever. A receiver is up to date when it has applied every definition
/// below the table's [`len`](MetaInternTable::len) — which is what lets one
/// broker-side table serve many reader connections that joined at
/// different times.
#[derive(Debug, Default)]
pub struct MetaInternTable {
    by_name: HashMap<String, u32>,
    /// Indexed by id: the interned meta and its encoded `def` frame.
    entries: Vec<(VariableMeta, Vec<u8>)>,
}

impl MetaInternTable {
    /// An empty table.
    pub fn new() -> MetaInternTable {
        MetaInternTable::default()
    }

    /// The id for `meta`, interning it (or its changed successor) on first
    /// sight.
    pub fn intern(&mut self, meta: &VariableMeta) -> DataResult<u32> {
        if let Some(&id) = self.by_name.get(&meta.name) {
            if self.entries[id as usize].0 == *meta {
                return Ok(id);
            }
        }
        let id = u32::try_from(self.entries.len())
            .map_err(|_| overflow("meta intern id", self.entries.len(), "u32"))?;
        let mut def = Vec::new();
        def.put_u32_le(id);
        encode_meta(&mut def, meta)?;
        self.by_name.insert(meta.name.clone(), id);
        self.entries.push((meta.clone(), def));
        Ok(id)
    }

    /// Number of definitions interned so far; ids run `0..len()`.
    pub fn len(&self) -> u32 {
        self.entries.len() as u32
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends the encoded definitions with ids in `from..len()` to `buf`,
    /// returning how many were appended. This is the catch-up prelude for a
    /// receiver whose high-water mark is `from`.
    pub fn append_defs_since(&self, from: u32, buf: &mut Vec<u8>) -> u32 {
        let start = (from as usize).min(self.entries.len());
        for (_, def) in &self.entries[start..] {
            buf.extend_from_slice(def);
        }
        (self.entries.len() - start) as u32
    }
}

/// Receiver-side definition store: metas indexed by interned id.
#[derive(Debug, Default)]
pub struct MetaDefs {
    metas: Vec<VariableMeta>,
}

impl MetaDefs {
    /// An empty store.
    pub fn new() -> MetaDefs {
        MetaDefs::default()
    }

    /// Decodes one `def` frame, advancing `buf` past it. Definitions must
    /// arrive in id order with no gaps — anything else is a corrupt stream.
    pub fn decode_def(&mut self, buf: &mut &[u8]) -> DataResult<u32> {
        if buf.remaining() < 4 {
            return Err(truncated("meta def id"));
        }
        let id = buf.get_u32_le();
        if id as usize != self.metas.len() {
            return Err(DataError::Container {
                detail: format!(
                    "meta def id {id} out of order (expected {})",
                    self.metas.len()
                ),
            });
        }
        self.metas.push(decode_meta(buf)?);
        Ok(id)
    }

    /// Number of definitions applied so far.
    pub fn len(&self) -> u32 {
        self.metas.len() as u32
    }

    /// True when no definitions have been applied.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// The meta for an interned id.
    pub fn get(&self, id: u32) -> DataResult<&VariableMeta> {
        self.metas
            .get(id as usize)
            .ok_or_else(|| DataError::Container {
                detail: format!("chunk references unknown meta id {id}"),
            })
    }
}

/// What [`encode_chunk_interned`] put on the wire, for byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternedEncode {
    /// Payload bytes before any compression.
    pub raw_payload: usize,
    /// Payload bytes actually framed (== `raw_payload` when stored raw).
    pub wire_payload: usize,
}

impl InternedEncode {
    /// True when compression was applied and won.
    pub fn compressed(&self) -> bool {
        self.wire_payload < self.raw_payload
    }
}

/// Appends one interned chunk — meta id, region, payload — to `buf`.
///
/// `meta_id` must come from [`MetaInternTable::intern`] on the same
/// connection's table, and the matching definition must reach the receiver
/// no later than this chunk. With [`Compression::Lz`] the payload is
/// compressed per chunk and kept only if it actually shrank; incompressible
/// chunks fall back to raw storage, tagged as such.
pub fn encode_chunk_interned(
    buf: &mut Vec<u8>,
    chunk: &Chunk,
    meta_id: u32,
    compression: Compression,
) -> DataResult<InternedEncode> {
    buf.put_u32_le(meta_id);
    encode_region(buf, &chunk.region)?;
    buf.put_u64_le(chunk.data.len() as u64);
    let raw = chunk.data.to_le_bytes();
    match compression {
        Compression::None => {
            buf.put_u8(Compression::None.tag());
            buf.extend_from_slice(&raw);
            Ok(InternedEncode {
                raw_payload: raw.len(),
                wire_payload: raw.len(),
            })
        }
        Compression::Lz => {
            let packed = lz_compress(&raw);
            if packed.len() + 8 < raw.len() {
                buf.put_u8(Compression::Lz.tag());
                buf.put_u64_le(packed.len() as u64);
                buf.extend_from_slice(&packed);
                Ok(InternedEncode {
                    raw_payload: raw.len(),
                    wire_payload: packed.len() + 8,
                })
            } else {
                buf.put_u8(Compression::None.tag());
                buf.extend_from_slice(&raw);
                Ok(InternedEncode {
                    raw_payload: raw.len(),
                    wire_payload: raw.len(),
                })
            }
        }
    }
}

/// Decodes one interned chunk against the definitions applied so far,
/// advancing `buf` past it. Runs the full [`Chunk::new`] validation, like
/// [`decode_chunk`].
pub fn decode_chunk_interned(buf: &mut &[u8], defs: &MetaDefs) -> DataResult<Chunk> {
    if buf.remaining() < 4 {
        return Err(truncated("meta id"));
    }
    let meta = defs.get(buf.get_u32_le())?.clone();
    let region = decode_region(buf)?;
    if buf.remaining() < 8 {
        return Err(truncated("element count"));
    }
    let nelems = buf.get_u64_le() as usize;
    let nbytes = validated_payload_bytes(&meta, &region, nelems)?;
    if buf.remaining() < 1 {
        return Err(truncated("payload codec"));
    }
    let codec = Compression::from_tag(buf.get_u8())?;
    let data = match codec {
        Compression::None => {
            if buf.remaining() < nbytes {
                return Err(truncated("payload"));
            }
            let data = Buffer::from_le_bytes(meta.dtype, nelems, &buf[..nbytes])?;
            buf.advance(nbytes);
            data
        }
        Compression::Lz => {
            if buf.remaining() < 8 {
                return Err(truncated("compressed length"));
            }
            let clen = buf.get_u64_le() as usize;
            if buf.remaining() < clen {
                return Err(truncated("compressed payload"));
            }
            let raw = lz_decompress(&buf[..clen], nbytes)?;
            buf.advance(clen);
            Buffer::from_le_bytes(meta.dtype, nelems, &raw)?
        }
    };
    Chunk::new(meta, region, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk() -> Chunk {
        let mut meta = VariableMeta::new(
            "atoms",
            Shape::of(&[("particles", 4), ("props", 3)]),
            DType::F64,
        );
        meta.labels
            .insert(1, vec!["vx".into(), "vy".into(), "vz".into()]);
        meta.attrs
            .insert("units".into(), AttrValue::Text("lj".into()));
        meta.attrs.insert("interval".into(), AttrValue::Int(100));
        meta.attrs.insert("dt".into(), AttrValue::Float(0.005));
        Chunk::new(
            meta,
            Region::new(vec![1, 0], vec![2, 3]),
            Buffer::F64(vec![1.0, 2.0, f64::NAN, -0.0, 5.0, 6.5]),
        )
        .unwrap()
    }

    #[test]
    fn chunk_round_trips_bit_exactly() {
        let chunk = sample_chunk();
        let mut buf = Vec::new();
        encode_chunk(&mut buf, &chunk).unwrap();
        let mut slice: &[u8] = &buf;
        let back = decode_chunk(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.meta, chunk.meta);
        assert_eq!(back.region, chunk.region);
        // PartialEq on NaN payloads is false; compare raw bytes instead.
        assert_eq!(back.data.to_le_bytes(), chunk.data.to_le_bytes());
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let chunk = sample_chunk();
        let mut buf = Vec::new();
        encode_chunk(&mut buf, &chunk).unwrap();
        for cut in 0..buf.len() {
            let mut slice: &[u8] = &buf[..cut];
            assert!(
                decode_chunk(&mut slice).is_err(),
                "cut at {cut} of {} decoded",
                buf.len()
            );
        }
    }

    #[test]
    fn corrupt_header_errors_not_panics() {
        let chunk = sample_chunk();
        let mut clean = Vec::new();
        encode_chunk(&mut clean, &chunk).unwrap();
        // Flip each header byte in turn (leave the payload tail alone: raw
        // float bytes are all valid). Decoding must never panic; it either
        // errors or yields some validated chunk.
        let header_len = clean.len() - chunk.byte_len();
        for i in 0..header_len {
            for flip in [0xffu8, 0x01] {
                let mut bad = clean.clone();
                bad[i] ^= flip;
                let mut slice: &[u8] = &bad;
                let _ = decode_chunk(&mut slice);
            }
        }
    }

    #[test]
    fn corrupt_counts_cannot_overallocate() {
        // A frame whose header claims u16::MAX dimensions but carries only
        // a handful of bytes: the pre-allocation must be clamped by what
        // those bytes could encode (12 bytes per dim minimum), not by the
        // raw byte count — decoded `Dim`s occupy 24-48 heap bytes each.
        let mut buf = Vec::new();
        put_str(&mut buf, "v").unwrap();
        buf.put_u8(DType::F64.tag());
        buf.put_u16_le(u16::MAX);
        buf.extend_from_slice(&[0u8; 40]); // far too short for 65535 dims
        let remaining = buf.len();
        let mut slice: &[u8] = &buf;
        assert!(decode_meta(&mut slice).is_err());
        assert!(
            bounded(u16::MAX as usize, remaining, MIN_DIM_BYTES) <= remaining / MIN_DIM_BYTES,
            "clamp must divide by the encoded entry size"
        );
        // Same for a label header claiming u32::MAX names.
        assert_eq!(bounded(u32::MAX as usize, 40, MIN_STR_BYTES), 10);
    }

    #[test]
    fn oversized_counts_fail_to_encode() {
        // 65536 dimensions cannot ride a u16 field; the encoder must error
        // rather than truncate to 0 and emit a frame the decoder misreads.
        let dims: Vec<Dim> = (0..65536).map(|i| Dim::new(format!("d{i}"), 1)).collect();
        let meta = VariableMeta::new("wide", Shape::new(dims), DType::F64);
        let mut buf = Vec::new();
        assert!(encode_meta(&mut buf, &meta).is_err());

        let region = Region::new(vec![0; 65536], vec![1; 65536]);
        let mut buf = Vec::new();
        assert!(encode_region(&mut buf, &region).is_err());

        // A label keyed past u16::MAX dimensions is equally unencodable.
        let mut meta = sample_chunk().meta;
        meta.labels.insert(70000, vec!["x".into()]);
        let mut buf = Vec::new();
        assert!(encode_meta(&mut buf, &meta).is_err());
    }

    #[test]
    fn duplicate_label_headers_are_rejected() {
        // Hand-build a frame whose label section names dimension 1 twice;
        // `decode_meta` used to let the second entry silently overwrite the
        // first, making decode non-injective with encode.
        let meta = sample_chunk().meta;
        let mut buf = Vec::new();
        put_str(&mut buf, &meta.name).unwrap();
        buf.put_u8(meta.dtype.tag());
        buf.put_u16_le(2);
        for d in meta.shape.dims() {
            put_str(&mut buf, &d.name).unwrap();
            buf.put_u64_le(d.size as u64);
        }
        buf.put_u32_le(2); // two headers, same dimension
        for _ in 0..2 {
            buf.put_u16_le(1);
            buf.put_u32_le(1);
            put_str(&mut buf, "vx").unwrap();
        }
        buf.put_u32_le(0);
        let mut slice: &[u8] = &buf;
        let err = decode_meta(&mut slice).unwrap_err();
        assert!(
            matches!(&err, DataError::Container { detail } if detail.contains("duplicate label")),
            "{err:?}"
        );
    }

    #[test]
    fn mismatched_volume_is_rejected() {
        let chunk = sample_chunk();
        let mut buf = Vec::new();
        encode_meta(&mut buf, &chunk.meta).unwrap();
        // Region claiming a larger box than the payload that follows.
        encode_region(&mut buf, &Region::new(vec![0, 0], vec![4, 3])).unwrap();
        buf.put_u64_le(6);
        buf.extend_from_slice(&chunk.data.to_le_bytes());
        let mut slice: &[u8] = &buf;
        assert!(decode_chunk(&mut slice).is_err());
    }

    #[test]
    fn region_round_trip() {
        let r = Region::new(vec![3, 0, 7], vec![2, 5, 1]);
        let mut buf = Vec::new();
        encode_region(&mut buf, &r).unwrap();
        let mut slice: &[u8] = &buf;
        assert_eq!(decode_region(&mut slice).unwrap(), r);
        assert!(slice.is_empty());
    }

    #[test]
    fn interned_chunks_round_trip_without_resending_meta() {
        let chunk = sample_chunk();
        let mut table = MetaInternTable::new();
        let mut defs = MetaDefs::new();
        let mut frame = Vec::new();

        let id = table.intern(&chunk.meta).unwrap();
        assert_eq!(id, 0);
        assert_eq!(table.intern(&chunk.meta).unwrap(), 0, "stable id");
        let mut def_bytes = Vec::new();
        assert_eq!(table.append_defs_since(0, &mut def_bytes), 1);
        let mut slice: &[u8] = &def_bytes;
        defs.decode_def(&mut slice).unwrap();
        assert!(slice.is_empty());

        for codec in [Compression::None, Compression::Lz] {
            frame.clear();
            encode_chunk_interned(&mut frame, &chunk, id, codec).unwrap();
            let mut slice: &[u8] = &frame;
            let back = decode_chunk_interned(&mut slice, &defs).unwrap();
            assert!(slice.is_empty());
            assert_eq!(back.meta, chunk.meta);
            assert_eq!(back.region, chunk.region);
            assert_eq!(back.data.to_le_bytes(), chunk.data.to_le_bytes());
        }
    }

    #[test]
    fn changed_meta_gets_a_fresh_id_never_a_redefinition() {
        let chunk = sample_chunk();
        let mut table = MetaInternTable::new();
        let id0 = table.intern(&chunk.meta).unwrap();
        let mut grown = chunk.meta.clone();
        grown.attrs.insert("step".into(), AttrValue::Int(7));
        let id1 = table.intern(&grown).unwrap();
        assert_ne!(id0, id1);
        assert_eq!(table.len(), 2);
        // A receiver that already applied id0 catches up with just id1.
        let mut defs = MetaDefs::new();
        let mut all = Vec::new();
        table.append_defs_since(0, &mut all);
        let mut slice: &[u8] = &all;
        defs.decode_def(&mut slice).unwrap();
        defs.decode_def(&mut slice).unwrap();
        assert_eq!(defs.get(id1).unwrap(), &grown);
        assert_eq!(defs.get(id0).unwrap(), &chunk.meta);
    }

    #[test]
    fn out_of_order_defs_and_unknown_ids_are_rejected() {
        let chunk = sample_chunk();
        let mut table = MetaInternTable::new();
        table.intern(&chunk.meta).unwrap();
        let mut def = Vec::new();
        table.append_defs_since(0, &mut def);
        // Skipping id 0 (forging id 7) must not be applied.
        let mut forged = def.clone();
        forged[0] = 7;
        let mut defs = MetaDefs::new();
        let mut slice: &[u8] = &forged;
        assert!(defs.decode_def(&mut slice).is_err());
        // A chunk naming an id never defined is rejected at decode.
        let mut frame = Vec::new();
        encode_chunk_interned(&mut frame, &chunk, 3, Compression::None).unwrap();
        let mut slice: &[u8] = &frame;
        assert!(decode_chunk_interned(&mut slice, &defs).is_err());
    }

    #[test]
    fn interned_truncations_and_corruption_never_panic() {
        let chunk = sample_chunk();
        let mut table = MetaInternTable::new();
        let id = table.intern(&chunk.meta).unwrap();
        let mut defs = MetaDefs::new();
        let mut def = Vec::new();
        table.append_defs_since(0, &mut def);
        let mut slice: &[u8] = &def;
        defs.decode_def(&mut slice).unwrap();

        for codec in [Compression::None, Compression::Lz] {
            let mut frame = Vec::new();
            encode_chunk_interned(&mut frame, &chunk, id, codec).unwrap();
            for cut in 0..frame.len() {
                let mut slice: &[u8] = &frame[..cut];
                assert!(decode_chunk_interned(&mut slice, &defs).is_err());
            }
            for i in 0..frame.len() {
                for flip in [0xffu8, 0x01] {
                    let mut bad = frame.clone();
                    bad[i] ^= flip;
                    let mut slice: &[u8] = &bad;
                    let _ = decode_chunk_interned(&mut slice, &defs);
                }
            }
        }
    }

    #[test]
    fn incompressible_payloads_fall_back_to_raw_storage() {
        // A noise payload (xorshift bit patterns) cannot shrink; the
        // encoder must store it raw rather than grow the frame.
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let noise: Vec<f64> = (0..16)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits(x)
            })
            .collect();
        let meta = VariableMeta::new("noise", Shape::of(&[("x", 16)]), DType::F64);
        let chunk = Chunk::new(meta, Region::new(vec![0], vec![16]), Buffer::F64(noise)).unwrap();
        let mut frame = Vec::new();
        let enc = encode_chunk_interned(&mut frame, &chunk, 0, Compression::Lz).unwrap();
        assert_eq!(enc.raw_payload, enc.wire_payload);
        assert!(!enc.compressed());

        // A constant 4096-element payload must compress hard.
        let meta = VariableMeta::new("flat", Shape::of(&[("x", 4096)]), DType::F64);
        let big = Chunk::new(
            meta,
            Region::new(vec![0], vec![4096]),
            Buffer::F64(vec![1.0; 4096]),
        )
        .unwrap();
        let mut frame = Vec::new();
        let enc = encode_chunk_interned(&mut frame, &big, 0, Compression::Lz).unwrap();
        assert!(enc.compressed());
        assert!(enc.wire_payload < enc.raw_payload / 50);
    }
}
