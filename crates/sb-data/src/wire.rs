//! Wire frames for chunks in flight — the frame codec of the TCP transport.
//!
//! The container format (`container`) serializes whole *variables* to
//! storage; streaming transports move writer-side *chunks*: the metadata of
//! the global variable, the bounding box one rank contributes, and the raw
//! payload covering that box. This module encodes exactly that triple with
//! the same primitives (length-prefixed strings, little-endian integers,
//! [`Buffer::to_le_bytes`] payloads) so a step travels byte-identically
//! whether it crosses a thread boundary or a socket.
//!
//! ```text
//! meta   := str name | u8 dtype | u16 ndims | { str dim_name | u64 size }*
//!           | u32 nheaders | { u16 dim | u32 n | str* }*
//!           | u32 nattrs | { str key | u8 kind | str value }*
//! region := u16 ndims | { u64 offset | u64 count }*
//! chunk  := meta | region | u64 nelems | raw little-endian payload
//! str    := u32 byte_len | utf-8 bytes
//! ```
//!
//! Decoding is total: truncated or corrupt input yields a
//! [`DataError::Container`] (or another typed `DataError` from the chunk
//! validators), never a panic and never an unbounded allocation — vector
//! capacities are clamped by the bytes actually remaining.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut};

use crate::buffer::{Buffer, DType};
use crate::chunk::{Chunk, VariableMeta};
use crate::dims::{Dim, Shape};
use crate::error::{DataError, DataResult};
use crate::region::Region;
use crate::variable::AttrValue;

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Decodes a length-prefixed UTF-8 string, advancing `buf` past it.
pub fn get_str(buf: &mut &[u8]) -> DataResult<String> {
    if buf.remaining() < 4 {
        return Err(truncated("string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(truncated("string body"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DataError::Container {
        detail: "invalid utf-8 in string".into(),
    })
}

/// The error for input that ends mid-field.
pub fn truncated(what: &str) -> DataError {
    DataError::Container {
        detail: format!("truncated while reading {what}"),
    }
}

/// Clamps an untrusted element count to what the remaining bytes could
/// possibly hold, so a corrupt header cannot force a huge pre-allocation.
fn bounded(n: usize, remaining: usize) -> usize {
    n.min(remaining)
}

/// Appends the encoded metadata of a variable to `buf`.
pub fn encode_meta(buf: &mut Vec<u8>, meta: &VariableMeta) {
    put_str(buf, &meta.name);
    buf.put_u8(meta.dtype.tag());
    buf.put_u16_le(meta.shape.ndims() as u16);
    for d in meta.shape.dims() {
        put_str(buf, &d.name);
        buf.put_u64_le(d.size as u64);
    }
    buf.put_u32_le(meta.labels.len() as u32);
    for (&dim, names) in &meta.labels {
        buf.put_u16_le(dim as u16);
        buf.put_u32_le(names.len() as u32);
        for n in names {
            put_str(buf, n);
        }
    }
    buf.put_u32_le(meta.attrs.len() as u32);
    for (k, a) in &meta.attrs {
        put_str(buf, k);
        let (kind, text) = match a {
            AttrValue::Text(s) => (0u8, s.clone()),
            AttrValue::Int(i) => (1u8, i.to_string()),
            AttrValue::Float(x) => (2u8, format!("{x:?}")),
        };
        buf.put_u8(kind);
        put_str(buf, &text);
    }
}

/// Decodes variable metadata, advancing `buf` past it.
pub fn decode_meta(buf: &mut &[u8]) -> DataResult<VariableMeta> {
    let name = get_str(buf)?;
    if buf.remaining() < 3 {
        return Err(truncated("variable header"));
    }
    let dtype = DType::from_tag(buf.get_u8())?;
    let ndims = buf.get_u16_le() as usize;
    let mut dims = Vec::with_capacity(bounded(ndims, buf.remaining()));
    for _ in 0..ndims {
        let dname = get_str(buf)?;
        if buf.remaining() < 8 {
            return Err(truncated("dimension size"));
        }
        dims.push(Dim::new(dname, buf.get_u64_le() as usize));
    }
    let shape = Shape::new(dims);
    if buf.remaining() < 4 {
        return Err(truncated("header count"));
    }
    let nheaders = buf.get_u32_le() as usize;
    let mut labels = BTreeMap::new();
    for _ in 0..nheaders {
        if buf.remaining() < 6 {
            return Err(truncated("header entry"));
        }
        let dim = buf.get_u16_le() as usize;
        let n = buf.get_u32_le() as usize;
        let mut names = Vec::with_capacity(bounded(n, buf.remaining()));
        for _ in 0..n {
            names.push(get_str(buf)?);
        }
        labels.insert(dim, names);
    }
    if buf.remaining() < 4 {
        return Err(truncated("attr count"));
    }
    let nattrs = buf.get_u32_le() as usize;
    let mut attrs = BTreeMap::new();
    for _ in 0..nattrs {
        let key = get_str(buf)?;
        if buf.remaining() < 1 {
            return Err(truncated("attr kind"));
        }
        let kind = buf.get_u8();
        let text = get_str(buf)?;
        let value = match kind {
            0 => AttrValue::Text(text),
            1 => AttrValue::Int(text.parse().map_err(|_| DataError::Container {
                detail: format!("bad int attr {text:?}"),
            })?),
            2 => AttrValue::Float(text.parse().map_err(|_| DataError::Container {
                detail: format!("bad float attr {text:?}"),
            })?),
            k => {
                return Err(DataError::Container {
                    detail: format!("unknown attr kind {k}"),
                })
            }
        };
        attrs.insert(key, value);
    }
    Ok(VariableMeta {
        name,
        shape,
        dtype,
        labels,
        attrs,
    })
}

/// Appends an encoded bounding box to `buf`.
pub fn encode_region(buf: &mut Vec<u8>, region: &Region) {
    buf.put_u16_le(region.ndims() as u16);
    for i in 0..region.ndims() {
        buf.put_u64_le(region.offset()[i] as u64);
        buf.put_u64_le(region.count()[i] as u64);
    }
}

/// Decodes a bounding box, advancing `buf` past it.
pub fn decode_region(buf: &mut &[u8]) -> DataResult<Region> {
    if buf.remaining() < 2 {
        return Err(truncated("region rank"));
    }
    let ndims = buf.get_u16_le() as usize;
    if buf.remaining() < ndims * 16 {
        return Err(truncated("region extents"));
    }
    let mut offset = Vec::with_capacity(ndims);
    let mut count = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        offset.push(buf.get_u64_le() as usize);
        count.push(buf.get_u64_le() as usize);
    }
    Ok(Region::new(offset, count))
}

/// Appends one encoded chunk — metadata, region, payload — to `buf`.
pub fn encode_chunk(buf: &mut Vec<u8>, chunk: &Chunk) {
    buf.reserve(chunk.byte_len() + 128);
    encode_meta(buf, &chunk.meta);
    encode_region(buf, &chunk.region);
    buf.put_u64_le(chunk.data.len() as u64);
    buf.extend_from_slice(&chunk.data.to_le_bytes());
}

/// Decodes one chunk, advancing `buf` past it.
///
/// Runs the full [`Chunk::new`] validation (region-vs-shape, payload length,
/// dtype, header consistency), so a frame that decodes successfully is safe
/// to hand to the MxN assembly path.
pub fn decode_chunk(buf: &mut &[u8]) -> DataResult<Chunk> {
    let meta = decode_meta(buf)?;
    let region = decode_region(buf)?;
    if buf.remaining() < 8 {
        return Err(truncated("element count"));
    }
    let nelems = buf.get_u64_le() as usize;
    // region.len() multiplies extents unchecked; corrupt counts could
    // overflow, so fold with checked_mul before trusting the volume.
    let volume = region
        .count()
        .iter()
        .try_fold(1usize, |acc, &c| acc.checked_mul(c))
        .ok_or_else(|| DataError::Container {
            detail: format!("chunk {:?}: region volume overflows usize", meta.name),
        })?;
    if nelems != volume {
        return Err(DataError::Container {
            detail: format!(
                "chunk {:?}: payload count {nelems} != region volume {volume}",
                meta.name
            ),
        });
    }
    let nbytes = nelems
        .checked_mul(meta.dtype.elem_bytes())
        .ok_or_else(|| truncated("payload size"))?;
    if buf.remaining() < nbytes {
        return Err(truncated("payload"));
    }
    let data = Buffer::from_le_bytes(meta.dtype, nelems, &buf[..nbytes])?;
    buf.advance(nbytes);
    Chunk::new(meta, region, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chunk() -> Chunk {
        let mut meta = VariableMeta::new(
            "atoms",
            Shape::of(&[("particles", 4), ("props", 3)]),
            DType::F64,
        );
        meta.labels
            .insert(1, vec!["vx".into(), "vy".into(), "vz".into()]);
        meta.attrs
            .insert("units".into(), AttrValue::Text("lj".into()));
        meta.attrs.insert("interval".into(), AttrValue::Int(100));
        meta.attrs.insert("dt".into(), AttrValue::Float(0.005));
        Chunk::new(
            meta,
            Region::new(vec![1, 0], vec![2, 3]),
            Buffer::F64(vec![1.0, 2.0, f64::NAN, -0.0, 5.0, 6.5]),
        )
        .unwrap()
    }

    #[test]
    fn chunk_round_trips_bit_exactly() {
        let chunk = sample_chunk();
        let mut buf = Vec::new();
        encode_chunk(&mut buf, &chunk);
        let mut slice: &[u8] = &buf;
        let back = decode_chunk(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back.meta, chunk.meta);
        assert_eq!(back.region, chunk.region);
        // PartialEq on NaN payloads is false; compare raw bytes instead.
        assert_eq!(back.data.to_le_bytes(), chunk.data.to_le_bytes());
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let chunk = sample_chunk();
        let mut buf = Vec::new();
        encode_chunk(&mut buf, &chunk);
        for cut in 0..buf.len() {
            let mut slice: &[u8] = &buf[..cut];
            assert!(
                decode_chunk(&mut slice).is_err(),
                "cut at {cut} of {} decoded",
                buf.len()
            );
        }
    }

    #[test]
    fn corrupt_header_errors_not_panics() {
        let chunk = sample_chunk();
        let mut clean = Vec::new();
        encode_chunk(&mut clean, &chunk);
        // Flip each header byte in turn (leave the payload tail alone: raw
        // float bytes are all valid). Decoding must never panic; it either
        // errors or yields some validated chunk.
        let header_len = clean.len() - chunk.byte_len();
        for i in 0..header_len {
            for flip in [0xffu8, 0x01] {
                let mut bad = clean.clone();
                bad[i] ^= flip;
                let mut slice: &[u8] = &bad;
                let _ = decode_chunk(&mut slice);
            }
        }
    }

    #[test]
    fn mismatched_volume_is_rejected() {
        let chunk = sample_chunk();
        let mut buf = Vec::new();
        encode_meta(&mut buf, &chunk.meta);
        // Region claiming a larger box than the payload that follows.
        encode_region(&mut buf, &Region::new(vec![0, 0], vec![4, 3]));
        buf.put_u64_le(6);
        buf.extend_from_slice(&chunk.data.to_le_bytes());
        let mut slice: &[u8] = &buf;
        assert!(decode_chunk(&mut slice).is_err());
    }

    #[test]
    fn region_round_trip() {
        let r = Region::new(vec![3, 0, 7], vec![2, 5, 1]);
        let mut buf = Vec::new();
        encode_region(&mut buf, &r);
        let mut slice: &[u8] = &buf;
        assert_eq!(decode_region(&mut slice).unwrap(), r);
        assert!(slice.is_empty());
    }
}
