//! # sb-data — a self-describing multi-dimensional data model
//!
//! The SmartBlock paper builds on ADIOS: simulation output is packed into
//! linear buffers, described by named dimensions in a small XML group
//! configuration, annotated with per-dimension *quantity labels* ("headers"),
//! and read back through bounding-box selections. Downstream components use
//! this self-description to discover, at run time, the number of dimensions,
//! their sizes and names, and the labelled quantities inside them.
//!
//! This crate provides that data model from scratch:
//!
//! * [`DType`]/[`Buffer`] — typed linear storage with safe element access
//!   and lossless round-trips through `f64` compute kernels;
//! * [`Shape`]/[`Dim`] — named dimensions with row-major stride arithmetic;
//! * [`Region`] — bounding boxes with intersection/containment algebra and
//!   block copies between differently-shaped buffers (the MxN primitive);
//! * [`Variable`]/[`Chunk`] — a global self-describing array and a writer's
//!   local portion of one;
//! * [`decompose`] — the even block decompositions components use to split
//!   incoming data among their ranks;
//! * [`config`] — the ADIOS-XML-style output group description;
//! * [`container`] — a versioned binary container for steps written to disk
//!   by the file components;
//! * [`wire`] — the chunk frame codec shared by streaming transports (the
//!   TCP backend frames steps with it), including the protocol-v2 meta
//!   interning tables;
//! * [`compress`] — the dependency-free LZ77 block codec v2 frames can
//!   apply per chunk payload;
//! * [`signal`] — the scalar signal board reactive workflow triggers
//!   observe (latest `(component, signal)` values plus a synchronous hook).

pub mod buffer;
pub mod chunk;
pub mod compress;
pub mod config;
pub mod container;
pub mod decompose;
pub mod dims;
pub mod error;
pub mod region;
pub mod signal;
pub mod variable;
pub mod wire;

pub use buffer::{Buffer, DType, SharedBuffer};
pub use chunk::{Chunk, VariableMeta};
pub use config::{GroupConfig, VarConfig};
pub use dims::{Dim, Shape};
pub use error::{DataError, DataResult};
pub use region::Region;
pub use variable::{AttrValue, Variable};
