//! Even block decompositions.
//!
//! Every SmartBlock component, on every timestep, splits the incoming global
//! array "so that each process receives an approximately equal amount of
//! data" (paper §IV). The canonical strategy splits the slowest-varying
//! dimension into contiguous blocks whose sizes differ by at most one; a
//! multi-dimensional variant is provided for the ablation benches.

use crate::dims::Shape;
use crate::region::Region;

/// Splits `0..len` into `nparts` contiguous `(offset, count)` ranges whose
/// lengths differ by at most one. Parts beyond `len` are empty.
///
/// ```
/// use sb_data::decompose::split_1d;
/// assert_eq!(split_1d(10, 3), vec![(0, 4), (4, 3), (7, 3)]);
/// ```
pub fn split_1d(len: usize, nparts: usize) -> Vec<(usize, usize)> {
    assert!(nparts > 0, "cannot split into zero parts");
    let base = len / nparts;
    let extra = len % nparts;
    let mut out = Vec::with_capacity(nparts);
    let mut off = 0;
    for p in 0..nparts {
        let count = base + usize::from(p < extra);
        out.push((off, count));
        off += count;
    }
    out
}

/// The `(offset, count)` range of part `part` of [`split_1d`], without
/// materializing the whole vector — what a rank calls for itself.
pub fn split_1d_part(len: usize, nparts: usize, part: usize) -> (usize, usize) {
    assert!(part < nparts, "part index out of range");
    let base = len / nparts;
    let extra = len % nparts;
    let count = base + usize::from(part < extra);
    let off = part * base + part.min(extra);
    (off, count)
}

/// Block decomposition of `shape` along dimension `dim` into `nparts`
/// regions covering the whole array disjointly.
pub fn decompose_along(shape: &Shape, dim: usize, nparts: usize) -> Vec<Region> {
    assert!(dim < shape.ndims(), "decomposition dim out of range");
    split_1d(shape.size(dim), nparts)
        .into_iter()
        .map(|(off, count)| {
            let mut offset = vec![0; shape.ndims()];
            let mut counts = shape.sizes();
            offset[dim] = off;
            counts[dim] = count;
            Region::new(offset, counts)
        })
        .collect()
}

/// The region rank `part` receives when `shape` is decomposed along its
/// slowest-varying dimension — the default SmartBlock partitioning.
///
/// Rank-0 arrays (scalars) cannot be split: every part receives the whole
/// (one-element) region. That is correct for reads; *writers* of scalar
/// variables must contribute the chunk from exactly one rank (see the
/// Reduce component's scalar path).
pub fn default_partition(shape: &Shape, nparts: usize, part: usize) -> Region {
    assert!(part < nparts, "part index out of range");
    if shape.ndims() == 0 {
        return Region::new(vec![], vec![]);
    }
    let (off, count) = split_1d_part(shape.size(0), nparts, part);
    let mut offset = vec![0; shape.ndims()];
    let mut counts = shape.sizes();
    offset[0] = off;
    counts[0] = count;
    Region::new(offset, counts)
}

/// The slab of `shape` that `part` of `nparts` receives when splitting
/// along `dim` only: every other dimension is taken whole. This is the
/// partition every transform component computes per step.
pub fn slab_partition(shape: &Shape, dim: usize, nparts: usize, part: usize) -> Region {
    assert!(dim < shape.ndims(), "slab dimension out of range");
    let (off, count) = split_1d_part(shape.size(dim), nparts, part);
    let mut offset = vec![0; shape.ndims()];
    let mut counts = shape.sizes();
    offset[dim] = off;
    counts[dim] = count;
    Region::new(offset, counts)
}

/// A near-square multi-dimensional decomposition: factors `nparts` across
/// the dimensions (greedily, largest dimension first) and produces the
/// resulting grid of blocks. Used by the decomposition ablation bench.
pub fn decompose_grid(shape: &Shape, nparts: usize) -> Vec<Region> {
    assert!(nparts > 0, "cannot split into zero parts");
    let ndims = shape.ndims();
    if ndims == 0 {
        return vec![Region::new(vec![], vec![])];
    }
    // Factor nparts into per-dimension part counts, assigning prime factors
    // to the currently "longest per part" dimension.
    let mut parts = vec![1usize; ndims];
    let mut remaining = nparts;
    let mut factor = 2;
    let mut factors = Vec::new();
    while remaining > 1 {
        while remaining.is_multiple_of(factor) {
            factors.push(factor);
            remaining /= factor;
        }
        factor += 1;
        if factor * factor > remaining && remaining > 1 {
            factors.push(remaining);
            break;
        }
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let (best, _) = parts
            .iter()
            .enumerate()
            .max_by(|(i, &pa), (j, &pb)| {
                let la = shape.size(*i) as f64 / pa as f64;
                let lb = shape.size(*j) as f64 / pb as f64;
                la.partial_cmp(&lb).expect("finite")
            })
            .expect("non-empty shape");
        parts[best] *= f;
    }

    // Cartesian product of per-dimension 1-d splits.
    let splits: Vec<Vec<(usize, usize)>> = (0..ndims)
        .map(|d| split_1d(shape.size(d), parts[d]))
        .collect();
    let mut regions = Vec::with_capacity(nparts);
    let mut idx = vec![0usize; ndims];
    loop {
        let mut offset = Vec::with_capacity(ndims);
        let mut count = Vec::with_capacity(ndims);
        for d in 0..ndims {
            let (o, c) = splits[d][idx[d]];
            offset.push(o);
            count.push(c);
        }
        regions.push(Region::new(offset, count));
        let mut d = ndims;
        loop {
            if d == 0 {
                return regions;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < parts[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_1d_balanced() {
        assert_eq!(split_1d(10, 3), vec![(0, 4), (4, 3), (7, 3)]);
        assert_eq!(split_1d(3, 5), vec![(0, 1), (1, 1), (2, 1), (3, 0), (3, 0)]);
        assert_eq!(split_1d(0, 2), vec![(0, 0), (0, 0)]);
    }

    #[test]
    fn split_1d_part_agrees_with_split_1d() {
        for len in [0usize, 1, 7, 100, 101] {
            for nparts in 1..10 {
                let full = split_1d(len, nparts);
                for (p, &expect) in full.iter().enumerate() {
                    assert_eq!(
                        split_1d_part(len, nparts, p),
                        expect,
                        "len={len} n={nparts} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn decompose_along_tiles_disjointly() {
        let shape = Shape::of(&[("a", 7), ("b", 4)]);
        let regions = decompose_along(&shape, 0, 3);
        assert_eq!(regions.len(), 3);
        let total: usize = regions.iter().map(|r| r.len()).sum();
        assert_eq!(total, shape.total_len());
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                assert!(regions[i].intersect(&regions[j]).is_none());
            }
        }
    }

    #[test]
    fn default_partition_covers_first_dim() {
        let shape = Shape::of(&[("particles", 10), ("props", 5)]);
        let r0 = default_partition(&shape, 4, 0);
        assert_eq!(r0.offset(), &[0, 0]);
        assert_eq!(r0.count(), &[3, 5]);
        let r3 = default_partition(&shape, 4, 3);
        assert_eq!(r3.offset(), &[8, 0]);
        assert_eq!(r3.count(), &[2, 5]);
    }

    #[test]
    fn default_partition_scalar() {
        let r = default_partition(&Shape::new(vec![]), 3, 1);
        assert_eq!(r.ndims(), 0);
    }

    #[test]
    fn grid_decomposition_tiles_exactly() {
        for nparts in [1usize, 2, 3, 4, 6, 8, 12] {
            let shape = Shape::of(&[("x", 12), ("y", 9)]);
            let regions = decompose_grid(&shape, nparts);
            assert_eq!(regions.len(), nparts, "nparts={nparts}");
            let total: usize = regions.iter().map(|r| r.len()).sum();
            assert_eq!(total, shape.total_len(), "nparts={nparts}");
            for i in 0..regions.len() {
                for j in i + 1..regions.len() {
                    assert!(
                        regions[i].intersect(&regions[j]).is_none(),
                        "nparts={nparts}: {} overlaps {}",
                        regions[i],
                        regions[j]
                    );
                }
            }
        }
    }

    #[test]
    fn grid_decomposition_prefers_long_dims() {
        let shape = Shape::of(&[("long", 100), ("short", 2)]);
        let regions = decompose_grid(&shape, 4);
        // All four parts should split the long dimension, not the short one.
        for r in &regions {
            assert_eq!(r.count()[1], 2, "short dim left whole: {r}");
        }
    }
}
