//! A self-describing global array: shape, payload, quantity headers, and
//! free-form attributes.

use std::collections::BTreeMap;

use crate::buffer::{Buffer, DType, SharedBuffer};
use crate::dims::Shape;
use crate::error::{DataError, DataResult};
use crate::region::{copy_region, Region};

/// A free-form metadata attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A text attribute.
    Text(String),
    /// An integer attribute.
    Int(i64),
    /// A floating-point attribute.
    Float(f64),
}

impl AttrValue {
    /// The textual form, for display and containers.
    pub fn to_text(&self) -> String {
        match self {
            AttrValue::Text(s) => s.clone(),
            AttrValue::Int(i) => i.to_string(),
            AttrValue::Float(x) => format!("{x}"),
        }
    }
}

/// A fully materialized, self-describing array.
///
/// Carries everything a downstream SmartBlock component needs to operate
/// without recompilation: named dimensions, the element type, optional
/// per-dimension *headers* (quantity labels, §III-C of the paper), and
/// attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Array name within its stream.
    pub name: String,
    /// Named, row-major dimensions.
    pub shape: Shape,
    /// The linear payload; `data.len() == shape.total_len()`. Arc-backed so
    /// forwarding a variable through the stream shares the allocation.
    pub data: SharedBuffer,
    /// Quantity headers: `labels[&dim]` names the rows of dimension `dim`.
    pub labels: BTreeMap<usize, Vec<String>>,
    /// Free-form attributes.
    pub attrs: BTreeMap<String, AttrValue>,
}

impl Variable {
    /// Builds a variable, validating payload length against the shape.
    ///
    /// Accepts an owned [`Buffer`] (wrapped without copying) or an existing
    /// [`SharedBuffer`] (shared by reference count).
    pub fn new(
        name: impl Into<String>,
        shape: Shape,
        data: impl Into<SharedBuffer>,
    ) -> DataResult<Variable> {
        let data = data.into();
        if data.len() != shape.total_len() {
            return Err(DataError::ShapeMismatch {
                data_len: data.len(),
                shape_len: shape.total_len(),
            });
        }
        Ok(Variable {
            name: name.into(),
            shape,
            data,
            labels: BTreeMap::new(),
            attrs: BTreeMap::new(),
        })
    }

    /// Attaches a quantity header to dimension `dim` (builder style).
    ///
    /// The header length must equal the dimension's extent: every row gets a
    /// name.
    pub fn with_labels(mut self, dim: usize, names: &[&str]) -> DataResult<Variable> {
        self.set_labels(dim, names.iter().map(|s| s.to_string()).collect())?;
        Ok(self)
    }

    /// Attaches a quantity header to dimension `dim`.
    pub fn set_labels(&mut self, dim: usize, names: Vec<String>) -> DataResult<()> {
        self.shape.check_dim(dim)?;
        if names.len() != self.shape.size(dim) {
            return Err(DataError::ShapeMismatch {
                data_len: names.len(),
                shape_len: self.shape.size(dim),
            });
        }
        self.labels.insert(dim, names);
        Ok(())
    }

    /// Attaches an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: AttrValue) -> Variable {
        self.attrs.insert(key.into(), value);
        self
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// The header of dimension `dim`, if one was attached.
    pub fn header(&self, dim: usize) -> Option<&[String]> {
        self.labels.get(&dim).map(|v| v.as_slice())
    }

    /// Resolves quantity `label` to its row index within dimension `dim`.
    pub fn resolve_label(&self, dim: usize, label: &str) -> DataResult<usize> {
        let header = self
            .labels
            .get(&dim)
            .ok_or(DataError::MissingHeader { dim })?;
        header
            .iter()
            .position(|n| n == label)
            .ok_or_else(|| DataError::NoSuchLabel {
                label: label.to_string(),
                dim,
            })
    }

    /// Element at the multi-index `idx`, widened to `f64`.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data.get_f64(self.shape.linear_index(idx))
    }

    /// Extracts `region` as a new variable covering only that box.
    pub fn extract(&self, region: &Region) -> DataResult<Variable> {
        region.validate(&self.shape)?;
        let whole = Region::whole(&self.shape);
        let mut out = Buffer::zeros(self.dtype(), region.len());
        copy_region(&self.data, &whole, &mut out, region, region)?;
        let shape = region.local_shape(&self.shape);
        // Headers survive extraction only for dimensions taken whole; a
        // partial slice of a labelled dimension keeps the covered labels.
        let mut labels = BTreeMap::new();
        for (&dim, names) in &self.labels {
            let lo = region.offset()[dim];
            let hi = region.end(dim);
            labels.insert(dim, names[lo..hi].to_vec());
        }
        Ok(Variable {
            name: self.name.clone(),
            shape,
            data: out.into(),
            labels,
            attrs: self.attrs.clone(),
        })
    }

    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particles() -> Variable {
        // 3 particles x 5 properties, mirroring the LAMMPS output layout.
        let data: Vec<f64> = (0..15).map(|i| i as f64).collect();
        Variable::new(
            "atoms",
            Shape::of(&[("particles", 3), ("props", 5)]),
            Buffer::from(data),
        )
        .unwrap()
        .with_labels(1, &["ID", "Type", "vx", "vy", "vz"])
        .unwrap()
        .with_attr("units", AttrValue::Text("lj".into()))
    }

    #[test]
    fn construction_validates_length() {
        let bad = Variable::new(
            "x",
            Shape::of(&[("a", 2), ("b", 2)]),
            Buffer::F64(vec![1.0; 3]),
        );
        assert!(matches!(bad, Err(DataError::ShapeMismatch { .. })));
    }

    #[test]
    fn labels_resolve_by_name() {
        let v = particles();
        assert_eq!(v.resolve_label(1, "vx").unwrap(), 2);
        assert_eq!(v.resolve_label(1, "vz").unwrap(), 4);
        assert!(matches!(
            v.resolve_label(1, "pressure"),
            Err(DataError::NoSuchLabel { .. })
        ));
        assert!(matches!(
            v.resolve_label(0, "vx"),
            Err(DataError::MissingHeader { dim: 0 })
        ));
    }

    #[test]
    fn label_length_must_match_extent() {
        let v = Variable::new("x", Shape::of(&[("a", 3)]), Buffer::F64(vec![0.0; 3])).unwrap();
        assert!(v.with_labels(0, &["one", "two"]).is_err());
    }

    #[test]
    fn get_indexes_row_major() {
        let v = particles();
        assert_eq!(v.get(&[0, 0]), 0.0);
        assert_eq!(v.get(&[1, 2]), 7.0);
        assert_eq!(v.get(&[2, 4]), 14.0);
    }

    #[test]
    fn extract_subregion_with_labels() {
        let v = particles();
        // Keep particles 1..3, properties 2..5 (the velocity columns).
        let r = Region::new(vec![1, 2], vec![2, 3]);
        let sub = v.extract(&r).unwrap();
        assert_eq!(sub.shape, Shape::of(&[("particles", 2), ("props", 3)]));
        assert_eq!(sub.get(&[0, 0]), 7.0);
        assert_eq!(sub.get(&[1, 2]), 14.0);
        assert_eq!(
            sub.header(1).unwrap(),
            &["vx".to_string(), "vy".into(), "vz".into()]
        );
        assert_eq!(sub.attrs["units"], AttrValue::Text("lj".into()));
    }

    #[test]
    fn extract_rejects_oversized_region() {
        let v = particles();
        let r = Region::new(vec![0, 0], vec![4, 5]);
        assert!(v.extract(&r).is_err());
    }
}
