//! Named dimensions and row-major shape arithmetic.
//!
//! ADIOS keeps the number of dimensions and their sizes as stream metadata;
//! SmartBlock components additionally rely on *names* for dimensions so a
//! launch script can refer to "the dimension spanning the particles" without
//! recompiling anything. [`Shape`] carries both.

use crate::error::{DataError, DataResult};

/// One named dimension of a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Human-readable dimension name (e.g. `"particles"`, `"props"`).
    pub name: String,
    /// Extent of this dimension.
    pub size: usize,
}

impl Dim {
    /// Constructs a dimension.
    pub fn new(name: impl Into<String>, size: usize) -> Dim {
        Dim {
            name: name.into(),
            size,
        }
    }
}

/// A row-major shape: an ordered list of named dimensions.
///
/// The last dimension varies fastest in memory — the layout the paper's
/// Dim-Reduce discussion (§III-F) revolves around.
///
/// ```
/// use sb_data::Shape;
/// let s = Shape::of(&[("particles", 100), ("props", 5)]);
/// assert_eq!(s.total_len(), 500);
/// assert_eq!(s.strides(), vec![5, 1]);
/// assert_eq!(s.dim_index("props"), Some(1));
/// assert_eq!(s.linear_index(&[3, 2]), 17);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<Dim>,
}

impl Shape {
    /// Builds a shape from `(name, size)` pairs.
    pub fn new(dims: Vec<Dim>) -> Shape {
        Shape { dims }
    }

    /// Convenience constructor from `(name, size)` tuples.
    pub fn of(pairs: &[(&str, usize)]) -> Shape {
        Shape {
            dims: pairs.iter().map(|(n, s)| Dim::new(*n, *s)).collect(),
        }
    }

    /// A one-dimensional shape.
    pub fn linear(name: impl Into<String>, size: usize) -> Shape {
        Shape {
            dims: vec![Dim::new(name, size)],
        }
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// The dimensions, slowest-varying first.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Per-dimension extents, slowest-varying first.
    pub fn sizes(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.size).collect()
    }

    /// Extent of dimension `i`.
    pub fn size(&self, i: usize) -> usize {
        self.dims[i].size
    }

    /// Name of dimension `i`.
    pub fn dim_name(&self, i: usize) -> &str {
        &self.dims[i].name
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn total_len(&self) -> usize {
        self.dims.iter().map(|d| d.size).product()
    }

    /// Row-major strides: `strides[i]` is the linear distance between
    /// consecutive indices of dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1].size;
        }
        strides
    }

    /// Linear offset of the multi-index `idx`.
    ///
    /// Panics if `idx` has the wrong rank or exceeds an extent — indexing
    /// errors are programming bugs, exactly like slice indexing.
    pub fn linear_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.ndims(), "index rank mismatch");
        let strides = self.strides();
        idx.iter()
            .zip(&self.dims)
            .zip(&strides)
            .map(|((&i, d), &s)| {
                assert!(i < d.size, "index {i} out of range for dim {:?}", d.name);
                i * s
            })
            .sum()
    }

    /// Inverse of [`Shape::linear_index`].
    pub fn multi_index(&self, mut linear: usize) -> Vec<usize> {
        assert!(
            linear < self.total_len().max(1),
            "linear index out of range"
        );
        let strides = self.strides();
        strides
            .iter()
            .map(|&s| {
                let i = linear / s;
                linear %= s;
                i
            })
            .collect()
    }

    /// Index of the dimension called `name`, if any.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name == name)
    }

    /// Checks that `dim` is a valid dimension index.
    pub fn check_dim(&self, dim: usize) -> DataResult<()> {
        if dim < self.ndims() {
            Ok(())
        } else {
            Err(DataError::NoSuchDimension {
                index: dim,
                ndims: self.ndims(),
            })
        }
    }

    /// A copy with dimension `dim` resized to `size`.
    pub fn with_dim_size(&self, dim: usize, size: usize) -> Shape {
        let mut s = self.clone();
        s.dims[dim].size = size;
        s
    }

    /// A copy with dimension `dim` removed.
    pub fn without_dim(&self, dim: usize) -> Shape {
        let mut s = self.clone();
        s.dims.remove(dim);
        s
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", d.name, d.size)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Shape {
        Shape::of(&[("slice", 4), ("grid", 5), ("prop", 7)])
    }

    #[test]
    fn basic_queries() {
        let s = sample();
        assert_eq!(s.ndims(), 3);
        assert_eq!(s.total_len(), 140);
        assert_eq!(s.sizes(), vec![4, 5, 7]);
        assert_eq!(s.dim_name(1), "grid");
        assert_eq!(s.dim_index("prop"), Some(2));
        assert_eq!(s.dim_index("nope"), None);
        assert_eq!(format!("{s}"), "[slice=4, grid=5, prop=7]");
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(sample().strides(), vec![35, 7, 1]);
        assert_eq!(Shape::linear("x", 9).strides(), vec![1]);
    }

    #[test]
    fn linear_and_multi_index_are_inverses() {
        let s = sample();
        for lin in [0usize, 1, 7, 34, 35, 139] {
            let idx = s.multi_index(lin);
            assert_eq!(s.linear_index(&idx), lin);
        }
        assert_eq!(s.linear_index(&[3, 4, 6]), 139);
        assert_eq!(s.multi_index(139), vec![3, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn linear_index_checks_extents() {
        sample().linear_index(&[0, 5, 0]);
    }

    #[test]
    fn dim_edits() {
        let s = sample();
        assert_eq!(s.with_dim_size(0, 2).total_len(), 70);
        let dropped = s.without_dim(1);
        assert_eq!(dropped.sizes(), vec![4, 7]);
        assert_eq!(dropped.dim_name(1), "prop");
    }

    #[test]
    fn check_dim_bounds() {
        let s = sample();
        assert!(s.check_dim(2).is_ok());
        assert!(matches!(
            s.check_dim(3),
            Err(DataError::NoSuchDimension { index: 3, ndims: 3 })
        ));
    }

    #[test]
    fn rank_zero_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.ndims(), 0);
        assert_eq!(s.total_len(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
        assert_eq!(s.linear_index(&[]), 0);
    }
}
