//! A versioned binary container for steps written to storage.
//!
//! The paper's future work (§VI) calls for components that "write and read
//! from storage as part of a workflow" to break the all-running-at-once
//! dependency. The FileWrite/FileRead SmartBlock components serialize steps
//! with this format:
//!
//! ```text
//! file  := magic "SBC1" | u32 version
//!          { "STEP" | u64 payload_len | payload }*
//! payload := u64 step_id | u32 nvars | var*
//! var   := str name | u8 dtype | u16 ndims | { str dim_name | u64 size }*
//!          | u32 nheaders | { u16 dim | u32 n | str* }*
//!          | u32 nattrs | { str key | u8 kind | str value }*
//!          | u64 nelems | raw little-endian payload
//! str   := u32 byte_len | utf-8 bytes
//! ```
//!
//! All integers are little-endian. Each step is length-prefixed so a reader
//! can skip or detect truncation cleanly.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use bytes::{Buf, BufMut};

use crate::buffer::{Buffer, DType};
use crate::dims::{Dim, Shape};
use crate::error::{DataError, DataResult};
use crate::variable::{AttrValue, Variable};
use crate::wire::{get_str, put_str, truncated};

const MAGIC: &[u8; 4] = b"SBC1";
const STEP_MARKER: &[u8; 4] = b"STEP";
const VERSION: u32 = 1;

/// Streaming writer of steps to any `Write` sink.
pub struct ContainerWriter<W: Write> {
    sink: W,
    steps_written: u64,
}

impl<W: Write> ContainerWriter<W> {
    /// Creates a writer and emits the file header.
    pub fn new(mut sink: W) -> DataResult<ContainerWriter<W>> {
        sink.write_all(MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        Ok(ContainerWriter {
            sink,
            steps_written: 0,
        })
    }

    /// Appends one step holding `vars`.
    pub fn write_step(&mut self, step_id: u64, vars: &[Variable]) -> DataResult<()> {
        let mut payload =
            Vec::with_capacity(64 + vars.iter().map(|v| v.byte_len() + 128).sum::<usize>());
        payload.put_u64_le(step_id);
        payload.put_u32_le(vars.len() as u32);
        for v in vars {
            put_str(&mut payload, &v.name)?;
            payload.put_u8(v.dtype().tag());
            payload.put_u16_le(v.shape.ndims() as u16);
            for d in v.shape.dims() {
                put_str(&mut payload, &d.name)?;
                payload.put_u64_le(d.size as u64);
            }
            payload.put_u32_le(v.labels.len() as u32);
            for (&dim, names) in &v.labels {
                payload.put_u16_le(dim as u16);
                payload.put_u32_le(names.len() as u32);
                for n in names {
                    put_str(&mut payload, n)?;
                }
            }
            payload.put_u32_le(v.attrs.len() as u32);
            for (k, a) in &v.attrs {
                put_str(&mut payload, k)?;
                let (kind, text) = match a {
                    AttrValue::Text(s) => (0u8, s.clone()),
                    AttrValue::Int(i) => (1u8, i.to_string()),
                    AttrValue::Float(x) => (2u8, format!("{x:?}")),
                };
                payload.put_u8(kind);
                put_str(&mut payload, &text)?;
            }
            payload.put_u64_le(v.data.len() as u64);
            payload.extend_from_slice(&v.data.to_le_bytes());
        }
        self.sink.write_all(STEP_MARKER)?;
        self.sink.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.sink.write_all(&payload)?;
        self.steps_written += 1;
        Ok(())
    }

    /// Number of steps written so far.
    pub fn steps_written(&self) -> u64 {
        self.steps_written
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> DataResult<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming reader of steps from any `Read` source.
pub struct ContainerReader<R: Read> {
    source: R,
}

impl<R: Read> ContainerReader<R> {
    /// Creates a reader and validates the file header.
    pub fn new(mut source: R) -> DataResult<ContainerReader<R>> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(DataError::Container {
                detail: format!("bad magic {magic:?}"),
            });
        }
        let mut ver = [0u8; 4];
        source.read_exact(&mut ver)?;
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(DataError::Container {
                detail: format!("unsupported version {version}"),
            });
        }
        Ok(ContainerReader { source })
    }

    /// Reads the next step, or `None` at a clean end of file.
    pub fn next_step(&mut self) -> DataResult<Option<(u64, Vec<Variable>)>> {
        let mut marker = [0u8; 4];
        match self.source.read_exact(&mut marker) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        if &marker != STEP_MARKER {
            return Err(DataError::Container {
                detail: format!("bad step marker {marker:?}"),
            });
        }
        let mut len_bytes = [0u8; 8];
        self.source.read_exact(&mut len_bytes)?;
        let len = u64::from_le_bytes(len_bytes);
        // Grow the payload as bytes actually arrive instead of trusting the
        // length header with one allocation: a corrupt or hostile header
        // then fails with "truncated" rather than an OOM abort.
        let mut payload = Vec::new();
        std::io::Read::take(&mut self.source, len).read_to_end(&mut payload)?;
        if (payload.len() as u64) < len {
            return Err(truncated("step payload"));
        }
        let mut buf: &[u8] = &payload;

        if buf.remaining() < 12 {
            return Err(truncated("step header"));
        }
        let step_id = buf.get_u64_le();
        let nvars = buf.get_u32_le() as usize;
        let mut vars = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name = get_str(&mut buf)?;
            if buf.remaining() < 3 {
                return Err(truncated("variable header"));
            }
            let dtype = DType::from_tag(buf.get_u8())?;
            let ndims = buf.get_u16_le() as usize;
            let mut dims = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                let dname = get_str(&mut buf)?;
                if buf.remaining() < 8 {
                    return Err(truncated("dimension size"));
                }
                dims.push(Dim::new(dname, buf.get_u64_le() as usize));
            }
            let shape = Shape::new(dims);
            if buf.remaining() < 4 {
                return Err(truncated("header count"));
            }
            let nheaders = buf.get_u32_le() as usize;
            let mut labels = BTreeMap::new();
            for _ in 0..nheaders {
                if buf.remaining() < 6 {
                    return Err(truncated("header entry"));
                }
                let dim = buf.get_u16_le() as usize;
                let n = buf.get_u32_le() as usize;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(get_str(&mut buf)?);
                }
                labels.insert(dim, names);
            }
            if buf.remaining() < 4 {
                return Err(truncated("attr count"));
            }
            let nattrs = buf.get_u32_le() as usize;
            let mut attrs = BTreeMap::new();
            for _ in 0..nattrs {
                let key = get_str(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(truncated("attr kind"));
                }
                let kind = buf.get_u8();
                let text = get_str(&mut buf)?;
                let value = match kind {
                    0 => AttrValue::Text(text),
                    1 => AttrValue::Int(text.parse().map_err(|_| DataError::Container {
                        detail: format!("bad int attr {text:?}"),
                    })?),
                    2 => AttrValue::Float(text.parse().map_err(|_| DataError::Container {
                        detail: format!("bad float attr {text:?}"),
                    })?),
                    k => {
                        return Err(DataError::Container {
                            detail: format!("unknown attr kind {k}"),
                        })
                    }
                };
                attrs.insert(key, value);
            }
            if buf.remaining() < 8 {
                return Err(truncated("element count"));
            }
            let nelems = buf.get_u64_le() as usize;
            if nelems != shape.total_len() {
                return Err(DataError::Container {
                    detail: format!(
                        "variable {name:?}: payload count {nelems} != shape {}",
                        shape.total_len()
                    ),
                });
            }
            let nbytes = nelems * dtype.elem_bytes();
            if buf.remaining() < nbytes {
                return Err(truncated("payload"));
            }
            let data = Buffer::from_le_bytes(dtype, nelems, &buf[..nbytes])?;
            buf.advance(nbytes);
            let mut var = Variable::new(name, shape, data)?;
            var.labels = labels;
            var.attrs = attrs;
            vars.push(var);
        }
        Ok(Some((step_id, vars)))
    }

    /// Drains all remaining steps into a vector.
    pub fn read_all(&mut self) -> DataResult<Vec<(u64, Vec<Variable>)>> {
        let mut out = Vec::new();
        while let Some(step) = self.next_step()? {
            out.push(step);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_var() -> Variable {
        Variable::new(
            "atoms",
            Shape::of(&[("particles", 2), ("props", 3)]),
            Buffer::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
        )
        .unwrap()
        .with_labels(1, &["vx", "vy", "vz"])
        .unwrap()
        .with_attr("units", AttrValue::Text("lj".into()))
        .with_attr("step_interval", AttrValue::Int(100))
        .with_attr("dt", AttrValue::Float(0.005))
    }

    #[test]
    fn round_trip_multiple_steps() {
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        let v = sample_var();
        let ids = Variable::new(
            "ids",
            Shape::linear("particles", 2),
            Buffer::U64(vec![7, 9]),
        )
        .unwrap();
        w.write_step(0, &[v.clone(), ids.clone()]).unwrap();
        w.write_step(5, std::slice::from_ref(&v)).unwrap();
        assert_eq!(w.steps_written(), 2);
        let bytes = w.finish().unwrap();

        let mut r = ContainerReader::new(Cursor::new(bytes)).unwrap();
        let all = r.read_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 0);
        assert_eq!(all[0].1, vec![v.clone(), ids]);
        assert_eq!(all[1].0, 5);
        assert_eq!(all[1].1, vec![v]);
    }

    #[test]
    fn empty_container_yields_no_steps() {
        let w = ContainerWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ContainerReader::new(Cursor::new(bytes)).unwrap();
        assert!(r.next_step().unwrap().is_none());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(ContainerReader::new(Cursor::new(b"NOPE\x01\x00\x00\x00".to_vec())).is_err());
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&99u32.to_le_bytes());
        assert!(ContainerReader::new(Cursor::new(bytes)).is_err());
    }

    #[test]
    fn detects_truncated_step() {
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        w.write_step(0, &[sample_var()]).unwrap();
        let bytes = w.finish().unwrap();
        // Cut the file mid-payload.
        let cut = &bytes[..bytes.len() - 10];
        let mut r = ContainerReader::new(Cursor::new(cut.to_vec())).unwrap();
        assert!(r.next_step().is_err());
    }

    #[test]
    fn float_attrs_round_trip_exactly() {
        let v = Variable::new("x", Shape::linear("n", 1), Buffer::F64(vec![0.0]))
            .unwrap()
            .with_attr("tiny", AttrValue::Float(1e-300))
            .with_attr("third", AttrValue::Float(1.0 / 3.0));
        let mut w = ContainerWriter::new(Vec::new()).unwrap();
        w.write_step(1, std::slice::from_ref(&v)).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = ContainerReader::new(Cursor::new(bytes)).unwrap();
        let (_, vars) = r.next_step().unwrap().unwrap();
        assert_eq!(vars[0].attrs, v.attrs);
    }
}
