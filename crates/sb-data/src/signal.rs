//! Scalar signal plumbing for reactive workflow triggers.
//!
//! Components publish small named scalars ("signals") as they step — a
//! histogram's per-step max, a run loop's wait/compute ratio — and the
//! workflow runtime can arm a synchronous hook that observes every
//! publication. The [`SignalBoard`] is deliberately tiny: when nothing is
//! armed, a publication costs one relaxed atomic load and returns.
//!
//! Signals are keyed `(component, signal)` and the board keeps only the
//! latest `(step, value)` per key: triggers react to fresh observations,
//! they do not replay history.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The synchronous observer a runtime arms on the board:
/// `(component, signal, step, value)`.
pub type SignalHook = Box<dyn Fn(&str, &str, u64, f64) + Send + Sync>;

/// A per-workflow board of the latest scalar signal values, with an
/// optional synchronous hook for reactive evaluation.
///
/// Publications while the board is disarmed are dropped (not recorded):
/// the board exists for trigger evaluation, not metrics — the metrics
/// layer has its own counters.
#[derive(Default)]
pub struct SignalBoard {
    /// One relaxed load per publication while disarmed.
    armed: AtomicBool,
    /// Latest `(step, value)` per `(component, signal)`.
    latest: Mutex<BTreeMap<(String, String), (u64, f64)>>,
    /// The armed observer, called synchronously from the publishing thread.
    /// Kept behind an `Arc` so [`SignalBoard::publish`] can clone it out and
    /// release the lock before calling: a hook is then free to publish
    /// signals itself (a trigger action reporting progress) without
    /// deadlocking on its own lock.
    hook: Mutex<Option<Arc<SignalHook>>>,
}

impl SignalBoard {
    /// An empty, disarmed board.
    pub fn new() -> SignalBoard {
        SignalBoard::default()
    }

    /// Whether a hook is armed (publications are live).
    #[inline]
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Arms `hook`: every subsequent [`SignalBoard::publish`] records the
    /// value and calls the hook synchronously on the publishing thread.
    /// Replaces any previously armed hook.
    pub fn arm(&self, hook: SignalHook) {
        *self.hook.lock().expect("signal hook poisoned") = Some(Arc::new(hook));
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarms the board; subsequent publications are dropped again. The
    /// recorded latest values stay readable.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
        *self.hook.lock().expect("signal hook poisoned") = None;
    }

    /// Publishes `component.signal = value` at `step`. A no-op (one relaxed
    /// atomic load) while the board is disarmed.
    ///
    /// The armed hook runs synchronously *on the publishing thread*, so a
    /// trigger firing at step `k` takes effect before the publisher commits
    /// anything after the publication point — the determinism reactive
    /// triggers rely on.
    pub fn publish(&self, component: &str, signal: &str, step: u64, value: f64) {
        if !self.armed() {
            return;
        }
        {
            let mut latest = self.latest.lock().expect("signal board poisoned");
            latest.insert((component.to_string(), signal.to_string()), (step, value));
        }
        // Both locks are released before the hook runs: the latest-value
        // lock so the hook may read the board, and the hook lock so an
        // action performed by the hook may itself publish a signal (a
        // reentrant publication sees the same hook and recurses safely
        // instead of deadlocking on the hook mutex).
        let hook = self
            .hook
            .lock()
            .expect("signal hook poisoned")
            .as_ref()
            .map(Arc::clone);
        if let Some(hook) = hook {
            hook(component, signal, step, value);
        }
    }

    /// The latest `(step, value)` published for `component.signal`, if any.
    pub fn latest(&self, component: &str, signal: &str) -> Option<(u64, f64)> {
        self.latest
            .lock()
            .expect("signal board poisoned")
            .get(&(component.to_string(), signal.to_string()))
            .copied()
    }

    /// Every recorded signal as `(component, signal, step, value)`, sorted
    /// by key.
    pub fn snapshot(&self) -> Vec<(String, String, u64, f64)> {
        self.latest
            .lock()
            .expect("signal board poisoned")
            .iter()
            .map(|((c, s), (step, v))| (c.clone(), s.clone(), *step, *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn disarmed_publish_is_dropped() {
        let board = SignalBoard::new();
        board.publish("histogram", "max", 3, 9.5);
        assert_eq!(board.latest("histogram", "max"), None);
        assert!(board.snapshot().is_empty());
    }

    #[test]
    fn armed_publish_records_and_hooks() {
        let board = Arc::new(SignalBoard::new());
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        board.arm(Box::new(move |c, s, step, v| {
            assert_eq!((c, s, step, v), ("histogram", "max", 7, 42.0));
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        board.publish("histogram", "max", 7, 42.0);
        assert_eq!(seen.load(Ordering::SeqCst), 1);
        assert_eq!(board.latest("histogram", "max"), Some((7, 42.0)));

        board.disarm();
        board.publish("histogram", "max", 8, 50.0);
        assert_eq!(seen.load(Ordering::SeqCst), 1, "disarmed hook must not run");
        // Latest values recorded while armed stay readable.
        assert_eq!(board.latest("histogram", "max"), Some((7, 42.0)));
    }

    #[test]
    fn latest_wins_and_snapshot_sorts() {
        let board = SignalBoard::new();
        board.arm(Box::new(|_, _, _, _| {}));
        board.publish("b", "x", 0, 1.0);
        board.publish("a", "y", 1, 2.0);
        board.publish("b", "x", 2, 3.0);
        assert_eq!(board.latest("b", "x"), Some((2, 3.0)));
        let snap = board.snapshot();
        assert_eq!(
            snap,
            vec![
                ("a".to_string(), "y".to_string(), 1, 2.0),
                ("b".to_string(), "x".to_string(), 2, 3.0),
            ]
        );
    }

    #[test]
    fn hook_may_publish_reentrantly() {
        // Regression: publish used to hold the hook mutex while calling the
        // hook, so a hook that published a follow-up signal deadlocked.
        let board = Arc::new(SignalBoard::new());
        let b2 = Arc::clone(&board);
        let depth = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&depth);
        board.arm(Box::new(move |c, _, step, v| {
            d2.fetch_add(1, Ordering::SeqCst);
            if c != "trigger" {
                // The action reports its own progress signal from inside
                // the hook — the publication that used to deadlock.
                b2.publish("trigger", "fired", step, v + 1.0);
            }
        }));
        board.publish("sim", "rate", 4, 1.0);
        assert_eq!(depth.load(Ordering::SeqCst), 2, "reentrant publish ran");
        assert_eq!(board.latest("trigger", "fired"), Some((4, 2.0)));
    }

    #[test]
    fn hook_may_read_the_board() {
        let board = Arc::new(SignalBoard::new());
        let b2 = Arc::clone(&board);
        board.arm(Box::new(move |c, s, _, _| {
            // Reading latest from inside the hook must not deadlock.
            assert!(b2.latest(c, s).is_some());
        }));
        board.publish("sim", "rate", 1, 0.5);
    }
}
