//! ADIOS-style output group configuration.
//!
//! The paper instruments each simulation with "an approximately 25-line XML
//! file" that names the output variables and binds their dimensions; ADIOS
//! reads it at run time so the simulation code never hard-codes metadata.
//! This module implements that contract with a small, dependency-free parser
//! for the XML subset such files actually use:
//!
//! ```xml
//! <adios-group name="particles">
//!   <!-- dimensions are named; sizes are bound at write time -->
//!   <var name="atoms" type="f64" dimensions="nparticles,props"/>
//!   <header var="atoms" dim="1" labels="ID,Type,vx,vy,vz"/>
//!   <attribute var="atoms" name="units" value="lj"/>
//! </adios-group>
//! ```

use std::collections::BTreeMap;

use crate::buffer::DType;
use crate::chunk::VariableMeta;
use crate::dims::{Dim, Shape};
use crate::error::{DataError, DataResult};
use crate::variable::AttrValue;

/// Declaration of one output variable inside a group.
#[derive(Debug, Clone, PartialEq)]
pub struct VarConfig {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Named dimensions, slowest-varying first; sizes bound at write time.
    pub dim_names: Vec<String>,
    /// Per-dimension quantity headers declared in the file.
    pub headers: BTreeMap<usize, Vec<String>>,
    /// Attributes declared in the file.
    pub attrs: BTreeMap<String, AttrValue>,
}

/// A parsed `<adios-group>` block.
///
/// ```
/// use sb_data::GroupConfig;
/// let g = GroupConfig::parse(r#"
///     <adios-group name="demo">
///       <var name="atoms" type="f64" dimensions="n,props"/>
///       <header var="atoms" dim="1" labels="vx,vy,vz"/>
///     </adios-group>
/// "#).unwrap();
/// let meta = g.describe("atoms", &[100, 3]).unwrap();
/// assert_eq!(meta.resolve_label(1, "vy").unwrap(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupConfig {
    /// Group name.
    pub name: String,
    /// Variables in declaration order.
    pub vars: Vec<VarConfig>,
}

impl GroupConfig {
    /// Looks a variable up by name.
    pub fn var(&self, name: &str) -> Option<&VarConfig> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Binds runtime dimension sizes to a declared variable, producing the
    /// self-describing [`VariableMeta`] a writer publishes.
    pub fn describe(&self, var_name: &str, sizes: &[usize]) -> DataResult<VariableMeta> {
        let var = self.var(var_name).ok_or_else(|| DataError::ConfigParse {
            line: 0,
            detail: format!("no variable {var_name:?} in group {:?}", self.name),
        })?;
        if sizes.len() != var.dim_names.len() {
            return Err(DataError::ShapeMismatch {
                data_len: sizes.len(),
                shape_len: var.dim_names.len(),
            });
        }
        let shape = Shape::new(
            var.dim_names
                .iter()
                .zip(sizes)
                .map(|(n, &s)| Dim::new(n.clone(), s))
                .collect(),
        );
        // Validate headers against the bound sizes.
        for (&dim, labels) in &var.headers {
            if dim >= shape.ndims() {
                return Err(DataError::NoSuchDimension {
                    index: dim,
                    ndims: shape.ndims(),
                });
            }
            if labels.len() != shape.size(dim) {
                return Err(DataError::ShapeMismatch {
                    data_len: labels.len(),
                    shape_len: shape.size(dim),
                });
            }
        }
        let mut meta = VariableMeta::new(var.name.clone(), shape, var.dtype);
        meta.labels = var.headers.clone();
        meta.attrs = var.attrs.clone();
        Ok(meta)
    }

    /// Parses a group configuration document.
    pub fn parse(text: &str) -> DataResult<GroupConfig> {
        let mut group_name: Option<String> = None;
        let mut vars: Vec<VarConfig> = Vec::new();
        let mut closed = false;

        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let mut s = raw.trim();
            if s.is_empty() {
                continue;
            }
            // Strip full-line comments; embedded comments are rejected by
            // the tag parser below, which keeps the grammar honest.
            if s.starts_with("<!--") {
                if !s.ends_with("-->") {
                    return Err(DataError::ConfigParse {
                        line,
                        detail: "multi-line comments are not supported".into(),
                    });
                }
                continue;
            }
            if s == "</adios-group>" {
                if group_name.is_none() {
                    return Err(DataError::ConfigParse {
                        line,
                        detail: "</adios-group> before <adios-group>".into(),
                    });
                }
                closed = true;
                continue;
            }
            if closed {
                return Err(DataError::ConfigParse {
                    line,
                    detail: "content after </adios-group>".into(),
                });
            }
            if !s.starts_with('<') || !s.ends_with('>') {
                return Err(DataError::ConfigParse {
                    line,
                    detail: format!("expected a tag, found {s:?}"),
                });
            }
            s = &s[1..s.len() - 1];
            let self_closing = s.ends_with('/');
            if self_closing {
                s = &s[..s.len() - 1];
            }
            let (tag, attrs) = parse_tag(s, line)?;
            match tag.as_str() {
                "adios-group" => {
                    if group_name.is_some() {
                        return Err(DataError::ConfigParse {
                            line,
                            detail: "nested <adios-group> is not allowed".into(),
                        });
                    }
                    group_name = Some(require(&attrs, "name", line)?);
                }
                "var" => {
                    if group_name.is_none() {
                        return Err(DataError::ConfigParse {
                            line,
                            detail: "<var> outside <adios-group>".into(),
                        });
                    }
                    let name = require(&attrs, "name", line)?;
                    let ty = require(&attrs, "type", line)?;
                    let dtype = DType::parse(&ty).ok_or_else(|| DataError::ConfigParse {
                        line,
                        detail: format!("unknown type {ty:?}"),
                    })?;
                    let dims = require(&attrs, "dimensions", line)?;
                    let dim_names: Vec<String> = dims
                        .split(',')
                        .map(|d| d.trim().to_string())
                        .filter(|d| !d.is_empty())
                        .collect();
                    if dim_names.is_empty() {
                        return Err(DataError::ConfigParse {
                            line,
                            detail: "a <var> needs at least one dimension".into(),
                        });
                    }
                    if vars.iter().any(|v| v.name == name) {
                        return Err(DataError::ConfigParse {
                            line,
                            detail: format!("duplicate variable {name:?}"),
                        });
                    }
                    vars.push(VarConfig {
                        name,
                        dtype,
                        dim_names,
                        headers: BTreeMap::new(),
                        attrs: BTreeMap::new(),
                    });
                }
                "header" => {
                    let var = require(&attrs, "var", line)?;
                    let dim: usize = require(&attrs, "dim", line)?.parse().map_err(|_| {
                        DataError::ConfigParse {
                            line,
                            detail: "dim must be an integer".into(),
                        }
                    })?;
                    let labels: Vec<String> = require(&attrs, "labels", line)?
                        .split(',')
                        .map(|l| l.trim().to_string())
                        .collect();
                    let v = vars.iter_mut().find(|v| v.name == var).ok_or_else(|| {
                        DataError::ConfigParse {
                            line,
                            detail: format!("<header> references unknown var {var:?}"),
                        }
                    })?;
                    if dim >= v.dim_names.len() {
                        return Err(DataError::ConfigParse {
                            line,
                            detail: format!("<header> dim {dim} out of range for {var:?}"),
                        });
                    }
                    v.headers.insert(dim, labels);
                }
                "attribute" => {
                    let var = require(&attrs, "var", line)?;
                    let name = require(&attrs, "name", line)?;
                    let value = require(&attrs, "value", line)?;
                    let v = vars.iter_mut().find(|v| v.name == var).ok_or_else(|| {
                        DataError::ConfigParse {
                            line,
                            detail: format!("<attribute> references unknown var {var:?}"),
                        }
                    })?;
                    let parsed = if let Ok(i) = value.parse::<i64>() {
                        AttrValue::Int(i)
                    } else if let Ok(x) = value.parse::<f64>() {
                        AttrValue::Float(x)
                    } else {
                        AttrValue::Text(value)
                    };
                    v.attrs.insert(name, parsed);
                }
                other => {
                    return Err(DataError::ConfigParse {
                        line,
                        detail: format!("unknown tag <{other}>"),
                    })
                }
            }
        }

        let name = group_name.ok_or(DataError::ConfigParse {
            line: 0,
            detail: "no <adios-group> found".into(),
        })?;
        if !closed {
            return Err(DataError::ConfigParse {
                line: 0,
                detail: "missing </adios-group>".into(),
            });
        }
        Ok(GroupConfig { name, vars })
    }
}

/// Splits `tag attr="v" attr2="v2"` into the tag name and attribute map.
fn parse_tag(s: &str, line: usize) -> DataResult<(String, BTreeMap<String, String>)> {
    let mut chars = s.char_indices().peekable();
    let mut tag = String::new();
    while let Some(&(_, c)) = chars.peek() {
        if c.is_whitespace() {
            break;
        }
        tag.push(c);
        chars.next();
    }
    if tag.is_empty() {
        return Err(DataError::ConfigParse {
            line,
            detail: "empty tag".into(),
        });
    }
    let mut attrs = BTreeMap::new();
    loop {
        while matches!(chars.peek(), Some(&(_, c)) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        while let Some(&(_, c)) = chars.peek() {
            if c == '=' || c.is_whitespace() {
                break;
            }
            key.push(c);
            chars.next();
        }
        if !matches!(chars.next(), Some((_, '='))) {
            return Err(DataError::ConfigParse {
                line,
                detail: format!("attribute {key:?} is missing '='"),
            });
        }
        if !matches!(chars.next(), Some((_, '"'))) {
            return Err(DataError::ConfigParse {
                line,
                detail: format!("attribute {key:?} value must be double-quoted"),
            });
        }
        let mut value = String::new();
        let mut terminated = false;
        for (_, c) in chars.by_ref() {
            if c == '"' {
                terminated = true;
                break;
            }
            value.push(c);
        }
        if !terminated {
            return Err(DataError::ConfigParse {
                line,
                detail: format!("attribute {key:?} value is unterminated"),
            });
        }
        attrs.insert(key, value);
    }
    Ok((tag, attrs))
}

fn require(attrs: &BTreeMap<String, String>, key: &str, line: usize) -> DataResult<String> {
    attrs
        .get(key)
        .cloned()
        .ok_or_else(|| DataError::ConfigParse {
            line,
            detail: format!("missing required attribute {key:?}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMMPS_GROUP: &str = r#"
        <adios-group name="particles">
          <!-- LAMMPS dump: 5 properties per particle -->
          <var name="atoms" type="f64" dimensions="nparticles,props"/>
          <header var="atoms" dim="1" labels="ID,Type,vx,vy,vz"/>
          <attribute var="atoms" name="units" value="lj"/>
          <attribute var="atoms" name="dt" value="0.005"/>
          <attribute var="atoms" name="seed" value="42"/>
        </adios-group>
    "#;

    #[test]
    fn parses_the_lammps_style_group() {
        let g = GroupConfig::parse(LAMMPS_GROUP).unwrap();
        assert_eq!(g.name, "particles");
        assert_eq!(g.vars.len(), 1);
        let v = g.var("atoms").unwrap();
        assert_eq!(v.dtype, DType::F64);
        assert_eq!(v.dim_names, vec!["nparticles", "props"]);
        assert_eq!(v.headers[&1], vec!["ID", "Type", "vx", "vy", "vz"]);
        assert_eq!(v.attrs["units"], AttrValue::Text("lj".into()));
        assert_eq!(v.attrs["dt"], AttrValue::Float(0.005));
        assert_eq!(v.attrs["seed"], AttrValue::Int(42));
    }

    #[test]
    fn describe_binds_sizes_and_headers() {
        let g = GroupConfig::parse(LAMMPS_GROUP).unwrap();
        let meta = g.describe("atoms", &[1000, 5]).unwrap();
        assert_eq!(meta.shape, Shape::of(&[("nparticles", 1000), ("props", 5)]));
        assert_eq!(meta.resolve_label(1, "vy").unwrap(), 3);
        // Header length must match the bound size.
        assert!(g.describe("atoms", &[1000, 4]).is_err());
        // Rank must match.
        assert!(g.describe("atoms", &[1000]).is_err());
        assert!(g.describe("missing", &[1]).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for (doc, what) in [
            ("<var name=\"x\"/>", "var outside group"),
            ("<adios-group name=\"g\">\n<bogus a=\"1\"/>\n</adios-group>", "unknown tag"),
            ("<adios-group name=\"g\">", "unclosed group"),
            ("<adios-group name=\"g\">\n<var name=\"x\" type=\"f99\" dimensions=\"a\"/>\n</adios-group>", "bad type"),
            ("<adios-group name=\"g\">\n<var name=\"x\" type=\"f64\"/>\n</adios-group>", "missing dims"),
            ("<adios-group name=\"g\">\n<header var=\"x\" dim=\"0\" labels=\"a\"/>\n</adios-group>", "header before var"),
            ("<adios-group name=\"g\">\n<var name=\"x\" type=\"f64\" dimensions=\"a\"/>\n<var name=\"x\" type=\"f64\" dimensions=\"a\"/>\n</adios-group>", "duplicate var"),
            ("<adios-group name=\"g\">\n<var name=\"x\" type=\"f64\" dimensions=\"a\"/>\n<header var=\"x\" dim=\"5\" labels=\"a\"/>\n</adios-group>", "header dim range"),
            ("plain text", "not a tag"),
        ] {
            assert!(GroupConfig::parse(doc).is_err(), "should reject: {what}");
        }
    }

    #[test]
    fn attribute_values_parse_by_type() {
        let doc = r#"
            <adios-group name="g">
              <var name="x" type="i32" dimensions="n"/>
              <attribute var="x" name="label" value="hello world"/>
              <attribute var="x" name="n_over" value="-12"/>
              <attribute var="x" name="scale" value="1.5e3"/>
            </adios-group>
        "#;
        let g = GroupConfig::parse(doc).unwrap();
        let v = g.var("x").unwrap();
        assert_eq!(v.attrs["label"], AttrValue::Text("hello world".into()));
        assert_eq!(v.attrs["n_over"], AttrValue::Int(-12));
        assert_eq!(v.attrs["scale"], AttrValue::Float(1500.0));
    }

    #[test]
    fn multiple_vars_in_one_group() {
        let doc = r#"
            <adios-group name="fields">
              <var name="pressure" type="f64" dimensions="slices,points"/>
              <var name="ids" type="u64" dimensions="points"/>
            </adios-group>
        "#;
        let g = GroupConfig::parse(doc).unwrap();
        assert_eq!(g.vars.len(), 2);
        let m = g.describe("ids", &[77]).unwrap();
        assert_eq!(m.dtype, DType::U64);
        assert_eq!(m.shape.total_len(), 77);
    }
}
