//! Error type shared by the data-model modules.

use std::fmt;

/// Errors produced by the self-describing data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A buffer's element count disagrees with its declared shape.
    ShapeMismatch {
        /// Elements held by the buffer.
        data_len: usize,
        /// Elements implied by the shape.
        shape_len: usize,
    },
    /// Two buffers involved in one operation have different element types.
    DTypeMismatch {
        /// Type expected by the operation.
        expected: crate::DType,
        /// Type actually found.
        found: crate::DType,
    },
    /// A region refers to coordinates outside the array it addresses, or
    /// has the wrong rank.
    RegionOutOfBounds {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A dimension index was not valid for the variable's rank.
    NoSuchDimension {
        /// The offending index.
        index: usize,
        /// The variable's rank.
        ndims: usize,
    },
    /// A quantity label was requested that the dimension's header does not
    /// contain.
    NoSuchLabel {
        /// The missing label.
        label: String,
        /// Index of the dimension whose header was searched.
        dim: usize,
    },
    /// A dimension has no header (label list) attached.
    MissingHeader {
        /// Index of the unlabelled dimension.
        dim: usize,
    },
    /// A dimension header disagrees with the shape it describes: wrong
    /// length for the extent, or attached to a dimension past the rank.
    MalformedHeader {
        /// Index of the offending dimension.
        dim: usize,
        /// Row names the header must supply (the dimension's extent), or 0
        /// when the dimension itself is out of range.
        expected: usize,
        /// Row names the header actually supplies.
        found: usize,
    },
    /// The group-config parser rejected its input.
    ConfigParse {
        /// 1-based line of the error.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The binary container was malformed or truncated.
    Container {
        /// What went wrong.
        detail: String,
    },
    /// An I/O error, stringified (keeps the error type `Clone`/`Eq`).
    Io {
        /// Stringified `std::io::Error`.
        detail: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ShapeMismatch {
                data_len,
                shape_len,
            } => write!(
                f,
                "buffer holds {data_len} elements but the shape implies {shape_len}"
            ),
            DataError::DTypeMismatch { expected, found } => {
                write!(f, "expected dtype {expected:?}, found {found:?}")
            }
            DataError::RegionOutOfBounds { detail } => write!(f, "region out of bounds: {detail}"),
            DataError::NoSuchDimension { index, ndims } => {
                write!(f, "dimension index {index} out of range for rank {ndims}")
            }
            DataError::NoSuchLabel { label, dim } => {
                write!(
                    f,
                    "no quantity named {label:?} in the header of dimension {dim}"
                )
            }
            DataError::MissingHeader { dim } => {
                write!(f, "dimension {dim} carries no quantity header")
            }
            DataError::MalformedHeader {
                dim,
                expected,
                found,
            } => write!(
                f,
                "header of dimension {dim} names {found} rows but the extent is {expected}"
            ),
            DataError::ConfigParse { line, detail } => {
                write!(f, "group config parse error at line {line}: {detail}")
            }
            DataError::Container { detail } => write!(f, "container format error: {detail}"),
            DataError::Io { detail } => write!(f, "io error: {detail}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io {
            detail: e.to_string(),
        }
    }
}

/// Convenience alias used throughout the crate.
pub type DataResult<T> = Result<T, DataError>;
