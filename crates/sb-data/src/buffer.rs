//! Typed linear storage: the payload of every variable and chunk.
//!
//! Compute kernels in SmartBlock operate in `f64`; the buffer keeps the
//! element type the producer declared (self-description) and converts at the
//! edges. Integer types round-trip losslessly for the magnitudes simulations
//! actually emit (|v| < 2^53).

use std::sync::Arc;

use crate::error::{DataError, DataResult};

/// Element type of a buffer, carried as stream metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit unsigned integer.
    U32,
    /// 64-bit unsigned integer.
    U64,
}

impl DType {
    /// Size of one element in bytes.
    pub fn elem_bytes(self) -> usize {
        match self {
            DType::F32 | DType::I32 | DType::U32 => 4,
            DType::F64 | DType::I64 | DType::U64 => 8,
        }
    }

    /// The canonical lowercase name used by group configs ("f64", "i32", …).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::U32 => "u32",
            DType::U64 => "u64",
        }
    }

    /// Parses a config-file type name.
    pub fn parse(name: &str) -> Option<DType> {
        Some(match name {
            "f32" => DType::F32,
            "f64" | "double" => DType::F64,
            "i32" | "int" => DType::I32,
            "i64" | "long" => DType::I64,
            "u32" => DType::U32,
            "u64" => DType::U64,
            _ => return None,
        })
    }

    /// Stable on-disk tag for the binary container.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F64 => 1,
            DType::I32 => 2,
            DType::I64 => 3,
            DType::U32 => 4,
            DType::U64 => 5,
        }
    }

    /// Inverse of [`DType::tag`].
    pub(crate) fn from_tag(tag: u8) -> DataResult<DType> {
        Ok(match tag {
            0 => DType::F32,
            1 => DType::F64,
            2 => DType::I32,
            3 => DType::I64,
            4 => DType::U32,
            5 => DType::U64,
            other => {
                return Err(DataError::Container {
                    detail: format!("unknown dtype tag {other}"),
                })
            }
        })
    }
}

/// A typed, owned, linear data buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// 32-bit unsigned integers.
    U32(Vec<u32>),
    /// 64-bit unsigned integers.
    U64(Vec<u64>),
}

macro_rules! for_each_variant {
    ($self:expr, $v:ident => $body:expr) => {
        match $self {
            Buffer::F32($v) => $body,
            Buffer::F64($v) => $body,
            Buffer::I32($v) => $body,
            Buffer::I64($v) => $body,
            Buffer::U32($v) => $body,
            Buffer::U64($v) => $body,
        }
    };
}

impl Buffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        for_each_variant!(self, v => v.len())
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        match self {
            Buffer::F32(_) => DType::F32,
            Buffer::F64(_) => DType::F64,
            Buffer::I32(_) => DType::I32,
            Buffer::I64(_) => DType::I64,
            Buffer::U32(_) => DType::U32,
            Buffer::U64(_) => DType::U64,
        }
    }

    /// Total payload size in bytes (what the throughput metrics count).
    pub fn byte_len(&self) -> usize {
        self.len() * self.dtype().elem_bytes()
    }

    /// A zero-filled buffer of `len` elements of `dtype`.
    pub fn zeros(dtype: DType, len: usize) -> Buffer {
        match dtype {
            DType::F32 => Buffer::F32(vec![0.0; len]),
            DType::F64 => Buffer::F64(vec![0.0; len]),
            DType::I32 => Buffer::I32(vec![0; len]),
            DType::I64 => Buffer::I64(vec![0; len]),
            DType::U32 => Buffer::U32(vec![0; len]),
            DType::U64 => Buffer::U64(vec![0; len]),
        }
    }

    /// Element `i` widened to `f64`.
    ///
    /// Panics if `i` is out of range, like slice indexing.
    #[inline]
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            Buffer::F64(v) => v[i],
            Buffer::F32(v) => v[i] as f64,
            Buffer::I32(v) => v[i] as f64,
            Buffer::I64(v) => v[i] as f64,
            Buffer::U32(v) => v[i] as f64,
            Buffer::U64(v) => v[i] as f64,
        }
    }

    /// The whole buffer widened to `f64`, allocating a fresh vector.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            Buffer::F64(v) => v.clone(),
            _ => (0..self.len()).map(|i| self.get_f64(i)).collect(),
        }
    }

    /// Consumes the buffer into `f64` values, moving (not copying) the
    /// storage when it is already `F64` — the right call when the caller
    /// owns the variable, which every component step loop does.
    pub fn into_f64_vec(self) -> Vec<f64> {
        match self {
            Buffer::F64(v) => v,
            other => other.to_f64_vec(),
        }
    }

    /// Borrows the underlying `f64` storage when the buffer is already
    /// `F64`, avoiding the copy [`Buffer::to_f64_vec`] would make.
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Buffer::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Builds a buffer of `dtype` from `f64` values, narrowing as needed
    /// (`as` casts; saturating for floats-to-int per Rust semantics).
    pub fn from_f64_vec(dtype: DType, values: Vec<f64>) -> Buffer {
        match dtype {
            DType::F32 => Buffer::F32(values.into_iter().map(|x| x as f32).collect()),
            DType::F64 => Buffer::F64(values),
            DType::I32 => Buffer::I32(values.into_iter().map(|x| x as i32).collect()),
            DType::I64 => Buffer::I64(values.into_iter().map(|x| x as i64).collect()),
            DType::U32 => Buffer::U32(values.into_iter().map(|x| x as u32).collect()),
            DType::U64 => Buffer::U64(values.into_iter().map(|x| x as u64).collect()),
        }
    }

    /// Copies `count` elements starting at `src_off` in `src` into `self`
    /// starting at `dst_off`. Both buffers must share a dtype.
    pub fn copy_from(
        &mut self,
        dst_off: usize,
        src: &Buffer,
        src_off: usize,
        count: usize,
    ) -> DataResult<()> {
        if self.dtype() != src.dtype() {
            return Err(DataError::DTypeMismatch {
                expected: self.dtype(),
                found: src.dtype(),
            });
        }
        if src_off + count > src.len() || dst_off + count > self.len() {
            return Err(DataError::RegionOutOfBounds {
                detail: format!(
                    "copy of {count} elems (src {src_off}/{}, dst {dst_off}/{})",
                    src.len(),
                    self.len()
                ),
            });
        }
        macro_rules! copy {
            ($d:ident, $s:ident) => {
                $d[dst_off..dst_off + count].copy_from_slice(&$s[src_off..src_off + count])
            };
        }
        match (self, src) {
            (Buffer::F32(d), Buffer::F32(s)) => copy!(d, s),
            (Buffer::F64(d), Buffer::F64(s)) => copy!(d, s),
            (Buffer::I32(d), Buffer::I32(s)) => copy!(d, s),
            (Buffer::I64(d), Buffer::I64(s)) => copy!(d, s),
            (Buffer::U32(d), Buffer::U32(s)) => copy!(d, s),
            (Buffer::U64(d), Buffer::U64(s)) => copy!(d, s),
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }

    /// Gathers rows along a middle dimension: viewing the buffer as a
    /// row-major `[pre][d][post]` array, produces `[pre][indices][post]`
    /// with the selected rows in the order given.
    ///
    /// This is the typed fast path of the Select kernel: one dispatch for
    /// the whole gather instead of one per copied run.
    ///
    /// Panics if the buffer length is not `pre * d * post` or an index is
    /// out of range, like slice indexing.
    pub fn gather_dim(&self, pre: usize, d: usize, post: usize, indices: &[usize]) -> Buffer {
        assert_eq!(self.len(), pre * d * post, "gather_dim shape mismatch");
        macro_rules! gather {
            ($v:expr, $variant:ident) => {{
                let src = $v;
                let mut out = Vec::with_capacity(pre * indices.len() * post);
                for p in 0..pre {
                    let base = p * d * post;
                    for &i in indices {
                        assert!(i < d, "gather_dim index {i} out of range for extent {d}");
                        let start = base + i * post;
                        out.extend_from_slice(&src[start..start + post]);
                    }
                }
                Buffer::$variant(out)
            }};
        }
        match self {
            Buffer::F32(v) => gather!(v, F32),
            Buffer::F64(v) => gather!(v, F64),
            Buffer::I32(v) => gather!(v, I32),
            Buffer::I64(v) => gather!(v, I64),
            Buffer::U32(v) => gather!(v, U32),
            Buffer::U64(v) => gather!(v, U64),
        }
    }

    /// Serializes the payload as little-endian bytes (container format).
    ///
    /// One pre-sized allocation per call; each variant converts in bulk via
    /// fixed-width array stores (`as_chunks_mut`), which the compiler lowers
    /// to straight block copies on little-endian targets — not one
    /// `extend_from_slice` per element.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.byte_len()];
        macro_rules! emit {
            ($v:expr, $w:expr) => {{
                let (dst, rest) = out.as_chunks_mut::<$w>();
                debug_assert!(rest.is_empty());
                for (d, x) in dst.iter_mut().zip($v) {
                    *d = x.to_le_bytes();
                }
            }};
        }
        match self {
            Buffer::F32(v) => emit!(v, 4),
            Buffer::F64(v) => emit!(v, 8),
            Buffer::I32(v) => emit!(v, 4),
            Buffer::I64(v) => emit!(v, 8),
            Buffer::U32(v) => emit!(v, 4),
            Buffer::U64(v) => emit!(v, 8),
        }
        out
    }

    /// Deserializes a payload of `len` elements of `dtype` from
    /// little-endian bytes, converting in bulk per variant (fixed-width
    /// array loads, no per-element fallible conversions).
    pub fn from_le_bytes(dtype: DType, len: usize, bytes: &[u8]) -> DataResult<Buffer> {
        let need = len
            .checked_mul(dtype.elem_bytes())
            .ok_or_else(|| DataError::Container {
                detail: format!("element count {len} overflows the byte length"),
            })?;
        if bytes.len() < need {
            return Err(DataError::Container {
                detail: format!("payload truncated: need {need} bytes, have {}", bytes.len()),
            });
        }
        macro_rules! parse {
            ($t:ty, $variant:ident, $w:expr) => {{
                let (src, _) = bytes[..need].as_chunks::<$w>();
                Buffer::$variant(src.iter().map(|c| <$t>::from_le_bytes(*c)).collect())
            }};
        }
        Ok(match dtype {
            DType::F32 => parse!(f32, F32, 4),
            DType::F64 => parse!(f64, F64, 8),
            DType::I32 => parse!(i32, I32, 4),
            DType::I64 => parse!(i64, I64, 8),
            DType::U32 => parse!(u32, U32, 4),
            DType::U64 => parse!(u64, U64, 8),
        })
    }

    /// An empty buffer of `dtype` with room for `capacity` elements —
    /// the starting point for assembling output by [`Buffer::append_from`]
    /// without paying a zero-fill first.
    pub fn with_capacity(dtype: DType, capacity: usize) -> Buffer {
        match dtype {
            DType::F32 => Buffer::F32(Vec::with_capacity(capacity)),
            DType::F64 => Buffer::F64(Vec::with_capacity(capacity)),
            DType::I32 => Buffer::I32(Vec::with_capacity(capacity)),
            DType::I64 => Buffer::I64(Vec::with_capacity(capacity)),
            DType::U32 => Buffer::U32(Vec::with_capacity(capacity)),
            DType::U64 => Buffer::U64(Vec::with_capacity(capacity)),
        }
    }

    /// Appends `count` elements starting at `src_off` in `src` to the end
    /// of `self`. Both buffers must share a dtype.
    ///
    /// With [`Buffer::with_capacity`] this assembles an exactly-tiled
    /// reader box as one run of block copies, skipping the zero-fill that
    /// [`Buffer::zeros`] + scatter writes would pay.
    pub fn append_from(&mut self, src: &Buffer, src_off: usize, count: usize) -> DataResult<()> {
        if self.dtype() != src.dtype() {
            return Err(DataError::DTypeMismatch {
                expected: self.dtype(),
                found: src.dtype(),
            });
        }
        if src_off + count > src.len() {
            return Err(DataError::RegionOutOfBounds {
                detail: format!(
                    "append of {count} elems at src offset {src_off} exceeds source length {}",
                    src.len()
                ),
            });
        }
        macro_rules! append {
            ($d:ident, $s:ident) => {
                $d.extend_from_slice(&$s[src_off..src_off + count])
            };
        }
        match (self, src) {
            (Buffer::F32(d), Buffer::F32(s)) => append!(d, s),
            (Buffer::F64(d), Buffer::F64(s)) => append!(d, s),
            (Buffer::I32(d), Buffer::I32(s)) => append!(d, s),
            (Buffer::I64(d), Buffer::I64(s)) => append!(d, s),
            (Buffer::U32(d), Buffer::U32(s)) => append!(d, s),
            (Buffer::U64(d), Buffer::U64(s)) => append!(d, s),
            _ => unreachable!("dtype equality checked above"),
        }
        Ok(())
    }
}

/// A reference-counted, immutable-by-default payload: the unit of sharing
/// on the zero-copy data plane.
///
/// A writer hands its owned [`Buffer`] to the stream once; the step slot,
/// every subscribed reader group, and every downstream forward then share
/// that single allocation by `Arc` clone. Mutation goes through
/// [`SharedBuffer::make_mut`], which is copy-on-write: free while the rank
/// holds the only reference (the common per-step kernel case), a deep copy
/// only when the payload is genuinely shared.
///
/// Derefs to [`Buffer`], so all read-side accessors (`len`, `get_f64`,
/// `as_f64_slice`, …) apply directly.
#[derive(Debug, Clone)]
pub struct SharedBuffer(Arc<Buffer>);

impl SharedBuffer {
    /// Wraps an owned buffer (no copy).
    pub fn new(buffer: Buffer) -> SharedBuffer {
        SharedBuffer(Arc::new(buffer))
    }

    /// The owned buffer back out: free when this is the last reference,
    /// otherwise one deep copy.
    pub fn into_owned(self) -> Buffer {
        match Arc::try_unwrap(self.0) {
            Ok(b) => b,
            Err(shared) => (*shared).clone(),
        }
    }

    /// Consumes the payload into `f64` values, moving (not copying) the
    /// storage when it is uniquely held and already `F64`.
    pub fn into_f64_vec(self) -> Vec<f64> {
        match Arc::try_unwrap(self.0) {
            Ok(b) => b.into_f64_vec(),
            Err(shared) => shared.to_f64_vec(),
        }
    }

    /// Mutable access, copy-on-write: no copy while uniquely held.
    pub fn make_mut(&mut self) -> &mut Buffer {
        Arc::make_mut(&mut self.0)
    }

    /// True when both handles share one allocation — what the zero-copy
    /// tests assert instead of comparing contents.
    pub fn shares_allocation(a: &SharedBuffer, b: &SharedBuffer) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl std::ops::Deref for SharedBuffer {
    type Target = Buffer;

    fn deref(&self) -> &Buffer {
        &self.0
    }
}

impl From<Buffer> for SharedBuffer {
    fn from(b: Buffer) -> SharedBuffer {
        SharedBuffer::new(b)
    }
}

impl PartialEq for SharedBuffer {
    fn eq(&self, other: &SharedBuffer) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || *self.0 == *other.0
    }
}

impl PartialEq<Buffer> for SharedBuffer {
    fn eq(&self, other: &Buffer) -> bool {
        *self.0 == *other
    }
}

impl PartialEq<SharedBuffer> for Buffer {
    fn eq(&self, other: &SharedBuffer) -> bool {
        *self == *other.0
    }
}

impl From<Vec<f64>> for Buffer {
    fn from(v: Vec<f64>) -> Self {
        Buffer::F64(v)
    }
}

impl From<Vec<f32>> for Buffer {
    fn from(v: Vec<f32>) -> Self {
        Buffer::F32(v)
    }
}

impl From<Vec<i64>> for Buffer {
    fn from(v: Vec<i64>) -> Self {
        Buffer::I64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names_round_trip() {
        for dt in [
            DType::F32,
            DType::F64,
            DType::I32,
            DType::I64,
            DType::U32,
            DType::U64,
        ] {
            assert_eq!(DType::parse(dt.name()), Some(dt));
            assert_eq!(DType::from_tag(dt.tag()).unwrap(), dt);
        }
        assert_eq!(DType::parse("float128"), None);
        assert!(DType::from_tag(99).is_err());
    }

    #[test]
    fn zeros_len_and_bytes() {
        let b = Buffer::zeros(DType::F32, 10);
        assert_eq!(b.len(), 10);
        assert_eq!(b.byte_len(), 40);
        assert!(!b.is_empty());
        assert!(Buffer::zeros(DType::I64, 0).is_empty());
    }

    #[test]
    fn f64_round_trip_is_lossless_for_f64() {
        let b = Buffer::F64(vec![1.5, -2.25, 1e300]);
        assert_eq!(b.to_f64_vec(), vec![1.5, -2.25, 1e300]);
        assert_eq!(b.as_f64_slice().unwrap(), &[1.5, -2.25, 1e300]);
        let back = Buffer::from_f64_vec(DType::F64, b.to_f64_vec());
        assert_eq!(back, b);
    }

    #[test]
    fn integer_widening_and_narrowing() {
        let b = Buffer::I64(vec![-5, 0, 1 << 40]);
        assert_eq!(b.get_f64(0), -5.0);
        assert_eq!(b.get_f64(2), (1u64 << 40) as f64);
        assert!(b.as_f64_slice().is_none());
        let narrowed = Buffer::from_f64_vec(DType::I32, vec![3.7, -2.2]);
        assert_eq!(narrowed, Buffer::I32(vec![3, -2]));
    }

    #[test]
    fn copy_from_happy_path() {
        let src = Buffer::F64(vec![1.0, 2.0, 3.0, 4.0]);
        let mut dst = Buffer::zeros(DType::F64, 4);
        dst.copy_from(1, &src, 2, 2).unwrap();
        assert_eq!(dst, Buffer::F64(vec![0.0, 3.0, 4.0, 0.0]));
    }

    #[test]
    fn copy_from_rejects_dtype_mismatch_and_overrun() {
        let src = Buffer::F32(vec![1.0]);
        let mut dst = Buffer::zeros(DType::F64, 4);
        assert!(matches!(
            dst.copy_from(0, &src, 0, 1),
            Err(DataError::DTypeMismatch { .. })
        ));
        let src = Buffer::F64(vec![1.0]);
        assert!(matches!(
            dst.copy_from(3, &src, 0, 2),
            Err(DataError::RegionOutOfBounds { .. })
        ));
    }

    #[test]
    fn gather_dim_selects_rows_in_order() {
        // 2 x 3 x 2 array, values 0..12; keep middle rows [2, 0].
        let b = Buffer::I64((0..12).collect());
        let out = b.gather_dim(2, 3, 2, &[2, 0]);
        assert_eq!(out, Buffer::I64(vec![4, 5, 0, 1, 10, 11, 6, 7]));
        // Empty selection.
        assert_eq!(b.gather_dim(2, 3, 2, &[]).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_dim_checks_indices() {
        Buffer::F64(vec![0.0; 6]).gather_dim(1, 3, 2, &[3]);
    }

    #[test]
    fn le_bytes_round_trip_all_dtypes() {
        let cases = vec![
            Buffer::F32(vec![1.5, -0.25]),
            Buffer::F64(vec![std::f64::consts::PI, -1e-200]),
            Buffer::I32(vec![i32::MIN, -1, i32::MAX]),
            Buffer::I64(vec![i64::MIN, 0, i64::MAX]),
            Buffer::U32(vec![0, u32::MAX]),
            Buffer::U64(vec![u64::MAX, 7]),
        ];
        for b in cases {
            let bytes = b.to_le_bytes();
            let back = Buffer::from_le_bytes(b.dtype(), b.len(), &bytes).unwrap();
            assert_eq!(back, b);
        }
    }

    #[test]
    fn from_le_bytes_rejects_truncation() {
        let b = Buffer::F64(vec![1.0, 2.0]);
        let bytes = b.to_le_bytes();
        assert!(Buffer::from_le_bytes(DType::F64, 2, &bytes[..15]).is_err());
    }
}
