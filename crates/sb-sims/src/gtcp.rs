//! mini-GTCP: a toroidal plasma field solver.
//!
//! GTCP simulates a toroidally confined plasma, splitting the torus into
//! toroidal slices of grid points and outputting "7 properties of the
//! plasma such as pressure and energy flux" per grid point (paper §V-A,
//! Fig. 4). The workflow consumes a three-dimensional array —
//! `toroidal-slices × grid-points × properties` — whose pressure field has
//! non-trivial structure.
//!
//! This module evolves four prognostic fields (density, parallel and
//! perpendicular temperature, potential) with toroidal upwind advection,
//! poloidal diffusion and a drift-wave-flavoured coupling term, then
//! derives three diagnostic fields (parallel/perpendicular pressure and
//! energy flux) at output time — seven labelled properties in total.
//!
//! Ranks own contiguous blocks of toroidal slices and exchange one ghost
//! slice with each ring neighbour per substep — the point-to-point pattern
//! of a real domain-decomposed PIC code.

use sb_comm::Communicator;
use sb_data::decompose::split_1d_part;
use sb_data::{Buffer, Chunk, DType, Region, Shape, VariableMeta};

use crate::driver::SimRank;

/// Names of the seven output properties, in output order.
pub const GTCP_PROPERTIES: [&str; 7] = [
    "density",
    "T_par",
    "T_perp",
    "potential",
    "P_par",
    "P_perp",
    "energy_flux",
];

/// Index of the perpendicular pressure property — the quantity the paper's
/// GTCP workflow selects and histograms.
pub const P_PERP_INDEX: usize = 5;

/// Number of prognostic (time-stepped) fields.
const N_PROG: usize = 4;
const F_DENSITY: usize = 0;
const F_TPAR: usize = 1;
const F_TPERP: usize = 2;
const F_PHI: usize = 3;

/// Mesh and physics parameters.
#[derive(Debug, Clone)]
pub struct GtcpConfig {
    /// Toroidal slices around the torus.
    pub n_slices: usize,
    /// Grid points per slice (a poloidal ring).
    pub n_points: usize,
    /// Integration timestep.
    pub dt: f64,
    /// Toroidal advection speed (slices per unit time).
    pub advection: f64,
    /// Poloidal diffusivity.
    pub diffusion: f64,
    /// Drift-coupling strength between potential and density.
    pub coupling: f64,
    /// Zonal-flow damping: the rate at which the poloidally uniform (m=0)
    /// component of the potential is sheared away, the stabilizing
    /// mechanism of the paper's GTCP reference (turbulent transport
    /// reduction by zonal flows). 0 disables it.
    pub zonal_damping: f64,
    /// Seed for the initial perturbation.
    pub seed: u64,
}

impl Default for GtcpConfig {
    fn default() -> Self {
        GtcpConfig {
            n_slices: 32,
            n_points: 64,
            dt: 0.01,
            advection: 1.5,
            diffusion: 0.4,
            coupling: 0.25,
            zonal_damping: 0.0,
            seed: 7,
        }
    }
}

impl GtcpConfig {
    /// A configuration sized so one output step is roughly `bytes` large.
    pub fn with_output_bytes(bytes: usize) -> GtcpConfig {
        // bytes = slices * points * 7 * 8; keep points = 2 * slices.
        let cells = (bytes / (7 * 8)).max(8);
        let slices = ((cells as f64 / 2.0).sqrt().ceil() as usize).max(2);
        GtcpConfig {
            n_slices: slices,
            n_points: 2 * slices,
            ..GtcpConfig::default()
        }
    }
}

fn mix(seed: u64, i: u64, salt: u64) -> f64 {
    let mut x = seed ^ (i.wrapping_mul(0x2545_F491_4F6C_DD1D)) ^ (salt << 17);
    x ^= x >> 31;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 29;
    (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// One rank's block of toroidal slices.
pub struct GtcpSim {
    cfg: GtcpConfig,
    rank: usize,
    nranks: usize,
    /// First global slice this rank owns, and how many.
    slice_start: usize,
    slice_count: usize,
    /// Prognostic fields: `[field][local_slice][point]`, flattened.
    fields: [Vec<f64>; N_PROG],
    /// Scratch for the update.
    scratch: Vec<f64>,
    /// Ghost slices from the ring neighbours: `[field][point]`.
    ghost_prev: [Vec<f64>; N_PROG],
}

impl GtcpSim {
    /// Builds rank `rank`'s block with a deterministic initial perturbation.
    pub fn new(cfg: GtcpConfig, rank: usize, nranks: usize) -> GtcpSim {
        assert!(rank < nranks);
        assert!(
            nranks <= cfg.n_slices,
            "more ranks than toroidal slices ({} > {})",
            nranks,
            cfg.n_slices
        );
        let (slice_start, slice_count) = split_1d_part(cfg.n_slices, nranks, rank);
        let np = cfg.n_points;
        let mut fields: [Vec<f64>; N_PROG] = std::array::from_fn(|_| vec![0.0; slice_count * np]);
        for ls in 0..slice_count {
            let s = slice_start + ls;
            let theta = 2.0 * std::f64::consts::PI * s as f64 / cfg.n_slices as f64;
            for j in 0..np {
                let phi = 2.0 * std::f64::consts::PI * j as f64 / np as f64;
                let cell = (s * np + j) as u64;
                let idx = ls * np + j;
                // Density: background + two interacting modes + noise.
                fields[F_DENSITY][idx] = 1.0
                    + 0.15 * (3.0 * phi + theta).cos()
                    + 0.08 * (5.0 * phi - 2.0 * theta).sin()
                    + 0.02 * mix(cfg.seed, cell, 0);
                // Temperatures: poloidally varying profiles.
                fields[F_TPAR][idx] = 1.2 + 0.2 * phi.cos() + 0.02 * mix(cfg.seed, cell, 1);
                fields[F_TPERP][idx] =
                    0.9 + 0.25 * (2.0 * phi).sin() + 0.02 * mix(cfg.seed, cell, 2);
                // Potential: small seed perturbation.
                fields[F_PHI][idx] = 0.05 * (4.0 * phi + 2.0 * theta).cos();
            }
        }
        GtcpSim {
            scratch: vec![0.0; slice_count * np],
            ghost_prev: std::array::from_fn(|_| vec![0.0; np]),
            cfg,
            rank,
            nranks,
            slice_start,
            slice_count,
            fields,
        }
    }

    /// This rank's `(start, count)` block of toroidal slices.
    pub fn local_slices(&self) -> (usize, usize) {
        (self.slice_start, self.slice_count)
    }

    /// Global output shape: `slices × points × 7`.
    pub fn global_shape(&self) -> Shape {
        Shape::of(&[
            ("toroidal", self.cfg.n_slices),
            ("gridpoints", self.cfg.n_points),
            ("properties", GTCP_PROPERTIES.len()),
        ])
    }

    /// Mean of a prognostic field over this rank's block (for tests).
    pub fn local_mean(&self, field: usize) -> f64 {
        let f = &self.fields[field];
        f.iter().sum::<f64>() / f.len() as f64
    }

    /// Local fluctuation energy: sum over cells of (n - 1)^2 + phi^2, the
    /// quantity zonal flows suppress.
    pub fn local_fluctuation_energy(&self) -> f64 {
        let n = &self.fields[F_DENSITY];
        let phi = &self.fields[F_PHI];
        n.iter()
            .zip(phi)
            .map(|(&d, &p)| (d - 1.0) * (d - 1.0) + p * p)
            .sum()
    }

    /// Exchanges ghost slices around the toroidal ring. Each rank sends its
    /// *last* slice to the next rank, which uses it as the upwind neighbour
    /// of its first slice.
    fn exchange_ghosts(&mut self, comm: &Communicator) {
        let np = self.cfg.n_points;
        if self.nranks == 1 {
            // Periodic wrap within the local block.
            for f in 0..N_PROG {
                let last = (self.slice_count - 1) * np;
                self.ghost_prev[f].copy_from_slice(&self.fields[f][last..last + np]);
            }
            return;
        }
        let next = (self.rank + 1) % self.nranks;
        let prev = (self.rank + self.nranks - 1) % self.nranks;
        for f in 0..N_PROG {
            let last = (self.slice_count - 1) * np;
            let outgoing: Vec<f64> = self.fields[f][last..last + np].to_vec();
            comm.send(next, f as u64, outgoing);
        }
        for (f, ghost) in self.ghost_prev.iter_mut().enumerate() {
            *ghost = comm.recv::<Vec<f64>>(prev, f as u64);
        }
    }

    /// Builds the seven-property output for this rank's slices.
    fn output_values(&self) -> Vec<f64> {
        let np = self.cfg.n_points;
        let nprops = GTCP_PROPERTIES.len();
        let mut out = vec![0.0; self.slice_count * np * nprops];
        for ls in 0..self.slice_count {
            for j in 0..np {
                let idx = ls * np + j;
                let n = self.fields[F_DENSITY][idx];
                let tpar = self.fields[F_TPAR][idx];
                let tperp = self.fields[F_TPERP][idx];
                let phi = self.fields[F_PHI][idx];
                // Poloidal temperature gradient drives the energy flux.
                let jn = (j + 1) % np;
                let grad_t = (self.fields[F_TPERP][ls * np + jn] - tperp) * np as f64
                    / (2.0 * std::f64::consts::PI);
                let base = (ls * np + j) * nprops;
                out[base] = n;
                out[base + 1] = tpar;
                out[base + 2] = tperp;
                out[base + 3] = phi;
                out[base + 4] = n * tpar; // parallel pressure
                out[base + 5] = n * tperp; // perpendicular pressure
                out[base + 6] = -self.cfg.diffusion * grad_t; // energy flux
            }
        }
        out
    }
}

impl SimRank for GtcpSim {
    fn name(&self) -> &'static str {
        "gtcp"
    }

    /// One explicit step: toroidal upwind advection + poloidal diffusion +
    /// drift coupling.
    fn substep(&mut self, comm: &Communicator) {
        let np = self.cfg.n_points;
        let dt = self.cfg.dt;
        // Zonal-flow shear: damp the poloidal-mean (m=0) component of the
        // potential BEFORE the ghost exchange, so neighbours see post-damp
        // values regardless of where rank boundaries fall.
        if self.cfg.zonal_damping > 0.0 {
            let damp = (-self.cfg.zonal_damping * dt).exp();
            for ls in 0..self.slice_count {
                let row = &mut self.fields[F_PHI][ls * np..(ls + 1) * np];
                let mean: f64 = row.iter().sum::<f64>() / np as f64;
                let damped = mean * damp;
                for v in row {
                    *v += damped - mean;
                }
            }
        }
        self.exchange_ghosts(comm);
        let adv = self.cfg.advection;
        let diff = self.cfg.diffusion;
        let dphi2 = {
            let dphi = 2.0 * std::f64::consts::PI / np as f64;
            dphi * dphi
        };
        for f in 0..N_PROG {
            {
                let field = &self.fields[f];
                let ghost = &self.ghost_prev[f];
                let scratch = &mut self.scratch;
                for ls in 0..self.slice_count {
                    for j in 0..np {
                        let idx = ls * np + j;
                        let here = field[idx];
                        // Upwind toroidal neighbour: previous slice (ghost
                        // for the first local slice).
                        let upwind = if ls == 0 {
                            ghost[j]
                        } else {
                            field[(ls - 1) * np + j]
                        };
                        let jl = (j + np - 1) % np;
                        let jr = (j + 1) % np;
                        let lap = (field[ls * np + jl] - 2.0 * here + field[ls * np + jr]) / dphi2;
                        // Drift coupling: density and potential feed each
                        // other; temperatures relax toward the density.
                        let drive = match f {
                            F_DENSITY => self.cfg.coupling * self.fields[F_PHI][idx],
                            F_PHI => -self.cfg.coupling * (self.fields[F_DENSITY][idx] - 1.0),
                            _ => 0.05 * (self.fields[F_DENSITY][idx] - here),
                        };
                        scratch[idx] = here + dt * (-adv * (here - upwind) + diff * lap + drive);
                    }
                }
            }
            std::mem::swap(&mut self.fields[f], &mut self.scratch);
        }
    }

    /// This rank's `slices × points × 7` block of the global output.
    fn output_chunk(&self) -> Chunk {
        let mut meta = VariableMeta::new("plasma", self.global_shape(), DType::F64);
        meta.labels
            .insert(2, GTCP_PROPERTIES.iter().map(|s| s.to_string()).collect());
        Chunk::new(
            meta,
            Region::new(
                vec![self.slice_start, 0, 0],
                vec![self.slice_count, self.cfg.n_points, GTCP_PROPERTIES.len()],
            ),
            Buffer::F64(self.output_values()),
        )
        .expect("locally constructed chunk is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_comm::launch;

    fn small() -> GtcpConfig {
        GtcpConfig {
            n_slices: 8,
            n_points: 16,
            ..GtcpConfig::default()
        }
    }

    #[test]
    fn blocks_tile_the_torus() {
        let total: usize = (0..3)
            .map(|r| GtcpSim::new(small(), r, 3).local_slices().1)
            .sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn initial_fields_are_structured() {
        let sim = GtcpSim::new(small(), 0, 1);
        // Density near 1, temperatures near their profiles.
        assert!((sim.local_mean(F_DENSITY) - 1.0).abs() < 0.1);
        assert!((sim.local_mean(F_TPAR) - 1.2).abs() < 0.1);
        assert!((sim.local_mean(F_TPERP) - 0.9).abs() < 0.1);
    }

    #[test]
    fn dynamics_stay_finite_and_bounded() {
        launch(1, |comm| {
            let mut sim = GtcpSim::new(small(), 0, 1);
            for _ in 0..500 {
                sim.substep(&comm);
            }
            for f in 0..N_PROG {
                for &v in &sim.fields[f] {
                    assert!(v.is_finite());
                    assert!(v.abs() < 10.0, "field {f} diverged: {v}");
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn parallel_matches_serial() {
        let steps = 30;
        let serial = {
            launch(1, |comm| {
                let mut sim = GtcpSim::new(small(), 0, 1);
                for _ in 0..steps {
                    sim.substep(&comm);
                }
                sim.output_values()
            })
            .unwrap()
            .remove(0)
        };
        for nranks in [2usize, 4] {
            let blocks = launch(nranks, move |comm| {
                let mut sim = GtcpSim::new(small(), comm.rank(), comm.size());
                for _ in 0..steps {
                    sim.substep(&comm);
                }
                (sim.local_slices(), sim.output_values())
            })
            .unwrap();
            let mut stitched = vec![0.0; serial.len()];
            let np = small().n_points;
            let nprops = GTCP_PROPERTIES.len();
            for ((start, count), values) in blocks {
                let from = start * np * nprops;
                stitched[from..from + count * np * nprops].copy_from_slice(&values);
            }
            for (i, (a, b)) in serial.iter().zip(&stitched).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "serial/parallel divergence with {nranks} ranks at {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn output_has_seven_labelled_properties() {
        let sim = GtcpSim::new(small(), 0, 1);
        let chunk = sim.output_chunk();
        assert_eq!(chunk.meta.shape.sizes(), vec![8, 16, 7]);
        assert_eq!(chunk.meta.resolve_label(2, "P_perp").unwrap(), P_PERP_INDEX);
        assert_eq!(chunk.meta.header(2).unwrap().len(), 7);
        // P_perp = density * T_perp at every point.
        let v = &chunk.data;
        for cell in 0..8 * 16 {
            let n = v.get_f64(cell * 7);
            let tperp = v.get_f64(cell * 7 + 2);
            let pperp = v.get_f64(cell * 7 + P_PERP_INDEX);
            assert!((pperp - n * tperp).abs() < 1e-12);
        }
    }

    #[test]
    fn advection_moves_structure_toroidally() {
        // With pure advection (no diffusion/coupling), a pattern should
        // translate around the torus.
        let cfg = GtcpConfig {
            n_slices: 16,
            n_points: 8,
            diffusion: 0.0,
            coupling: 0.0,
            dt: 0.05,
            advection: 1.0,
            zonal_damping: 0.0,
            seed: 1,
        };
        launch(1, |comm| {
            let mut sim = GtcpSim::new(cfg.clone(), 0, 1);
            let before = sim.local_mean(F_DENSITY);
            for _ in 0..100 {
                sim.substep(&comm);
            }
            // Upwind advection preserves the mean exactly (telescoping sum
            // around the periodic ring).
            let after = sim.local_mean(F_DENSITY);
            assert!((before - after).abs() < 1e-9, "{before} vs {after}");
        })
        .unwrap();
    }

    #[test]
    fn zonal_damping_reduces_fluctuation_energy() {
        // With strong drift coupling the system sustains fluctuations;
        // zonal damping must lower the late-time fluctuation energy.
        let base = GtcpConfig {
            n_slices: 8,
            n_points: 16,
            coupling: 0.6,
            diffusion: 0.05,
            ..GtcpConfig::default()
        };
        let energy_after = |zonal: f64| {
            let cfg = GtcpConfig {
                zonal_damping: zonal,
                ..base.clone()
            };
            launch(1, move |comm| {
                let mut sim = GtcpSim::new(cfg.clone(), 0, 1);
                for _ in 0..400 {
                    sim.substep(&comm);
                }
                sim.local_fluctuation_energy()
            })
            .unwrap()
            .remove(0)
        };
        let free = energy_after(0.0);
        let damped = energy_after(2.0);
        assert!(
            damped < free,
            "zonal damping did not suppress fluctuations: {free} -> {damped}"
        );
    }

    #[test]
    fn zonal_dynamics_stay_parallel_consistent() {
        let cfg = GtcpConfig {
            n_slices: 8,
            n_points: 12,
            zonal_damping: 1.0,
            ..GtcpConfig::default()
        };
        let steps = 25;
        let cfg_a = cfg.clone();
        let serial = launch(1, move |comm| {
            let mut sim = GtcpSim::new(cfg_a.clone(), 0, 1);
            for _ in 0..steps {
                sim.substep(&comm);
            }
            sim.output_values()
        })
        .unwrap()
        .remove(0);
        let blocks = launch(4, move |comm| {
            let mut sim = GtcpSim::new(cfg.clone(), comm.rank(), comm.size());
            for _ in 0..steps {
                sim.substep(&comm);
            }
            (sim.local_slices(), sim.output_values())
        })
        .unwrap();
        let mut stitched = vec![0.0; serial.len()];
        let per_slice = 12 * GTCP_PROPERTIES.len();
        for ((start, count), values) in blocks {
            stitched[start * per_slice..(start + count) * per_slice].copy_from_slice(&values);
        }
        for (a, b) in serial.iter().zip(&stitched) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn config_sizing_hits_byte_target() {
        let cfg = GtcpConfig::with_output_bytes(1 << 20);
        let bytes = cfg.n_slices * cfg.n_points * 7 * 8;
        assert!(bytes >= 1 << 20, "undersized: {bytes}");
        assert!(bytes < (1 << 20) * 3, "wildly oversized: {bytes}");
    }

    #[test]
    #[should_panic(expected = "more ranks than toroidal slices")]
    fn too_many_ranks_is_rejected() {
        let _ = GtcpSim::new(small(), 0, 9);
    }
}
