//! ADIOS-style group configurations for the three simulations.
//!
//! The paper reports that instrumenting each simulation took "roughly 70
//! lines of code … along with an approximately 25-line XML file". The
//! output code is [`crate::driver::drive`] plus each simulation's
//! `output_chunk`; the XML files are the documents below, parsed by
//! [`sb_data::GroupConfig`]. They are what a launch script (or a test)
//! consults to know each code's output contract without touching the
//! simulation source.

use sb_data::{DataResult, GroupConfig};

/// Output group declaration of the mini-LAMMPS crack run.
pub const LAMMPS_GROUP_XML: &str = r#"
<adios-group name="lammps-crack">
  <!-- per-particle dump, one row per particle -->
  <var name="atoms" type="f64" dimensions="particles,props"/>
  <header var="atoms" dim="1" labels="ID,Type,vx,vy,vz"/>
  <attribute var="atoms" name="units" value="lj"/>
  <attribute var="atoms" name="pairstyle" value="lj/cut 2.5"/>
</adios-group>
"#;

/// Output group declaration of the mini-GTCP torus.
pub const GTCP_GROUP_XML: &str = r#"
<adios-group name="gtcp-torus">
  <!-- toroidal slices x grid points x 7 plasma properties -->
  <var name="plasma" type="f64" dimensions="toroidal,gridpoints,properties"/>
  <header var="plasma" dim="2" labels="density,T_par,T_perp,potential,P_par,P_perp,energy_flux"/>
  <attribute var="plasma" name="geometry" value="torus"/>
</adios-group>
"#;

/// Output group declaration of the mini-GROMACS chain system.
pub const GROMACS_GROUP_XML: &str = r#"
<adios-group name="gromacs-chains">
  <!-- atom coordinates, one row per atom -->
  <var name="coords" type="f64" dimensions="atoms,coords"/>
  <header var="coords" dim="1" labels="x,y,z"/>
  <attribute var="coords" name="integrator" value="langevin"/>
</adios-group>
"#;

/// Parses the LAMMPS group declaration.
pub fn lammps_group() -> DataResult<GroupConfig> {
    GroupConfig::parse(LAMMPS_GROUP_XML)
}

/// Parses the GTCP group declaration.
pub fn gtcp_group() -> DataResult<GroupConfig> {
    GroupConfig::parse(GTCP_GROUP_XML)
}

/// Parses the GROMACS group declaration.
pub fn gromacs_group() -> DataResult<GroupConfig> {
    GroupConfig::parse(GROMACS_GROUP_XML)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SimRank;

    #[test]
    fn all_three_groups_parse() {
        assert_eq!(lammps_group().unwrap().name, "lammps-crack");
        assert_eq!(gtcp_group().unwrap().name, "gtcp-torus");
        assert_eq!(gromacs_group().unwrap().name, "gromacs-chains");
    }

    #[test]
    fn group_declarations_match_simulation_output() {
        // The config-described metadata must agree with what each sim
        // actually emits: same shape rank, labels and dtype.
        let lmp = crate::LammpsSim::new(crate::LammpsConfig::default(), 0, 1);
        let chunk = lmp.output_chunk();
        let meta = lammps_group()
            .unwrap()
            .describe("atoms", &chunk.meta.shape.sizes())
            .unwrap();
        assert_eq!(meta.labels, chunk.meta.labels);
        assert_eq!(meta.dtype, chunk.meta.dtype);

        let gtc = crate::GtcpSim::new(crate::GtcpConfig::default(), 0, 1);
        let chunk = gtc.output_chunk();
        let meta = gtcp_group()
            .unwrap()
            .describe("plasma", &chunk.meta.shape.sizes())
            .unwrap();
        assert_eq!(meta.labels, chunk.meta.labels);

        let gmx = crate::GromacsSim::new(crate::GromacsConfig::default(), 0, 1);
        let chunk = gmx.output_chunk();
        let meta = gromacs_group()
            .unwrap()
            .describe("coords", &chunk.meta.shape.sizes())
            .unwrap();
        assert_eq!(meta.labels, chunk.meta.labels);
    }
}
