//! The shared simulation driver loop: advance fine-grained substeps, emit
//! one stream step per coarse I/O interval.
//!
//! The paper (§V-A) distinguishes the simulation's fine time stepping from
//! the coarser intervals at which state is output — "from this point on, we
//! refer to these larger I/O intervals as timesteps". [`drive`] implements
//! that loop once for all three simulations, with the output optionally
//! disabled so the Table II "LMP only" column (simulation with its output
//! routines removed) can be measured with the same code path.

use std::time::Duration;

use sb_comm::{Communicator, Stopwatch};
use sb_data::Chunk;
use sb_stream::{EventKind, StreamResult, StreamWriter, TraceSite};

/// One rank's view of a running simulation.
///
/// Implementations advance local state in `substep` (communicating with
/// their peers as the physics requires) and expose the local portion of the
/// output array as a self-describing chunk.
pub trait SimRank {
    /// Short name used in logs and thread names.
    fn name(&self) -> &'static str;

    /// Advances the local state by one fine-grained simulation step.
    fn substep(&mut self, comm: &Communicator);

    /// This rank's chunk of the output variable for the current state.
    fn output_chunk(&self) -> Chunk;
}

/// Wall-clock accounting of one rank's run.
#[derive(Debug, Clone, Default)]
pub struct SimRunStats {
    /// Coarse I/O steps emitted (or that would have been emitted).
    pub io_steps: u64,
    /// Fine substeps advanced.
    pub substeps: u64,
    /// Payload bytes this rank contributed to the stream.
    pub bytes_output: u64,
    /// Time inside `substep` calls.
    pub compute_time: Duration,
    /// Time inside stream output (begin/put/end).
    pub io_time: Duration,
}

/// Runs `sim` for `io_steps` coarse steps of `substeps_per_io` fine steps
/// each, writing one stream step per coarse step when `writer` is given.
///
/// With `writer = None` the loop performs identical computation but no
/// output — the paper's "output routines removed" baseline.
///
/// Fails with a [`sb_stream::StreamError`] when the output stream blocks
/// past the hub timeout or is poisoned; the writer is abandoned (not
/// closed) on that path so downstream never mistakes the failure for a
/// clean end of stream.
pub fn drive<S: SimRank>(
    sim: &mut S,
    comm: &Communicator,
    mut writer: Option<&mut StreamWriter>,
    io_steps: u64,
    substeps_per_io: u64,
) -> StreamResult<SimRunStats> {
    let mut stats = SimRunStats::default();
    let mut sw = Stopwatch::started();
    // The sim's component label for the step timeline, interned once. A
    // disabled tracer costs one atomic load per coarse step here.
    let trace_label = writer
        .as_deref()
        .map(|w| {
            let tracer = w.tracer();
            if tracer.enabled() {
                tracer.intern_thread_label(sim.name())
            } else {
                0
            }
        })
        .unwrap_or(0);
    for _ in 0..io_steps {
        sw.lap();
        let step_ns = writer
            .as_deref()
            .filter(|w| w.tracer().enabled())
            .map(|w| w.tracer().now_ns());
        for _ in 0..substeps_per_io {
            sim.substep(comm);
            stats.substeps += 1;
        }
        stats.compute_time += sw.lap();
        if let Some(w) = writer.as_deref_mut() {
            let step = w.current_step();
            if let Some(start_ns) = step_ns {
                let site = TraceSite::component(trace_label, comm.rank(), step);
                w.tracer().span(EventKind::Compute, site, start_ns);
            }
            let publish_ns = step_ns.map(|_| w.tracer().now_ns());
            let chunk = sim.output_chunk();
            stats.bytes_output += chunk.byte_len() as u64;
            let io = (|| {
                w.begin_step()?;
                w.put(chunk);
                w.end_step()
            })();
            if let Err(e) = io {
                w.abandon();
                return Err(e);
            }
            stats.io_time += sw.lap();
            if let Some(start_ns) = step_ns {
                let site = TraceSite::component(trace_label, comm.rank(), step);
                w.tracer()
                    .span(EventKind::Publish, site, publish_ns.unwrap_or(start_ns));
                w.tracer().span(EventKind::Step, site, start_ns);
            }
        }
        stats.io_steps += 1;
    }
    if let Some(w) = writer {
        w.close();
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_data::{Buffer, DType, Region, Shape, VariableMeta};
    use sb_stream::{StepStatus, StreamHub, WriterOptions};

    /// A trivial sim: a counter per rank, output as a 1-d array.
    struct Counter {
        rank: usize,
        nranks: usize,
        value: f64,
    }

    impl SimRank for Counter {
        fn name(&self) -> &'static str {
            "counter"
        }
        fn substep(&mut self, _comm: &Communicator) {
            self.value += 1.0;
        }
        fn output_chunk(&self) -> Chunk {
            let meta = VariableMeta::new("c", Shape::linear("ranks", self.nranks), DType::F64);
            Chunk::new(
                meta,
                Region::new(vec![self.rank], vec![1]),
                Buffer::F64(vec![self.value]),
            )
            .unwrap()
        }
    }

    #[test]
    fn drive_emits_one_stream_step_per_io_interval() {
        let hub = StreamHub::new();
        let hub_w = std::sync::Arc::clone(&hub);
        let writers = sb_comm::LaunchHandle::spawn("sim", 3, move |comm| {
            let mut sim = Counter {
                rank: comm.rank(),
                nranks: comm.size(),
                value: 0.0,
            };
            let mut w =
                hub_w.open_writer("c.fp", comm.rank(), comm.size(), WriterOptions::default());
            drive(&mut sim, &comm, Some(&mut w), 4, 10).unwrap()
        })
        .unwrap();

        let mut r = hub.open_reader("c.fp", 0, 1);
        let mut seen = Vec::new();
        while let StepStatus::Ready(_) = r.begin_step().unwrap() {
            let v = r.get_whole("c").unwrap();
            seen.push(v.data.to_f64_vec());
            r.end_step();
        }
        let stats = writers.join().unwrap();
        assert_eq!(seen.len(), 4);
        // After k I/O intervals of 10 substeps, every rank's counter is 10k.
        for (k, step) in seen.iter().enumerate() {
            assert_eq!(step, &vec![10.0 * (k + 1) as f64; 3]);
        }
        for s in stats {
            assert_eq!(s.io_steps, 4);
            assert_eq!(s.substeps, 40);
            assert_eq!(s.bytes_output, 4 * 8);
        }
    }

    #[test]
    fn drive_without_writer_skips_io() {
        let stats = sb_comm::launch(2, |comm| {
            let mut sim = Counter {
                rank: comm.rank(),
                nranks: comm.size(),
                value: 0.0,
            };
            drive(&mut sim, &comm, None, 3, 5).unwrap()
        })
        .unwrap();
        for s in stats {
            assert_eq!(s.substeps, 15);
            assert_eq!(s.bytes_output, 0);
            assert_eq!(s.io_time, Duration::ZERO);
        }
    }
}
