//! mini-LAMMPS: Lennard-Jones molecular dynamics of a notched plate.
//!
//! The paper's LAMMPS workflow simulates "a disruption (a 'crack') in a
//! thin layer of particles" and outputs five properties per particle —
//! `{ID, Type, vx, vy, vz}` — at coarse intervals. This module reproduces
//! that driver: a single-layer LJ lattice with a notch cut into its top
//! edge is pulled apart by opposing edge velocities; velocity-Verlet
//! integration with a cell-list force evaluation propagates the crack.
//!
//! Parallelization mirrors a simple atom decomposition: every rank owns a
//! contiguous block of particles, computes forces for its block against a
//! cell list over the (allgathered) global positions, and contributes its
//! block of the `particles × 5` output array as a stream chunk.

use sb_comm::Communicator;
use sb_data::decompose::split_1d_part;
use sb_data::{Buffer, Chunk, DType, Region, Shape, VariableMeta};

use crate::driver::SimRank;

/// Lattice and integration parameters of the crack run.
#[derive(Debug, Clone)]
pub struct LammpsConfig {
    /// Lattice columns (x).
    pub nx: usize,
    /// Lattice rows (y).
    pub ny: usize,
    /// Integration timestep (LJ units).
    pub dt: f64,
    /// LJ cutoff radius.
    pub cutoff: f64,
    /// Magnitude of the opposing edge pull velocities.
    pub pull_speed: f64,
    /// Fraction of plate height the notch reaches down from the top edge.
    pub notch_depth: f64,
    /// Seed for the small thermal velocity noise.
    pub seed: u64,
    /// Optional Berendsen thermostat target temperature (kT per degree of
    /// freedom); `None` runs microcanonical (NVE), as the crack experiment
    /// does.
    pub thermostat: Option<f64>,
    /// Thermostat coupling time constant (in units of `dt`).
    pub thermostat_tau: f64,
}

impl Default for LammpsConfig {
    fn default() -> Self {
        LammpsConfig {
            nx: 40,
            ny: 40,
            dt: 0.003,
            cutoff: 2.5,
            pull_speed: 0.8,
            notch_depth: 0.35,
            seed: 42,
            thermostat: None,
            thermostat_tau: 10.0,
        }
    }
}

impl LammpsConfig {
    /// A configuration sized to roughly `n` particles (before the notch is
    /// cut), keeping the plate square.
    pub fn with_particle_target(n: usize) -> LammpsConfig {
        let side = (n as f64).sqrt().ceil().max(4.0) as usize;
        LammpsConfig {
            nx: side,
            ny: side,
            ..LammpsConfig::default()
        }
    }
}

/// Lattice spacing: slightly above the LJ potential minimum (2^(1/6)) so
/// the plate starts under mild tension.
const LATTICE_A: f64 = 1.15;
/// Softening floor for r^2 in the LJ force, preventing overflow when the
/// crack slams particles together.
const R2_MIN: f64 = 0.8;

/// Deterministic xorshift mixer used for the initial thermal noise; keeps
/// construction identical on every rank without sharing an RNG.
fn mix(seed: u64, i: u64, salt: u64) -> f64 {
    let mut x = seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ (salt << 32);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    // Map to (-0.5, 0.5).
    (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// One rank's share of the crack simulation.
pub struct LammpsSim {
    cfg: LammpsConfig,
    nranks: usize,
    /// Global particle count after the notch cut.
    n_global: usize,
    /// This rank's particle index range in the global order.
    local_start: usize,
    local_count: usize,
    /// Global per-particle ids and types (type 2 flags notch-edge atoms).
    ids: Vec<u64>,
    types: Vec<u8>,
    /// Global positions, refreshed by allgather each substep.
    pos: Vec<[f64; 3]>,
    /// Local velocities and forces (previous step's forces for Verlet).
    vel: Vec<[f64; 3]>,
    force: Vec<[f64; 3]>,
}

impl LammpsSim {
    /// Builds rank `rank` of `nranks`'s share. Every rank constructs the
    /// identical global lattice deterministically, then claims its block.
    pub fn new(cfg: LammpsConfig, rank: usize, nranks: usize) -> LammpsSim {
        assert!(rank < nranks);
        let mut pos = Vec::with_capacity(cfg.nx * cfg.ny);
        let mut types = Vec::new();
        let width = cfg.nx as f64 * LATTICE_A;
        let height = cfg.ny as f64 * LATTICE_A;
        let notch_half_width = 1.5 * LATTICE_A;
        let notch_bottom = height * (1.0 - cfg.notch_depth);
        let cx = width / 2.0;
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let x = ix as f64 * LATTICE_A;
                let y = iy as f64 * LATTICE_A;
                // Cut the notch: a vertical slot from the top edge.
                if (x - cx).abs() < notch_half_width && y > notch_bottom {
                    continue;
                }
                let near_notch = (x - cx).abs() < notch_half_width + 2.0 * LATTICE_A
                    && y > notch_bottom - 2.0 * LATTICE_A;
                pos.push([x, y, 0.0]);
                types.push(if near_notch { 2 } else { 1 });
            }
        }
        let n_global = pos.len();
        let ids: Vec<u64> = (1..=n_global as u64).collect();
        let (local_start, local_count) = split_1d_part(n_global, nranks, rank);

        // Initial velocities: opposing horizontal pull on the two plate
        // halves plus a small deterministic thermal component.
        let mut vel = Vec::with_capacity(local_count);
        #[allow(clippy::needless_range_loop)] // global index i names the particle
        for i in local_start..local_start + local_count {
            let dir = if pos[i][0] < cx { -1.0 } else { 1.0 };
            vel.push([
                dir * cfg.pull_speed + 0.05 * mix(cfg.seed, i as u64, 1),
                0.05 * mix(cfg.seed, i as u64, 2),
                0.02 * mix(cfg.seed, i as u64, 3),
            ]);
        }

        let mut sim = LammpsSim {
            cfg,
            nranks,
            n_global,
            local_start,
            local_count,
            ids,
            types,
            pos,
            vel,
            force: vec![[0.0; 3]; local_count],
        };
        sim.force = sim.compute_local_forces();
        sim
    }

    /// Particles in the whole plate (after the notch cut).
    pub fn n_global(&self) -> usize {
        self.n_global
    }

    /// This rank's `(start, count)` block of the global particle order.
    pub fn local_range(&self) -> (usize, usize) {
        (self.local_start, self.local_count)
    }

    /// Global positions (every rank holds a synchronized copy).
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.pos
    }

    /// This rank's velocities.
    pub fn velocities(&self) -> &[[f64; 3]] {
        &self.vel
    }

    /// Global shape of the output variable.
    pub fn global_shape(&self) -> Shape {
        Shape::of(&[("particles", self.n_global), ("props", 5)])
    }

    /// Sum of this rank's momenta (unit mass), for conservation tests.
    pub fn local_momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for v in &self.vel {
            for d in 0..3 {
                p[d] += v[d];
            }
        }
        p
    }

    /// This rank's kinetic energy (unit mass).
    pub fn local_kinetic_energy(&self) -> f64 {
        self.vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Instantaneous kinetic temperature of the whole plate (kT, unit
    /// mass, 3 degrees of freedom per particle), via one allreduce.
    pub fn temperature(&self, comm: &Communicator) -> f64 {
        let local = (self.local_kinetic_energy(), self.local_count as f64);
        let (ke, n) = if self.nranks > 1 {
            comm.allreduce(local, |a, b| (a.0 + b.0, a.1 + b.1))
        } else {
            local
        };
        if n == 0.0 {
            0.0
        } else {
            2.0 * ke / (3.0 * n)
        }
    }

    /// LJ forces on this rank's block, from a cell list over all particles.
    fn compute_local_forces(&self) -> Vec<[f64; 3]> {
        let rc = self.cfg.cutoff;
        let rc2 = rc * rc;

        // Bounding box of current positions, padded so every particle maps
        // to a valid cell even as the plate flies apart.
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for p in &self.pos {
            for d in 0..3 {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        let mut ncells = [0usize; 3];
        for d in 0..3 {
            ncells[d] = (((hi[d] - lo[d]) / rc).floor() as usize + 1).max(1);
        }
        let cell_of = |p: &[f64; 3]| -> usize {
            let mut idx = 0;
            for d in 0..3 {
                let c = (((p[d] - lo[d]) / rc) as usize).min(ncells[d] - 1);
                idx = idx * ncells[d] + c;
            }
            idx
        };
        let total_cells = ncells[0] * ncells[1] * ncells[2];
        // Counting-sort style cell list: heads + linked chains.
        let mut head = vec![u32::MAX; total_cells];
        let mut next = vec![u32::MAX; self.pos.len()];
        for (i, p) in self.pos.iter().enumerate() {
            let c = cell_of(p);
            next[i] = head[c];
            head[c] = i as u32;
        }

        let mut forces = vec![[0.0f64; 3]; self.local_count];
        #[allow(clippy::needless_range_loop)] // li pairs a local slot with global index
        for li in 0..self.local_count {
            let i = self.local_start + li;
            let pi = self.pos[i];
            let ci = [
                (((pi[0] - lo[0]) / rc) as usize).min(ncells[0] - 1),
                (((pi[1] - lo[1]) / rc) as usize).min(ncells[1] - 1),
                (((pi[2] - lo[2]) / rc) as usize).min(ncells[2] - 1),
            ];
            let mut f = [0.0f64; 3];
            for dx in -1i64..=1 {
                let cx = ci[0] as i64 + dx;
                if cx < 0 || cx >= ncells[0] as i64 {
                    continue;
                }
                for dy in -1i64..=1 {
                    let cy = ci[1] as i64 + dy;
                    if cy < 0 || cy >= ncells[1] as i64 {
                        continue;
                    }
                    for dz in -1i64..=1 {
                        let cz = ci[2] as i64 + dz;
                        if cz < 0 || cz >= ncells[2] as i64 {
                            continue;
                        }
                        let cell =
                            (cx as usize * ncells[1] + cy as usize) * ncells[2] + cz as usize;
                        let mut j = head[cell];
                        while j != u32::MAX {
                            let ju = j as usize;
                            if ju != i {
                                let pj = self.pos[ju];
                                let dr = [pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]];
                                let r2 =
                                    (dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2]).max(R2_MIN);
                                if r2 < rc2 {
                                    let inv2 = 1.0 / r2;
                                    let inv6 = inv2 * inv2 * inv2;
                                    // 24 ε (2 (σ/r)^12 − (σ/r)^6) / r^2, ε=σ=1.
                                    let coef = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
                                    f[0] += coef * dr[0];
                                    f[1] += coef * dr[1];
                                    f[2] += coef * dr[2];
                                }
                            }
                            j = next[ju];
                        }
                    }
                }
            }
            forces[li] = f;
        }
        forces
    }

    /// Refreshes the global position array from every rank's local block.
    fn sync_positions(&mut self, comm: &Communicator) {
        if self.nranks == 1 {
            return;
        }
        let local: Vec<[f64; 3]> =
            self.pos[self.local_start..self.local_start + self.local_count].to_vec();
        let blocks = comm.allgather_shared(local);
        let mut off = 0;
        for block in blocks.iter() {
            self.pos[off..off + block.len()].copy_from_slice(block);
            off += block.len();
        }
        debug_assert_eq!(off, self.n_global);
    }
}

impl SimRank for LammpsSim {
    fn name(&self) -> &'static str {
        "lammps"
    }

    /// One velocity-Verlet step.
    fn substep(&mut self, comm: &Communicator) {
        let dt = self.cfg.dt;
        // Drift with current velocities and half-kick of old forces.
        for li in 0..self.local_count {
            let i = self.local_start + li;
            for d in 0..3 {
                self.pos[i][d] += dt * self.vel[li][d] + 0.5 * dt * dt * self.force[li][d];
            }
        }
        self.sync_positions(comm);
        let new_forces = self.compute_local_forces();
        #[allow(clippy::needless_range_loop)] // index-parallel over vel/force arrays
        for li in 0..self.local_count {
            for d in 0..3 {
                self.vel[li][d] += 0.5 * dt * (self.force[li][d] + new_forces[li][d]);
            }
        }
        self.force = new_forces;

        // Optional Berendsen thermostat: rescale velocities toward the
        // target temperature with coupling constant tau (in dt units).
        // Requires a global temperature, hence one extra allreduce.
        if let Some(target) = self.cfg.thermostat {
            let t = self.temperature(comm);
            if t > 0.0 {
                let lambda = (1.0 + (target / t - 1.0) / self.cfg.thermostat_tau)
                    .max(0.0)
                    .sqrt();
                for v in &mut self.vel {
                    for c in v.iter_mut() {
                        *c *= lambda;
                    }
                }
            }
        }
    }

    /// This rank's `local × 5` block of the `particles × {ID, Type, vx, vy,
    /// vz}` output.
    fn output_chunk(&self) -> Chunk {
        let mut data = Vec::with_capacity(self.local_count * 5);
        for li in 0..self.local_count {
            let i = self.local_start + li;
            data.push(self.ids[i] as f64);
            data.push(self.types[i] as f64);
            data.push(self.vel[li][0]);
            data.push(self.vel[li][1]);
            data.push(self.vel[li][2]);
        }
        let mut meta = VariableMeta::new("atoms", self.global_shape(), DType::F64);
        meta.labels.insert(
            1,
            vec![
                "ID".into(),
                "Type".into(),
                "vx".into(),
                "vy".into(),
                "vz".into(),
            ],
        );
        Chunk::new(
            meta,
            Region::new(vec![self.local_start, 0], vec![self.local_count, 5]),
            Buffer::F64(data),
        )
        .expect("locally constructed chunk is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_comm::launch;

    fn small() -> LammpsConfig {
        LammpsConfig {
            nx: 12,
            ny: 12,
            ..LammpsConfig::default()
        }
    }

    #[test]
    fn lattice_has_a_notch() {
        let sim = LammpsSim::new(small(), 0, 1);
        assert!(sim.n_global() < 144, "notch removed no particles");
        assert!(sim.n_global() > 100, "notch removed too many particles");
        // Some particles are flagged as notch-adjacent type 2.
        assert!(sim.types.contains(&2));
        assert!(sim.types.contains(&1));
        // IDs are 1-based and unique.
        assert_eq!(sim.ids.first(), Some(&1));
        assert_eq!(sim.ids.last(), Some(&(sim.n_global() as u64)));
    }

    #[test]
    fn construction_is_identical_across_ranks() {
        let a = LammpsSim::new(small(), 0, 3);
        let b = LammpsSim::new(small(), 2, 3);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.types, b.types);
        assert_eq!(a.n_global(), b.n_global());
        // Blocks tile the particle range.
        let (s0, c0) = a.local_range();
        assert_eq!(s0, 0);
        let (s2, c2) = b.local_range();
        assert_eq!(s2 + c2, a.n_global());
        assert!(c0 >= c2);
    }

    #[test]
    fn serial_momentum_is_approximately_conserved() {
        // No external forces after t=0: total momentum is invariant under
        // velocity Verlet up to floating-point roundoff.
        launch(1, |comm| {
            let mut sim = LammpsSim::new(small(), 0, 1);
            let p0 = sim.local_momentum();
            for _ in 0..50 {
                sim.substep(&comm);
            }
            let p1 = sim.local_momentum();
            for d in 0..3 {
                assert!(
                    (p1[d] - p0[d]).abs() < 1e-6 * sim.n_global() as f64,
                    "momentum drifted: {p0:?} -> {p1:?}"
                );
            }
        })
        .unwrap();
    }

    #[test]
    fn dynamics_stay_finite_and_energetic() {
        launch(1, |comm| {
            let mut sim = LammpsSim::new(small(), 0, 1);
            for _ in 0..100 {
                sim.substep(&comm);
            }
            assert!(sim.local_kinetic_energy().is_finite());
            assert!(sim.local_kinetic_energy() > 0.0);
            for p in sim.positions() {
                assert!(p.iter().all(|c| c.is_finite()), "position blew up: {p:?}");
            }
        })
        .unwrap();
    }

    #[test]
    fn parallel_run_matches_serial_run() {
        let steps = 20;
        let serial = {
            launch(1, |comm| {
                let mut sim = LammpsSim::new(small(), 0, 1);
                for _ in 0..steps {
                    sim.substep(&comm);
                }
                sim.positions().to_vec()
            })
            .unwrap()
            .remove(0)
        };
        for nranks in [2usize, 3] {
            let parallel = launch(nranks, move |comm| {
                let mut sim = LammpsSim::new(small(), comm.rank(), comm.size());
                for _ in 0..steps {
                    sim.substep(&comm);
                }
                sim.positions().to_vec()
            })
            .unwrap()
            .remove(0);
            for (a, b) in serial.iter().zip(&parallel) {
                for d in 0..3 {
                    assert!(
                        (a[d] - b[d]).abs() < 1e-9,
                        "serial/parallel divergence with {nranks} ranks: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn output_chunk_shape_and_labels() {
        let sim = LammpsSim::new(small(), 1, 2);
        let chunk = sim.output_chunk();
        assert_eq!(chunk.meta.shape.ndims(), 2);
        assert_eq!(chunk.meta.shape.size(1), 5);
        assert_eq!(chunk.meta.resolve_label(1, "vx").unwrap(), 2);
        let (start, count) = sim.local_range();
        assert_eq!(chunk.region.offset(), &[start, 0]);
        assert_eq!(chunk.region.count(), &[count, 5]);
        // First column of the chunk carries the 1-based global IDs.
        assert_eq!(chunk.data.get_f64(0), (start + 1) as f64);
    }

    #[test]
    fn thermostat_drives_temperature_to_target() {
        let cfg = LammpsConfig {
            nx: 10,
            ny: 10,
            pull_speed: 0.0, // no crack: a quiet lattice heated to kT = 0.5
            thermostat: Some(0.5),
            thermostat_tau: 5.0,
            ..LammpsConfig::default()
        };
        launch(1, move |comm| {
            let mut sim = LammpsSim::new(cfg.clone(), 0, 1);
            let t0 = sim.temperature(&comm);
            assert!(t0 < 0.1, "starts cold: {t0}");
            for _ in 0..300 {
                sim.substep(&comm);
            }
            let t1 = sim.temperature(&comm);
            assert!(
                (t1 - 0.5).abs() < 0.2,
                "thermostat failed to reach target: {t0} -> {t1}"
            );
        })
        .unwrap();
    }

    #[test]
    fn thermostatted_parallel_matches_serial() {
        let cfg = LammpsConfig {
            nx: 10,
            ny: 10,
            thermostat: Some(0.3),
            ..LammpsConfig::default()
        };
        let steps = 15;
        let cfg_a = cfg.clone();
        let serial = launch(1, move |comm| {
            let mut sim = LammpsSim::new(cfg_a.clone(), 0, 1);
            for _ in 0..steps {
                sim.substep(&comm);
            }
            sim.positions().to_vec()
        })
        .unwrap()
        .remove(0);
        let parallel = launch(3, move |comm| {
            let mut sim = LammpsSim::new(cfg.clone(), comm.rank(), comm.size());
            for _ in 0..steps {
                sim.substep(&comm);
            }
            sim.positions().to_vec()
        })
        .unwrap()
        .remove(0);
        for (a, b) in serial.iter().zip(&parallel) {
            for d in 0..3 {
                assert!((a[d] - b[d]).abs() < 1e-9, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn crack_actually_opens() {
        // Under the pull, the horizontal spread of the plate must grow.
        launch(1, |comm| {
            let mut sim = LammpsSim::new(small(), 0, 1);
            let width = |s: &LammpsSim| {
                let xs: Vec<f64> = s.positions().iter().map(|p| p[0]).collect();
                xs.iter().cloned().fold(f64::MIN, f64::max)
                    - xs.iter().cloned().fold(f64::MAX, f64::min)
            };
            let w0 = width(&sim);
            for _ in 0..200 {
                sim.substep(&comm);
            }
            let w1 = width(&sim);
            assert!(w1 > w0 * 1.05, "plate did not separate: {w0} -> {w1}");
        })
        .unwrap();
    }
}
