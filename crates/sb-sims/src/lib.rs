//! # sb-sims — miniature simulation drivers
//!
//! The paper drives its three workflows with LAMMPS (a notched-plate
//! "crack" run), GTCP (a particle-in-cell tokamak code) and GROMACS
//! (biomolecular dynamics). Those codes are hundreds of thousands of lines
//! of C/C++/Fortran and need real clusters; what the *workflows* consume is
//! only each code's per-timestep output array, its self-describing shape,
//! and a physically plausible evolution of the values.
//!
//! This crate therefore implements three small-but-real simulations that
//! produce exactly those outputs from actual dynamics:
//!
//! * [`lammps`] — a Lennard-Jones velocity-Verlet MD of a notched thin
//!   plate pulled apart ("crack"), emitting `particles × {ID, Type, vx, vy,
//!   vz}`;
//! * [`gtcp`] — a toroidal drift-advection/diffusion solver over
//!   `toroidal-slices × grid-points × 7 plasma properties`;
//! * [`gromacs`] — bead-spring polymer chains under Langevin dynamics,
//!   emitting `atoms × {x, y, z}`.
//!
//! Each simulation is rank-parallel over an `sb-comm` communicator and
//! exposes its per-rank output as an [`sb_data::Chunk`], which the shared
//! [`driver`] loop publishes on an `sb-stream` stream — the moral
//! equivalent of the "roughly 70 lines" of ADIOS output code the paper adds
//! to each simulation. The corresponding ADIOS-style group configuration
//! for each code lives in [`adapter`].

pub mod adapter;
pub mod driver;
pub mod gromacs;
pub mod gtcp;
pub mod lammps;

pub use driver::{drive, SimRank, SimRunStats};
pub use gromacs::{GromacsConfig, GromacsSim};
pub use gtcp::{GtcpConfig, GtcpSim};
pub use lammps::{LammpsConfig, LammpsSim};
