//! mini-GROMACS: bead-spring polymer chains under Langevin dynamics.
//!
//! The paper's GROMACS workflow consumes "the three-dimensional coordinates
//! of the atoms involved in the simulation at regular intervals" — a
//! two-dimensional `atoms × {x, y, z}` array — and histograms the distance
//! of each atom from the origin, "showing an evolution of the spread of the
//! particles throughout the simulation" (§V-A).
//!
//! This module simulates protein-like bead chains: harmonic bonds along
//! each chain, a purely repulsive (WCA) excluded-volume interaction between
//! beads of the same chain, and Langevin friction + thermal noise. The
//! thermal noise makes the chain cloud diffuse outward over time, so the
//! |x| histogram genuinely spreads — the property the workflow visualizes.
//!
//! Ranks own whole chains (a molecule decomposition); a global allreduce
//! removes centre-of-mass drift every substep, mirroring GROMACS's COM
//! motion removal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sb_comm::Communicator;
use sb_data::decompose::split_1d_part;
use sb_data::{Buffer, Chunk, DType, Region, Shape, VariableMeta};

use crate::driver::SimRank;

/// Chain-system and integrator parameters.
#[derive(Debug, Clone)]
pub struct GromacsConfig {
    /// Number of polymer chains.
    pub n_chains: usize,
    /// Beads per chain.
    pub chain_len: usize,
    /// Integration timestep.
    pub dt: f64,
    /// Harmonic bond stiffness.
    pub bond_k: f64,
    /// Equilibrium bond length.
    pub bond_r0: f64,
    /// Angle (chain-stiffness) constant: a bending penalty pushing
    /// consecutive bond vectors toward alignment. 0 gives a fully flexible
    /// chain; large values approach a rigid rod.
    pub angle_k: f64,
    /// Langevin friction coefficient.
    pub friction: f64,
    /// Thermal noise temperature (kT).
    pub temperature: f64,
    /// RNG seed (per-rank streams are derived from it).
    pub seed: u64,
}

impl Default for GromacsConfig {
    fn default() -> Self {
        GromacsConfig {
            n_chains: 32,
            chain_len: 16,
            dt: 0.005,
            bond_k: 100.0,
            bond_r0: 1.0,
            angle_k: 0.0,
            // Weak solvent coupling: with kT/friction this large, thermal
            // diffusion visibly dominates the chain-relaxation transient on
            // the (short) timescales the workflows observe, so the atom
            // cloud genuinely spreads outward within a few hundred substeps.
            friction: 0.1,
            temperature: 1.2,
            seed: 1234,
        }
    }
}

impl GromacsConfig {
    /// Total number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.n_chains * self.chain_len
    }

    /// A configuration sized to roughly `n` atoms, keeping 16-bead chains.
    pub fn with_atom_target(n: usize) -> GromacsConfig {
        let chain_len = 16;
        GromacsConfig {
            n_chains: n.div_ceil(chain_len).max(1),
            chain_len,
            ..GromacsConfig::default()
        }
    }
}

/// One rank's chains.
pub struct GromacsSim {
    cfg: GromacsConfig,
    nranks: usize,
    /// This rank's chain block `(first_chain, n_chains)`.
    chain_start: usize,
    chain_count: usize,
    /// Local bead positions and velocities, chain-major.
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    rng: StdRng,
}

impl GromacsSim {
    /// Builds rank `rank`'s chains, seeded deterministically per rank.
    pub fn new(cfg: GromacsConfig, rank: usize, nranks: usize) -> GromacsSim {
        assert!(rank < nranks);
        let (chain_start, chain_count) = split_1d_part(cfg.n_chains, nranks, rank);
        // Chains start as straight rods arranged on a circle around the
        // origin, all within a compact cloud that then diffuses outward.
        let mut pos = Vec::with_capacity(chain_count * cfg.chain_len);
        for c in chain_start..chain_start + chain_count {
            let angle = 2.0 * std::f64::consts::PI * c as f64 / cfg.n_chains as f64;
            let radius = 2.0 + (c % 5) as f64;
            let ox = radius * angle.cos();
            let oy = radius * angle.sin();
            let oz = ((c % 7) as f64 - 3.0) * 0.5;
            for b in 0..cfg.chain_len {
                pos.push([
                    ox + 0.9 * cfg.bond_r0 * b as f64 * angle.cos(),
                    oy + 0.9 * cfg.bond_r0 * b as f64 * angle.sin(),
                    oz,
                ]);
            }
        }
        let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(rank as u64).wrapping_mul(0x9E37));
        let n_local = pos.len();
        GromacsSim {
            cfg,
            nranks,
            chain_start,
            chain_count,
            pos,
            vel: vec![[0.0; 3]; n_local],
            rng,
        }
    }

    /// Total atoms in the system.
    pub fn n_atoms(&self) -> usize {
        self.cfg.n_atoms()
    }

    /// This rank's atom block `(start, count)` in the global atom order.
    pub fn local_atoms(&self) -> (usize, usize) {
        (
            self.chain_start * self.cfg.chain_len,
            self.chain_count * self.cfg.chain_len,
        )
    }

    /// Global output shape: `atoms × {x, y, z}`.
    pub fn global_shape(&self) -> Shape {
        Shape::of(&[("atoms", self.n_atoms()), ("coords", 3)])
    }

    /// Local bead positions.
    pub fn positions(&self) -> &[[f64; 3]] {
        &self.pos
    }

    /// Mean squared end-to-end distance of this rank's chains — the
    /// standard polymer-stiffness observable.
    pub fn local_mean_end_to_end_sq(&self) -> f64 {
        if self.chain_count == 0 {
            return 0.0;
        }
        let len = self.cfg.chain_len;
        let mut acc = 0.0;
        for c in 0..self.chain_count {
            let first = self.pos[c * len];
            let last = self.pos[c * len + len - 1];
            acc += (0..3).map(|d| (last[d] - first[d]).powi(2)).sum::<f64>();
        }
        acc / self.chain_count as f64
    }

    /// Mean distance of this rank's beads from the origin.
    pub fn local_mean_radius(&self) -> f64 {
        let sum: f64 = self
            .pos
            .iter()
            .map(|p| (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt())
            .sum();
        sum / self.pos.len().max(1) as f64
    }

    /// Bond + excluded-volume forces on this rank's beads.
    fn forces(&self) -> Vec<[f64; 3]> {
        let mut f = vec![[0.0f64; 3]; self.pos.len()];
        let k = self.cfg.bond_k;
        let r0 = self.cfg.bond_r0;
        // WCA cutoff at 2^(1/6) σ, σ = 0.9 r0.
        let sigma = 0.9 * r0;
        let wca_rc2 = (2f64.powf(1.0 / 3.0)) * sigma * sigma;
        for c in 0..self.chain_count {
            let base = c * self.cfg.chain_len;
            // Harmonic bonds between consecutive beads.
            for b in 0..self.cfg.chain_len - 1 {
                let i = base + b;
                let j = i + 1;
                let dr = [
                    self.pos[j][0] - self.pos[i][0],
                    self.pos[j][1] - self.pos[i][1],
                    self.pos[j][2] - self.pos[i][2],
                ];
                let r = (dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2])
                    .sqrt()
                    .max(1e-9);
                let mag = k * (r - r0) / r;
                for d in 0..3 {
                    f[i][d] += mag * dr[d];
                    f[j][d] -= mag * dr[d];
                }
            }
            // Bending stiffness: for each interior bead, a penalty pulling
            // consecutive bond vectors into alignment (discrete worm-like
            // chain). F_i contributions follow from E = k (1 - cos theta).
            if self.cfg.angle_k > 0.0 {
                let ka = self.cfg.angle_k;
                for b in 1..self.cfg.chain_len - 1 {
                    let (ip, i, inx) = (base + b - 1, base + b, base + b + 1);
                    let u = [
                        self.pos[i][0] - self.pos[ip][0],
                        self.pos[i][1] - self.pos[ip][1],
                        self.pos[i][2] - self.pos[ip][2],
                    ];
                    let v = [
                        self.pos[inx][0] - self.pos[i][0],
                        self.pos[inx][1] - self.pos[i][1],
                        self.pos[inx][2] - self.pos[i][2],
                    ];
                    let lu = (u[0] * u[0] + u[1] * u[1] + u[2] * u[2]).sqrt().max(1e-9);
                    let lv = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt().max(1e-9);
                    let cos = (u[0] * v[0] + u[1] * v[1] + u[2] * v[2]) / (lu * lv);
                    // dE/du and dE/dv for E = ka (1 - cos), projected.
                    for d in 0..3 {
                        let du = ka * (v[d] / (lu * lv) - cos * u[d] / (lu * lu));
                        let dv = ka * (u[d] / (lu * lv) - cos * v[d] / (lv * lv));
                        // u depends on (ip, i); v depends on (i, in):
                        // F = -dE/dx with dE/du = -du, dE/dv = -dv.
                        f[ip][d] += -du;
                        f[i][d] += du - dv;
                        f[inx][d] += dv;
                    }
                }
            }
            // Excluded volume between non-bonded beads of the same chain.
            for a in 0..self.cfg.chain_len {
                for b in a + 2..self.cfg.chain_len {
                    let i = base + a;
                    let j = base + b;
                    let dr = [
                        self.pos[i][0] - self.pos[j][0],
                        self.pos[i][1] - self.pos[j][1],
                        self.pos[i][2] - self.pos[j][2],
                    ];
                    let r2 =
                        (dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2]).max(0.25 * sigma * sigma);
                    if r2 < wca_rc2 {
                        let s2 = sigma * sigma / r2;
                        let s6 = s2 * s2 * s2;
                        let coef = 24.0 * s6 * (2.0 * s6 - 1.0) / r2;
                        for d in 0..3 {
                            f[i][d] += coef * dr[d];
                            f[j][d] -= coef * dr[d];
                        }
                    }
                }
            }
        }
        f
    }
}

impl SimRank for GromacsSim {
    fn name(&self) -> &'static str {
        "gromacs"
    }

    /// One Langevin (BAOAB-flavoured Euler) step plus global COM-motion
    /// removal.
    fn substep(&mut self, comm: &Communicator) {
        let dt = self.cfg.dt;
        let gamma = self.cfg.friction;
        let noise = (2.0 * gamma * self.cfg.temperature * dt).sqrt();
        let forces = self.forces();
        for (i, f) in forces.iter().enumerate() {
            #[allow(clippy::needless_range_loop)] // d runs over x/y/z in lockstep
            for d in 0..3 {
                let eta: f64 = self.rng.gen_range(-1.0f64..1.0) * 1.732_050_8; // unit variance
                self.vel[i][d] += dt * (f[d] - gamma * self.vel[i][d]) + noise * eta;
                self.pos[i][d] += dt * self.vel[i][d];
            }
        }
        // Remove global centre-of-mass velocity so the cloud spreads rather
        // than wanders — one allreduce per substep, as in GROMACS.
        let local: [f64; 4] = {
            let mut acc = [0.0; 4];
            for v in &self.vel {
                acc[0] += v[0];
                acc[1] += v[1];
                acc[2] += v[2];
            }
            acc[3] = self.vel.len() as f64;
            acc
        };
        let total = if self.nranks > 1 {
            comm.allreduce(local, |a, b| {
                [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
            })
        } else {
            local
        };
        if total[3] > 0.0 {
            let mean = [
                total[0] / total[3],
                total[1] / total[3],
                total[2] / total[3],
            ];
            for v in &mut self.vel {
                for d in 0..3 {
                    v[d] -= mean[d];
                }
            }
        }
    }

    /// This rank's `atoms × 3` block of the coordinate output.
    fn output_chunk(&self) -> Chunk {
        let (start, count) = self.local_atoms();
        let mut data = Vec::with_capacity(count * 3);
        for p in &self.pos {
            data.extend_from_slice(p);
        }
        let mut meta = VariableMeta::new("coords", self.global_shape(), DType::F64);
        meta.labels
            .insert(1, vec!["x".into(), "y".into(), "z".into()]);
        Chunk::new(
            meta,
            Region::new(vec![start, 0], vec![count, 3]),
            Buffer::F64(data),
        )
        .expect("locally constructed chunk is consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_comm::launch;

    fn small() -> GromacsConfig {
        GromacsConfig {
            n_chains: 6,
            chain_len: 8,
            ..GromacsConfig::default()
        }
    }

    #[test]
    fn chain_blocks_tile_atoms() {
        let cfg = small();
        let mut covered = 0;
        for r in 0..3 {
            let sim = GromacsSim::new(cfg.clone(), r, 3);
            let (start, count) = sim.local_atoms();
            assert_eq!(start, covered);
            covered += count;
        }
        assert_eq!(covered, cfg.n_atoms());
    }

    #[test]
    fn bonds_hold_chains_together() {
        launch(1, |comm| {
            let mut sim = GromacsSim::new(small(), 0, 1);
            for _ in 0..400 {
                sim.substep(&comm);
            }
            // Every consecutive bead pair stays near the bond length.
            for c in 0..sim.chain_count {
                let base = c * sim.cfg.chain_len;
                for b in 0..sim.cfg.chain_len - 1 {
                    let i = base + b;
                    let j = i + 1;
                    let dr: f64 = (0..3)
                        .map(|d| (sim.pos[i][d] - sim.pos[j][d]).powi(2))
                        .sum::<f64>()
                        .sqrt();
                    assert!(dr.is_finite());
                    assert!(
                        dr > 0.3 && dr < 3.0,
                        "bond {b} of chain {c} broke: length {dr}"
                    );
                }
            }
        })
        .unwrap();
    }

    #[test]
    fn cloud_spreads_over_time() {
        // Mean |r| over a handful of chains is dominated by the chains' own
        // random-walk fluctuations, so this observable needs a decent
        // ensemble (64 chains) and enough diffusion time to make the spread
        // signal decisive rather than a coin flip.
        let cfg = GromacsConfig {
            n_chains: 64,
            chain_len: 8,
            ..GromacsConfig::default()
        };
        launch(1, move |comm| {
            let mut sim = GromacsSim::new(cfg.clone(), 0, 1);
            let r0 = sim.local_mean_radius();
            for _ in 0..2400 {
                sim.substep(&comm);
            }
            let r1 = sim.local_mean_radius();
            assert!(
                r1 > r0 * 1.02,
                "thermal diffusion did not spread the cloud: {r0} -> {r1}"
            );
        })
        .unwrap();
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let run = || {
            launch(1, |comm| {
                let mut sim = GromacsSim::new(small(), 0, 1);
                for _ in 0..50 {
                    sim.substep(&comm);
                }
                sim.positions().to_vec()
            })
            .unwrap()
            .remove(0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn angle_stiffness_straightens_chains() {
        // Mean squared end-to-end distance must grow with angle_k.
        let run = |angle_k: f64| {
            let cfg = GromacsConfig {
                n_chains: 8,
                chain_len: 12,
                angle_k,
                temperature: 0.8,
                ..GromacsConfig::default()
            };
            launch(1, move |comm| {
                let mut sim = GromacsSim::new(cfg.clone(), 0, 1);
                for _ in 0..600 {
                    sim.substep(&comm);
                }
                sim.local_mean_end_to_end_sq()
            })
            .unwrap()
            .remove(0)
        };
        let floppy = run(0.0);
        let stiff = run(30.0);
        assert!(
            stiff > floppy * 1.3,
            "stiffness did not extend chains: floppy {floppy:.2} vs stiff {stiff:.2}"
        );
    }

    #[test]
    fn stiff_chains_stay_finite() {
        let cfg = GromacsConfig {
            n_chains: 4,
            chain_len: 10,
            angle_k: 50.0,
            ..GromacsConfig::default()
        };
        launch(2, move |comm| {
            let mut sim = GromacsSim::new(cfg.clone(), comm.rank(), comm.size());
            for _ in 0..400 {
                sim.substep(&comm);
            }
            for p in sim.positions() {
                assert!(p.iter().all(|c| c.is_finite()));
            }
        })
        .unwrap();
    }

    #[test]
    fn output_chunk_is_atoms_by_xyz() {
        let sim = GromacsSim::new(small(), 1, 2);
        let chunk = sim.output_chunk();
        assert_eq!(chunk.meta.shape.sizes(), vec![48, 3]);
        assert_eq!(chunk.meta.resolve_label(1, "z").unwrap(), 2);
        let (start, count) = sim.local_atoms();
        assert_eq!(chunk.region.offset(), &[start, 0]);
        assert_eq!(chunk.region.count(), &[count, 3]);
    }

    #[test]
    fn atom_target_sizing() {
        let cfg = GromacsConfig::with_atom_target(1000);
        assert!(cfg.n_atoms() >= 1000);
        assert!(cfg.n_atoms() < 1100);
    }
}
