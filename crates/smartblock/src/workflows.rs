//! The paper's three workflow presets, the simulation component wrapper,
//! and script-to-workflow instantiation.
//!
//! Figures 5–7 of the paper define the pipelines:
//!
//! * **LAMMPS**: sim → Select(vx,vy,vz) → Magnitude → Histogram
//! * **GTCP**:   sim → Select(P_perp) → Dim-Reduce → Dim-Reduce → Histogram
//! * **GROMACS**: sim → Magnitude → Histogram
//!
//! The presets here build those exact pipelines with configurable process
//! counts and problem sizes, using the same stream/array names as the
//! paper's Fig. 8 where it gives them.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sb_comm::Communicator;
use sb_sims::{drive, GromacsConfig, GromacsSim, GtcpConfig, GtcpSim, LammpsConfig, LammpsSim};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{stream_err, Component};
use crate::error::ComponentResult;
use crate::histogram::HistogramResult;
use crate::launch::{parse_script_with_directives, LaunchEntry, LaunchError, Program, SimCode};
use crate::metrics::ComponentStats;
use crate::runtime::Workflow;
use crate::{
    AllInOne, AllPairs, Combine, DimReduce, FileRead, FileWrite, Fork, Histogram, Magnitude,
    Reduce, Select, Stats, TemporalMean, Threshold, Transpose,
};

/// Boxed components are themselves components, so parsed scripts can feed
/// [`Workflow::add`] through dynamic dispatch.
impl Component for Box<dyn Component> {
    fn label(&self) -> String {
        (**self).label()
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        (**self).run(comm, hub)
    }

    fn input_streams(&self) -> Vec<String> {
        (**self).input_streams()
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        (**self).input_subscriptions()
    }

    fn output_streams(&self) -> Vec<String> {
        (**self).output_streams()
    }

    fn signature(&self) -> crate::analysis::Signature {
        (**self).signature()
    }

    fn apply_control(&self, action: &crate::triggers::ControlAction) -> bool {
        (**self).apply_control(action)
    }
}

/// A simulation driver as a workflow component: the "driving scientific
/// code" slot of every paper workflow.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// Which mini code to run.
    pub code: SimCode,
    /// `key=value` overrides (`steps`, `interval`, `seed`, size keys).
    pub params: BTreeMap<String, String>,
    /// Output stream name.
    pub stream: String,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
}

impl Simulation {
    /// A simulation with default parameters on its conventional stream.
    pub fn new(code: SimCode) -> Simulation {
        Simulation {
            code,
            params: BTreeMap::new(),
            stream: code.default_stream().to_string(),
            writer_options: WriterOptions::default(),
        }
    }

    /// Sets one `key=value` parameter (builder style).
    pub fn param(mut self, key: &str, value: impl ToString) -> Simulation {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Overrides the output stream name.
    pub fn on_stream(mut self, stream: impl Into<String>) -> Simulation {
        self.stream = stream.into();
        self
    }

    /// Overrides the output buffering policy.
    pub fn with_writer_options(mut self, options: WriterOptions) -> Simulation {
        self.writer_options = options;
        self
    }

    fn get(&self, key: &str, default: usize) -> usize {
        match self.params.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("simulation parameter {key}={v:?} is not an integer")),
        }
    }

    fn get_f64(&self, key: &str, default: f64) -> f64 {
        match self.params.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("simulation parameter {key}={v:?} is not a number")),
        }
    }
}

impl Component for Simulation {
    fn label(&self) -> String {
        match self.code {
            SimCode::Lammps => "lammps".into(),
            SimCode::Gtcp => "gtcp".into(),
            SimCode::Gromacs => "gromacs".into(),
        }
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{ArraySpec, DimSpec, Signature, StreamSpec};
        // Each mini code publishes one self-describing array whose shape is
        // fully determined by its configuration — the source declaration
        // from which the analyzer propagates specs downstream.
        let (array, spec) = match self.code {
            SimCode::Lammps => (
                "atoms",
                ArraySpec::new(
                    vec![DimSpec::dynamic("particles"), DimSpec::fixed("props", 5)],
                    sb_data::DType::F64,
                )
                .with_dim_labels(1, ["ID", "Type", "vx", "vy", "vz"]),
            ),
            SimCode::Gtcp => {
                let defaults = GtcpConfig::default();
                (
                    "plasma",
                    ArraySpec::new(
                        vec![
                            DimSpec::fixed("toroidal", self.get("slices", defaults.n_slices)),
                            DimSpec::fixed("gridpoints", self.get("points", defaults.n_points)),
                            DimSpec::fixed("properties", sb_sims::gtcp::GTCP_PROPERTIES.len()),
                        ],
                        sb_data::DType::F64,
                    )
                    .with_dim_labels(2, sb_sims::gtcp::GTCP_PROPERTIES),
                )
            }
            SimCode::Gromacs => {
                let defaults = GromacsConfig::default();
                let atoms =
                    self.get("chains", defaults.n_chains) * self.get("len", defaults.chain_len);
                (
                    "coords",
                    ArraySpec::new(
                        vec![DimSpec::fixed("atoms", atoms), DimSpec::fixed("coords", 3)],
                        sb_data::DType::F64,
                    )
                    .with_dim_labels(1, ["x", "y", "z"]),
                )
            }
        };
        let out = StreamSpec::known_one(array, spec);
        Signature::new(Vec::new(), move |_ins| Ok(vec![out.clone()])).with_steps(
            crate::analysis::StepContract::Produces(self.get("steps", 5) as u64),
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        let io_steps = self.get("steps", 5) as u64;
        let substeps = self.get("interval", 10) as u64;
        let mut writer =
            hub.open_writer(&self.stream, comm.rank(), comm.size(), self.writer_options);
        let stats = match self.code {
            SimCode::Lammps => {
                let defaults = LammpsConfig::default();
                let cfg = LammpsConfig {
                    nx: self.get("nx", defaults.nx),
                    ny: self.get("ny", defaults.ny),
                    seed: self.get("seed", defaults.seed as usize) as u64,
                    thermostat: self
                        .params
                        .contains_key("thermostat")
                        .then(|| self.get_f64("thermostat", 0.0)),
                    ..defaults
                };
                let mut sim = LammpsSim::new(cfg, comm.rank(), comm.size());
                drive(&mut sim, comm, Some(&mut writer), io_steps, substeps)
            }
            SimCode::Gtcp => {
                let defaults = GtcpConfig::default();
                let cfg = GtcpConfig {
                    n_slices: self.get("slices", defaults.n_slices),
                    n_points: self.get("points", defaults.n_points),
                    seed: self.get("seed", defaults.seed as usize) as u64,
                    zonal_damping: self.get_f64("zonal", defaults.zonal_damping),
                    ..defaults
                };
                let mut sim = GtcpSim::new(cfg, comm.rank(), comm.size());
                drive(&mut sim, comm, Some(&mut writer), io_steps, substeps)
            }
            SimCode::Gromacs => {
                let defaults = GromacsConfig::default();
                let cfg = GromacsConfig {
                    n_chains: self.get("chains", defaults.n_chains),
                    chain_len: self.get("len", defaults.chain_len),
                    seed: self.get("seed", defaults.seed as usize) as u64,
                    angle_k: self.get_f64("angle", defaults.angle_k),
                    ..defaults
                };
                let mut sim = GromacsSim::new(cfg, comm.rank(), comm.size());
                drive(&mut sim, comm, Some(&mut writer), io_steps, substeps)
            }
        };
        let stats = match stats {
            Ok(s) => s,
            // `drive` has already abandoned the writer on this path.
            Err(e) => return Err(stream_err(&self.label(), writer.current_step(), e)),
        };
        Ok(ComponentStats {
            steps: stats.io_steps,
            bytes_in: 0,
            bytes_out: stats.bytes_output,
            step_times: Vec::new(),
            step_bytes_in: Vec::new(),
            wait_time: stats.io_time,
            compute_time: stats.compute_time,
        })
    }
}

/// Parses `options` into writer settings (`queue=`, `rendezvous=`,
/// `groups=`), starting from the default policy.
fn writer_options_from(options: &BTreeMap<String, String>) -> WriterOptions {
    let mut w = WriterOptions::default();
    if let Some(q) = options.get("queue") {
        w.queue_capacity = q
            .parse()
            .unwrap_or_else(|_| panic!("queue={q:?} is not an integer"));
        assert!(w.queue_capacity >= 1, "queue depth must be at least 1");
    }
    if let Some(r) = options.get("rendezvous") {
        w.rendezvous = r == "1" || r == "true";
    }
    if let Some(g) = options.get("groups") {
        w.expected_reader_groups = g
            .parse()
            .unwrap_or_else(|_| panic!("groups={g:?} is not an integer"));
        assert!(w.expected_reader_groups >= 1, "groups must be at least 1");
    }
    w
}

/// Instantiates one parsed launch entry as a boxed component, applying its
/// trailing options.
pub fn instantiate_entry(entry: &LaunchEntry) -> Box<dyn Component> {
    let opts = &entry.options;
    let group = opts.get("group").cloned();
    let wopts = writer_options_from(opts);
    macro_rules! finish {
        ($c:expr) => {{
            let mut c = $c;
            c.writer_options = wopts;
            if let Some(g) = group {
                c.reader_group = g;
            }
            Box::new(c)
        }};
    }
    match entry.program.clone() {
        Program::Select {
            input,
            dim_index,
            output,
            keep,
        } => finish!(Select::new(input, dim_index, keep, output)),
        Program::Magnitude { input, output } => finish!(Magnitude::new(input, output)),
        Program::DimReduce {
            input,
            remove,
            grow,
            output,
        } => finish!(DimReduce::new(input, remove, grow, output)),
        Program::Stats { input, output } => finish!(Stats::new(input, output)),
        Program::Reduce {
            input,
            dim,
            op,
            output,
        } => finish!(Reduce::new(input, dim, op, output)),
        Program::Threshold {
            input,
            predicate,
            output,
        } => finish!(Threshold::new(input, predicate, output)),
        Program::Transpose {
            input,
            perm,
            output,
        } => {
            finish!(Transpose::new(input, perm, output))
        }
        Program::AllPairs { input, output } => finish!(AllPairs::new(input, output)),
        Program::TemporalMean {
            input,
            window,
            output,
        } => {
            let mut t = TemporalMean::new(input, window, output);
            if let Some(s) = opts.get("stride") {
                let stride = s
                    .parse()
                    .unwrap_or_else(|_| panic!("stride={s:?} is not an integer"));
                t = t.with_stride(stride);
            }
            finish!(t)
        }
        Program::Histogram {
            input,
            num_bins,
            output_file,
        } => {
            let mut h = Histogram::new(input, num_bins);
            if let Some(path) = output_file {
                h = h.with_output_file(path);
            }
            if let Some(g) = group {
                h = h.with_reader_group(g);
            }
            Box::new(h)
        }
        Program::Combine {
            left,
            op,
            right,
            output,
        } => {
            let mut c = Combine::new(left, op, right, output);
            c.writer_options = wopts;
            if let Some(g) = group {
                c.left_group = Some(g);
            }
            if let Some(g) = opts.get("rgroup") {
                c.right_group = Some(g.clone());
            }
            Box::new(c)
        }
        Program::Fork { input, outputs } => {
            Box::new(Fork::new(input, outputs).with_writer_options(wopts))
        }
        Program::AllInOne {
            input,
            num_bins,
            keep,
        } => {
            let mut a = AllInOne::new(input, keep, num_bins);
            if let Some(g) = group {
                a.reader_group = g;
            }
            Box::new(a)
        }
        Program::FileWrite { input, path } => Box::new(FileWrite::new(input, path)),
        Program::FileRead { path, output } => {
            let mut f = FileRead::new(path, output);
            f.writer_options = wopts;
            Box::new(f)
        }
        Program::Simulation {
            code,
            params,
            stdin: _,
        } => {
            let mut sim = Simulation::new(code);
            if let Some(stream) = params.get("stream") {
                sim.stream = stream.clone();
            }
            // Writer-policy params ride along with the physics params.
            sim.writer_options = writer_options_from(&params);
            sim.params = params;
            Box::new(sim)
        }
    }
}

/// Instantiates a bare program with default options.
pub fn instantiate(program: Program) -> Box<dyn Component> {
    instantiate_entry(&LaunchEntry {
        nranks: 1,
        program,
        options: BTreeMap::new(),
        line: 0,
    })
}

/// Parses a launch script and assembles the runnable workflow, applying
/// `#@ policy` directives as per-component fault policies.
pub fn script_to_workflow(text: &str) -> Result<Workflow, LaunchError> {
    let (entries, directives) = parse_script_with_directives(text)?;
    let mut wf = Workflow::new();
    for entry in entries {
        let component = instantiate_entry(&entry);
        wf.add_at(entry.nranks, component, entry.line);
    }
    for p in &directives.policies {
        wf.set_fault_policy(p.label.clone(), p.policy.clone());
    }
    Ok(wf)
}

/// Process counts and problem size of one preset workflow run.
#[derive(Debug, Clone)]
pub struct PresetScale {
    /// Ranks for the driving simulation.
    pub sim_ranks: usize,
    /// Ranks for each analysis component, in pipeline order.
    pub analysis_ranks: Vec<usize>,
    /// Coarse output steps.
    pub io_steps: u64,
    /// Fine substeps per output step.
    pub substeps: u64,
    /// Histogram bins.
    pub bins: usize,
    /// Simulation size parameters (`nx`, `slices`, `chains`, ...).
    pub size_params: BTreeMap<String, String>,
    /// Writer buffering for every stream in the workflow.
    pub writer_options: WriterOptions,
    /// Hub wait timeout (bench harnesses shorten it).
    pub wait_timeout: Duration,
}

impl Default for PresetScale {
    fn default() -> Self {
        PresetScale {
            sim_ranks: 4,
            analysis_ranks: vec![2, 2, 1],
            io_steps: 4,
            substeps: 5,
            bins: 16,
            size_params: BTreeMap::new(),
            writer_options: WriterOptions::default(),
            wait_timeout: Duration::from_secs(120),
        }
    }
}

impl PresetScale {
    /// Sets a simulation size parameter.
    pub fn size(mut self, key: &str, value: usize) -> PresetScale {
        self.size_params.insert(key.into(), value.to_string());
        self
    }

    fn rank(&self, i: usize) -> usize {
        self.analysis_ranks.get(i).copied().unwrap_or(1).max(1)
    }

    fn simulation(&self, code: SimCode) -> Simulation {
        let mut sim = Simulation::new(code)
            .param("steps", self.io_steps)
            .param("interval", self.substeps)
            .with_writer_options(self.writer_options);
        for (k, v) in &self.size_params {
            sim = sim.param(k, v.clone());
        }
        sim
    }
}

/// Fig. 5: LAMMPS → Select(vx,vy,vz) → Magnitude → Histogram, using the
/// paper's Fig. 8 stream names. Returns the workflow and a handle to the
/// per-step histograms.
pub fn lammps_workflow(scale: &PresetScale) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    lammps_workflow_on(StreamHub::with_timeout(scale.wait_timeout), scale)
}

/// [`lammps_workflow`] on a caller-supplied hub — e.g. one from
///// [`StreamHub::connect`], so the same preset runs over the TCP backend (the
/// caller owns the hub's timeout).
pub fn lammps_workflow_on(
    hub: Arc<StreamHub>,
    scale: &PresetScale,
) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    let mut wf = Workflow::with_hub(hub);
    wf.add(scale.sim_ranks, scale.simulation(SimCode::Lammps));
    wf.add(
        scale.rank(0),
        Select::new(
            ("dump.custom.fp", "atoms"),
            1,
            ["vx", "vy", "vz"],
            ("lmpselect.fp", "lmpsel"),
        )
        .with_writer_options(scale.writer_options),
    );
    wf.add(
        scale.rank(1),
        Magnitude::new(("lmpselect.fp", "lmpsel"), ("velos.fp", "velocities"))
            .with_writer_options(scale.writer_options),
    );
    let hist = Histogram::new(("velos.fp", "velocities"), scale.bins);
    let results = hist.results_handle();
    wf.add(scale.rank(2), hist);
    (wf, results)
}

/// §V-C: the same LAMMPS run analyzed by the fused all-in-one component.
pub fn lammps_aio_workflow(scale: &PresetScale) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    lammps_aio_workflow_on(StreamHub::with_timeout(scale.wait_timeout), scale)
}

/// [`lammps_aio_workflow`] on a caller-supplied hub.
pub fn lammps_aio_workflow_on(
    hub: Arc<StreamHub>,
    scale: &PresetScale,
) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    let mut wf = Workflow::with_hub(hub);
    wf.add(scale.sim_ranks, scale.simulation(SimCode::Lammps));
    let aio = AllInOne::new(("dump.custom.fp", "atoms"), ["vx", "vy", "vz"], scale.bins);
    let results = aio.results_handle();
    wf.add(scale.rank(0), aio);
    (wf, results)
}

/// The Table II third column: the simulation alone, output routines removed.
pub fn lammps_sim_only(scale: &PresetScale) -> SimOnly {
    SimOnly {
        scale: scale.clone(),
    }
}

/// A runnable simulation-only baseline (not a workflow: no streams at all).
#[derive(Debug, Clone)]
pub struct SimOnly {
    scale: PresetScale,
}

impl SimOnly {
    /// Runs the bare simulation and returns its wall-clock time.
    pub fn run(&self) -> sb_comm::CommResult<Duration> {
        let scale = self.scale.clone();
        let start = std::time::Instant::now();
        let nx = scale
            .size_params
            .get("nx")
            .and_then(|v| v.parse().ok())
            .unwrap_or(40);
        let ny = scale
            .size_params
            .get("ny")
            .and_then(|v| v.parse().ok())
            .unwrap_or(40);
        sb_comm::launch_named("lammps-only", scale.sim_ranks, move |comm| {
            let cfg = LammpsConfig {
                nx,
                ny,
                ..LammpsConfig::default()
            };
            let mut sim = LammpsSim::new(cfg, comm.rank(), comm.size());
            drive(&mut sim, &comm, None, scale.io_steps, scale.substeps)
        })?;
        Ok(start.elapsed())
    }
}

/// Fig. 6: GTCP → Select(P_perp) → Dim-Reduce → Dim-Reduce → Histogram.
pub fn gtcp_workflow(scale: &PresetScale) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    gtcp_workflow_on(StreamHub::with_timeout(scale.wait_timeout), scale)
}

/// [`gtcp_workflow`] on a caller-supplied hub (e.g. a TCP-connected one).
pub fn gtcp_workflow_on(
    hub: Arc<StreamHub>,
    scale: &PresetScale,
) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    let mut wf = Workflow::with_hub(hub);
    wf.add(scale.sim_ranks, scale.simulation(SimCode::Gtcp));
    wf.add(
        scale.rank(0),
        Select::new(("gtcp.fp", "plasma"), 2, ["P_perp"], ("psel.fp", "pperp"))
            .with_writer_options(scale.writer_options),
    );
    wf.add(
        scale.rank(1),
        DimReduce::new(("psel.fp", "pperp"), 2, 1, ("dr1.fp", "flat2"))
            .with_writer_options(scale.writer_options),
    );
    wf.add(
        scale.rank(2),
        DimReduce::new(("dr1.fp", "flat2"), 0, 1, ("dr2.fp", "flat1"))
            .with_writer_options(scale.writer_options),
    );
    let hist = Histogram::new(("dr2.fp", "flat1"), scale.bins);
    let results = hist.results_handle();
    wf.add(scale.rank(3), hist);
    (wf, results)
}

/// Fig. 7: GROMACS → Magnitude → Histogram (spread of the atoms).
pub fn gromacs_workflow(scale: &PresetScale) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    gromacs_workflow_on(StreamHub::with_timeout(scale.wait_timeout), scale)
}

/// [`gromacs_workflow`] on a caller-supplied hub (e.g. a TCP-connected one).
pub fn gromacs_workflow_on(
    hub: Arc<StreamHub>,
    scale: &PresetScale,
) -> (Workflow, Arc<Mutex<Vec<HistogramResult>>>) {
    let mut wf = Workflow::with_hub(hub);
    wf.add(scale.sim_ranks, scale.simulation(SimCode::Gromacs));
    wf.add(
        scale.rank(0),
        Magnitude::new(("gromacs.fp", "coords"), ("gmag.fp", "radii"))
            .with_writer_options(scale.writer_options),
    );
    let hist = Histogram::new(("gmag.fp", "radii"), scale.bins);
    let results = hist.results_handle();
    wf.add(scale.rank(1), hist);
    (wf, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_scale_defaults_are_sane() {
        let s = PresetScale::default();
        assert_eq!(s.rank(0), 2);
        assert_eq!(s.rank(7), 1); // out of range -> 1
        let sized = s.size("nx", 24);
        assert_eq!(sized.size_params["nx"], "24");
    }

    #[test]
    fn simulation_builder() {
        let sim = Simulation::new(SimCode::Gtcp)
            .param("slices", 8)
            .on_stream("custom.fp");
        assert_eq!(sim.stream, "custom.fp");
        assert_eq!(sim.get("slices", 1), 8);
        assert_eq!(sim.get("missing", 3), 3);
        assert_eq!(sim.label(), "gtcp");
    }

    #[test]
    #[should_panic(expected = "not an integer")]
    fn bad_simulation_param_panics() {
        let sim = Simulation::new(SimCode::Lammps).param("nx", "forty");
        let _ = sim.get("nx", 40);
    }

    #[test]
    fn workflow_presets_have_expected_shapes() {
        let scale = PresetScale::default();
        let (wf, _) = lammps_workflow(&scale);
        assert_eq!(
            wf.labels(),
            vec!["lammps", "select", "magnitude", "histogram"]
        );
        let scale = PresetScale {
            analysis_ranks: vec![2, 2, 2, 1],
            ..PresetScale::default()
        };
        let (wf, _) = gtcp_workflow(&scale);
        assert_eq!(
            wf.labels(),
            vec!["gtcp", "select", "dim-reduce", "dim-reduce-2", "histogram"]
        );
        let (wf, _) = gromacs_workflow(&PresetScale::default());
        assert_eq!(wf.labels(), vec!["gromacs", "magnitude", "histogram"]);
        let (wf, _) = lammps_aio_workflow(&PresetScale::default());
        assert_eq!(wf.labels(), vec!["lammps", "all-in-one"]);
    }

    #[test]
    fn script_round_trip_builds_components() {
        let script = r#"
            aprun -n 2 gromacs chains=4 len=4 steps=2 &
            aprun -n 2 magnitude gromacs.fp coords m.fp r &
            aprun -n 1 histogram m.fp r 4 &
            wait
        "#;
        let wf = script_to_workflow(script).unwrap();
        assert_eq!(wf.labels(), vec!["gromacs", "magnitude", "histogram"]);
    }
}
