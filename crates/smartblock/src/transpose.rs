//! The Transpose component: arbitrary axis permutation.
//!
//! Dim-Reduce (paper §III-F) exists because "programming languages
//! understand multi-dimensional data as being in a specific order in
//! memory"; Transpose is the other half of that story — when a downstream
//! component wants the *same* dimensions in a different order (gridpoints
//! major instead of slices major, coordinates-of-atoms instead of
//! atoms-of-coordinates), the data must physically move. The output keeps
//! every dimension, name, and header, re-ordered by a permutation given on
//! the launch line.

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::slab_partition;
use sb_data::{Buffer, Chunk, DataError, DataResult, Dim, Region, Shape, Variable, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_transform, Component, StepOutput, StreamArray, TransformSpec};
use crate::error::ComponentResult;

/// Validates that `perm` is a permutation of `0..ndims`.
pub fn check_permutation(perm: &[usize], ndims: usize) -> DataResult<()> {
    if perm.len() != ndims {
        return Err(DataError::RegionOutOfBounds {
            detail: format!("permutation rank {} != array rank {ndims}", perm.len()),
        });
    }
    let mut seen = vec![false; ndims];
    for &p in perm {
        if p >= ndims || seen[p] {
            return Err(DataError::RegionOutOfBounds {
                detail: format!("{perm:?} is not a permutation of 0..{ndims}"),
            });
        }
        seen[p] = true;
    }
    Ok(())
}

/// Permutes the axes of `var`: output dimension `i` is input dimension
/// `perm[i]`. Labels and dimension names travel with their axes.
///
/// This is the pure kernel of the Transpose component.
pub fn permute_axes(var: &Variable, perm: &[usize]) -> DataResult<Variable> {
    let ndims = var.shape.ndims();
    check_permutation(perm, ndims)?;
    let out_dims: Vec<Dim> = perm.iter().map(|&p| var.shape.dims()[p].clone()).collect();
    let out_shape = Shape::new(out_dims);

    // contrib[input_dim] = stride of that dim's index in the output.
    let out_strides = out_shape.strides();
    let mut contrib = vec![0usize; ndims];
    for (out_d, &in_d) in perm.iter().enumerate() {
        contrib[in_d] = out_strides[out_d];
    }

    let sizes = var.shape.sizes();
    let total = var.shape.total_len();
    if ndims == 0 {
        // Rank-0: nothing to permute.
        let mut result = Variable::new(var.name.clone(), out_shape, var.data.clone())?;
        result.attrs = var.attrs.clone();
        return Ok(result);
    }
    let mut out = Buffer::zeros(var.dtype(), total);
    if total > 0 {
        let last = ndims - 1;
        let run = sizes[last];
        let run_contiguous = contrib[last] == 1;
        let mut idx = vec![0usize; last];
        let mut in_off = 0usize;
        'outer: loop {
            let out_base: usize = idx.iter().zip(&contrib[..last]).map(|(&i, &c)| i * c).sum();
            if run_contiguous {
                out.copy_from(out_base, &var.data, in_off, run)?;
            } else {
                for k in 0..run {
                    out.copy_from(out_base + k * contrib[last], &var.data, in_off + k, 1)?;
                }
            }
            in_off += run;
            let mut d = last;
            loop {
                if d == 0 {
                    break 'outer;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < sizes[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        debug_assert_eq!(in_off, total);
    }

    let mut result = Variable::new(var.name.clone(), out_shape, out)?;
    for (out_d, &in_d) in perm.iter().enumerate() {
        if let Some(names) = var.labels.get(&in_d) {
            result
                .set_labels(out_d, names.clone())
                .expect("label extent matches the moved dim");
        }
    }
    result.attrs = var.attrs.clone();
    Ok(result)
}

/// The Transpose workflow component.
#[derive(Debug, Clone)]
pub struct Transpose {
    /// Input stream/array names.
    pub input: StreamArray,
    /// The axis permutation: output dim `i` = input dim `perm[i]`.
    pub perm: Vec<usize>,
    /// Output stream/array names.
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
}

impl Transpose {
    /// Builds a Transpose with the given permutation.
    pub fn new<I, O>(input: I, perm: Vec<usize>, output: O) -> Transpose
    where
        I: Into<StreamArray>,
        O: Into<StreamArray>,
    {
        Transpose {
            input: input.into(),
            perm,
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Transpose {
        self.reader_group = group.into();
        self
    }
}

impl Component for Transpose {
    fn label(&self) -> String {
        "transpose".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{
            unary_transfer, ArraySpec, PartitionRule, ReadSpec, Signature, SpecError,
        };
        use std::collections::BTreeMap;
        let perm = self.perm.clone();
        let reads = match self.perm.first() {
            Some(&p) => vec![ReadSpec::new(
                &self.input.stream,
                &self.input.array,
                PartitionRule::Along(p),
            )],
            None => Vec::new(),
        };
        Signature::with_boxed_transfer(
            reads,
            unary_transfer(
                self.input.array.clone(),
                self.output.array.clone(),
                move |spec| {
                    // Mirrors `check_permutation`.
                    if perm.len() != spec.ndims() {
                        return Err(SpecError::InvalidAxes {
                            detail: format!(
                                "permutation {:?} does not cover a {}-d array",
                                perm,
                                spec.ndims()
                            ),
                        });
                    }
                    let mut seen = vec![false; perm.len()];
                    for &p in &perm {
                        if p >= perm.len() || seen[p] {
                            return Err(SpecError::InvalidAxes {
                                detail: format!("{perm:?} is not a permutation of the axes"),
                            });
                        }
                        seen[p] = true;
                    }
                    let dims = perm.iter().map(|&p| spec.dims[p].clone()).collect();
                    let mut labels = BTreeMap::new();
                    for (i, &p) in perm.iter().enumerate() {
                        if let Some(names) = spec.labels.get(&p) {
                            labels.insert(i, names.clone());
                        }
                    }
                    let mut out = ArraySpec::new(dims, spec.dtype);
                    out.labels = labels;
                    Ok(out)
                },
            ),
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_transform(
            TransformSpec {
                label: "transpose",
                input_stream: &self.input.stream,
                reader_group: &self.reader_group,
                output_stream: &self.output.stream,
                writer_options: self.writer_options,
            },
            comm,
            hub,
            |reader, comm| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                check_permutation(&self.perm, meta.shape.ndims())?;
                if meta.shape.ndims() == 0 {
                    // Rank-0 input: pass the scalar through on rank 0.
                    let var = reader.get(&self.input.array, &Region::new(vec![], vec![]))?;
                    let out_meta = VariableMeta::new(
                        self.output.array.clone(),
                        meta.shape.clone(),
                        meta.dtype,
                    );
                    let chunk = (comm.rank() == 0).then(|| {
                        Chunk::new(out_meta, Region::new(vec![], vec![]), var.data.clone())
                            .expect("scalar chunk is consistent")
                    });
                    return Ok(StepOutput {
                        chunk,
                        bytes_in: var.byte_len() as u64,
                        compute: std::time::Duration::ZERO,
                    });
                }

                // Partition along the input dim that becomes output dim 0,
                // so every rank's output is a leading contiguous slab.
                let pdim = self.perm[0];
                let region = slab_partition(&meta.shape, pdim, comm.size(), comm.rank());
                let (off, count) = (region.offset()[pdim], region.count()[pdim]);
                let var = reader.get(&self.input.array, &region)?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                let mut local = permute_axes(&var, &self.perm)?;
                local.name = self.output.array.clone();
                let compute = kernel_start.elapsed();

                // Global output metadata with permuted dims and labels.
                let out_dims: Vec<Dim> = self
                    .perm
                    .iter()
                    .map(|&p| meta.shape.dims()[p].clone())
                    .collect();
                let mut out_meta =
                    VariableMeta::new(self.output.array.clone(), Shape::new(out_dims), meta.dtype);
                for (out_d, &in_d) in self.perm.iter().enumerate() {
                    if let Some(names) = meta.labels.get(&in_d) {
                        out_meta.labels.insert(out_d, names.clone());
                    }
                }
                out_meta.attrs = meta.attrs.clone();

                let mut out_offset = vec![0; self.perm.len()];
                let mut out_counts = out_meta.shape.sizes();
                out_offset[0] = off;
                out_counts[0] = count;
                let chunk = Chunk::new(out_meta, Region::new(out_offset, out_counts), local.data)?;
                Ok(StepOutput {
                    chunk: Some(chunk),
                    bytes_in,
                    compute,
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Variable {
        let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
        Variable::new(
            "t",
            Shape::of(&[("a", 2), ("b", 3), ("c", 4)]),
            Buffer::from(data),
        )
        .unwrap()
        .with_labels(2, &["w", "x", "y", "z"])
        .unwrap()
    }

    #[test]
    fn permutation_validation() {
        assert!(check_permutation(&[0, 1, 2], 3).is_ok());
        assert!(check_permutation(&[2, 0, 1], 3).is_ok());
        assert!(check_permutation(&[0, 1], 3).is_err());
        assert!(check_permutation(&[0, 0, 1], 3).is_err());
        assert!(check_permutation(&[0, 1, 3], 3).is_err());
    }

    #[test]
    fn identity_permutation_is_identity() {
        let v = cube();
        let out = permute_axes(&v, &[0, 1, 2]).unwrap();
        assert_eq!(out.data, v.data);
        assert_eq!(out.shape, v.shape);
        assert_eq!(out.header(2).unwrap().len(), 4);
    }

    #[test]
    fn transpose_2d_matrix() {
        let data: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let v = Variable::new("m", Shape::of(&[("r", 2), ("c", 3)]), Buffer::from(data)).unwrap();
        let t = permute_axes(&v, &[1, 0]).unwrap();
        assert_eq!(t.shape, Shape::of(&[("c", 3), ("r", 2)]));
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(t.get(&[c, r]), v.get(&[r, c]));
            }
        }
    }

    #[test]
    fn full_reversal_in_3d() {
        let v = cube();
        let t = permute_axes(&v, &[2, 1, 0]).unwrap();
        assert_eq!(t.shape.sizes(), vec![4, 3, 2]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    assert_eq!(t.get(&[c, b, a]), v.get(&[a, b, c]));
                }
            }
        }
        // Labels follow their axis: dim 2 labels end up on dim 0.
        assert_eq!(t.header(0).unwrap().len(), 4);
        assert!(t.header(2).is_none());
    }

    #[test]
    fn double_transpose_is_identity() {
        let v = cube();
        for perm in [[1usize, 2, 0], [2, 0, 1], [0, 2, 1]] {
            let t = permute_axes(&v, &perm).unwrap();
            // Compute the inverse permutation.
            let mut inv = [0usize; 3];
            for (i, &p) in perm.iter().enumerate() {
                inv[p] = i;
            }
            let back = permute_axes(&t, &inv).unwrap();
            assert_eq!(back.data, v.data, "perm {perm:?}");
            assert_eq!(back.shape, v.shape);
        }
    }

    #[test]
    fn empty_array_transposes() {
        let v = Variable::new("e", Shape::of(&[("a", 0), ("b", 3)]), Buffer::F64(vec![])).unwrap();
        let t = permute_axes(&v, &[1, 0]).unwrap();
        assert_eq!(t.shape.sizes(), vec![3, 0]);
    }
}
