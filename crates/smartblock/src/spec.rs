//! The declarative workflow spec: `.sbw` files.
//!
//! A `.sbw` file describes a whole workflow in one artifact — components,
//! stream wiring, scale, fault policies, transport and wire options, trace
//! config, and reactive trigger clauses — in a small TOML subset parsed by
//! an in-tree parser (no external crates). The same spec drives `sb-lint`,
//! `sb-run`, and the library entry point
//! [`Workflow::from_spec`](crate::Workflow::from_spec):
//!
//! ```text
//! [workflow]
//! name = "gromacs-spread"
//!
//! [transport]
//! url = "tcp://127.0.0.1:7654"
//! protocol = "v2"          # v1 | v2 | shm (shm pins url to shm://DIR)
//! compression = "lz"       # none | lz
//! timeout_secs = 30
//!
//! [trace]
//! enabled = true
//! ring_capacity = 4096
//!
//! [[component]]
//! program = "gromacs"
//! ranks = 2
//! args = ["chains=8", "len=8", "steps=4", "interval=5"]
//!
//! [[component]]
//! program = "magnitude"
//! ranks = 2
//! args = ["gromacs.fp", "coords", "gmag.fp", "radii"]
//!
//! [policy.gromacs]
//! action = "restart"
//! max_restarts = 2
//! backoff_ms = 50
//!
//! [process.sim]
//! members = ["gromacs"]
//!
//! [[trigger]]
//! when = "histogram.max > 100"
//! then = "set_output_stride temporal-mean 4"
//! ```
//!
//! ## Compilation
//!
//! A spec compiles into the existing launch model by *synthesis*: every
//! construct is rendered as the equivalent launch-script line (`aprun …` or
//! `#@ …` directive), placed at the **same 1-based line number** the
//! construct occupies in the `.sbw` file, and the result goes through
//! [`crate::launch::parse_script_with_directives`]. Grammar-level errors
//! and every existing lint therefore report line-accurate positions in the
//! spec, with no second validation path to keep in sync.
//!
//! Spec-*level* issues (unknown keys, trigger references to undeclared
//! components, policy conflicts) are collected as [`SpecIssue`]s and
//! surface through the lint engine as SB018–SB020.
//!
//! ## Subset
//!
//! The parser accepts: `[table]` / `[table.sub]` headers, `[[array]]`
//! array-of-table headers, `key = value` pairs with string (`"…"`),
//! integer, float, boolean, and single-line list-of-string/int values,
//! `#` comments, and blank lines. No nested inline tables, no multi-line
//! values, no datetimes.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use sb_stream::{Compression, StreamHub, TraceConfig, WireProtocol};

use crate::distributed::{apply_policy_directives, partial_workflow, plan_script};
use crate::launch::{parse_script_with_directives, LaunchEntry, ScriptDirectives};
use crate::runtime::Workflow;
use crate::triggers::{Trigger, TriggerAction};

/// A syntax or structural error in a `.sbw` spec: the spec cannot compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// 1-based spec line.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for SpecParseError {}

/// A spec-level issue found while compiling a parseable `.sbw` file.
/// Surfaced through the lint engine as SB018–SB020; deny-level kinds also
/// refuse [`Workflow::from_spec`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecIssue {
    /// SB018 (warn): a key or table the spec language does not define; the
    /// compiler ignores it.
    UnknownKey {
        /// The unknown key (or table header).
        key: String,
        /// The table it appeared in (`"(top level)"` for unknown tables).
        table: String,
        /// 1-based spec line.
        line: usize,
    },
    /// SB019 (deny): a trigger clause references a component label the
    /// spec does not declare; the clause could never fire or act.
    UndeclaredTriggerRef {
        /// The undeclared label.
        reference: String,
        /// 1-based spec line of the trigger.
        line: usize,
    },
    /// SB020 (deny): two spec constructs contradict each other (duplicate
    /// tables, a component assigned to two process groups, policy knobs
    /// that the declared action ignores).
    Conflict {
        /// Human-readable description of the contradiction.
        detail: String,
        /// 1-based spec line of the later construct.
        line: usize,
    },
}

impl SpecIssue {
    /// The 1-based spec line the issue points at.
    pub fn line(&self) -> usize {
        match self {
            SpecIssue::UnknownKey { line, .. }
            | SpecIssue::UndeclaredTriggerRef { line, .. }
            | SpecIssue::Conflict { line, .. } => *line,
        }
    }

    /// Whether the issue blocks [`Workflow::from_spec`] (deny-level).
    pub fn is_deny(&self) -> bool {
        !matches!(self, SpecIssue::UnknownKey { .. })
    }
}

impl fmt::Display for SpecIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecIssue::UnknownKey {
                key,
                table,
                line: _,
            } => {
                write!(f, "unknown key {key:?} in {table}")
            }
            SpecIssue::UndeclaredTriggerRef { reference, line: _ } => {
                write!(f, "trigger references undeclared component {reference:?}")
            }
            SpecIssue::Conflict { detail, line: _ } => f.write_str(detail),
        }
    }
}

/// Why loading a spec into a [`Workflow`] failed.
#[derive(Debug)]
pub enum SpecLoadError {
    /// The file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The spec does not parse or compile.
    Parse(SpecParseError),
    /// The spec compiled but carries deny-level issues (undeclared trigger
    /// references, conflicting constructs) — or warn-level issues under
    /// [`SpecOptions::strict`].
    Invalid {
        /// Rendered issues, in spec order.
        issues: Vec<String>,
    },
}

impl fmt::Display for SpecLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecLoadError::Io { path, source } => write!(f, "reading spec {path:?}: {source}"),
            SpecLoadError::Parse(e) => e.fmt(f),
            SpecLoadError::Invalid { issues } => {
                write!(f, "invalid spec: {}", issues.join("; "))
            }
        }
    }
}

impl std::error::Error for SpecLoadError {}

impl From<SpecParseError> for SpecLoadError {
    fn from(e: SpecParseError) -> SpecLoadError {
        SpecLoadError::Parse(e)
    }
}

/// Options for loading a spec via
/// [`Workflow::from_spec_with`](crate::Workflow::from_spec_with).
///
/// Marked `#[non_exhaustive]`; construct via [`SpecOptions::default`] (or
/// [`SpecOptions::new`]) and refine with the `with_*` setters.
#[non_exhaustive]
#[derive(Debug, Clone, Default)]
pub struct SpecOptions {
    /// Treat warn-level spec issues (unknown keys) as load errors too.
    pub strict: bool,
}

impl SpecOptions {
    /// The default options: warn-level issues are ignored at load time
    /// (run `sb-lint` to see them).
    pub fn new() -> SpecOptions {
        SpecOptions::default()
    }

    /// Refuses to load a spec with *any* issue, warn-level included
    /// (builder style).
    pub fn with_strict(mut self, strict: bool) -> SpecOptions {
        self.strict = strict;
        self
    }
}

/// One parsed scalar (or list) value of a spec key.
#[derive(Debug, Clone, PartialEq)]
enum SpecValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    /// List items are normalized to strings (args, members).
    List(Vec<String>),
}

impl SpecValue {
    fn type_name(&self) -> &'static str {
        match self {
            SpecValue::Str(_) => "a string",
            SpecValue::Int(_) => "an integer",
            SpecValue::Float(_) => "a float",
            SpecValue::Bool(_) => "a boolean",
            SpecValue::List(_) => "a list",
        }
    }
}

/// One `[table]` / `[[table]]` section with its keys and source lines.
#[derive(Debug, Clone)]
struct RawTable {
    /// Dotted header path segments (`policy.gromacs` → `["policy", "gromacs"]`).
    path: Vec<String>,
    /// 1-based line of the header.
    line: usize,
    /// `key -> (value, 1-based key line)`, in declaration order.
    entries: Vec<(String, SpecValue, usize)>,
}

impl RawTable {
    fn get(&self, key: &str) -> Option<(&SpecValue, usize)> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, l)| (v, *l))
    }
}

/// The compiled form of a `.sbw` spec: everything `sb-lint`, `sb-run`, and
/// [`Workflow::from_spec`] need, in one value.
#[derive(Debug, Clone)]
pub struct ParsedSpec {
    /// The `[workflow] name`, when declared.
    pub name: Option<String>,
    /// The launch entries the spec compiled to, with `.sbw` line numbers.
    pub entries: Vec<LaunchEntry>,
    /// The script-level directives (transport, policies, processes) the
    /// spec compiled to, with `.sbw` line numbers.
    pub directives: ScriptDirectives,
    /// Parsed reactive trigger clauses, in declaration order.
    pub triggers: Vec<Trigger>,
    /// The `[trace]` table, when enabled.
    pub trace: Option<TraceConfig>,
    /// The `[transport] timeout_secs`, when declared.
    pub hub_timeout: Option<Duration>,
    /// The `[transport] protocol`, when declared.
    pub protocol: Option<WireProtocol>,
    /// The `[transport] compression`, when declared.
    pub compression: Option<Compression>,
    /// Spec-level issues (SB018–SB020), in spec order.
    pub issues: Vec<SpecIssue>,
    /// The line-preserving launch script the spec compiled through: line
    /// `n` of this text corresponds to line `n` of the `.sbw` file.
    pub script: String,
}

impl ParsedSpec {
    /// The deny-level issues, rendered with their lines.
    pub fn deny_issues(&self) -> Vec<String> {
        self.issues
            .iter()
            .filter(|i| i.is_deny())
            .map(|i| format!("line {}: {i}", i.line()))
            .collect()
    }
}

/// The `.sbw` spec language: [`WorkflowSpec::parse`] compiles spec text
/// into a [`ParsedSpec`].
pub struct WorkflowSpec;

/// The option keys a `[[component]]` table may carry, mirrored onto the
/// synthesized launch line as `key=value` tokens.
const COMPONENT_OPTION_KEYS: &[&str] = &["group", "queue", "rendezvous", "groups", "stride"];

impl WorkflowSpec {
    /// Parses and compiles `.sbw` text. `Err` means the spec cannot
    /// compile at all; an `Ok` value may still carry [`SpecIssue`]s.
    pub fn parse(text: &str) -> Result<ParsedSpec, SpecParseError> {
        let tables = parse_tables(text)?;
        let mut issues: Vec<SpecIssue> = Vec::new();
        let mut name = None;
        let mut trace: Option<TraceConfig> = None;
        let mut hub_timeout = None;
        let mut protocol = None;
        let mut compression = None;
        // Rendered launch-script lines by 1-based spec line.
        let mut rendered: BTreeMap<usize, String> = BTreeMap::new();
        let mut seen_single: BTreeMap<String, usize> = BTreeMap::new();
        let mut process_members: Vec<(String, String, usize)> = Vec::new();
        let mut trigger_tables: Vec<&RawTable> = Vec::new();

        for table in &tables {
            let header = table.path.join(".");
            // Duplicate non-array tables contradict each other.
            let is_array = matches!(table.path[0].as_str(), "component" | "trigger");
            if !is_array {
                if let Some(first) = seen_single.insert(header.clone(), table.line) {
                    issues.push(SpecIssue::Conflict {
                        detail: format!("duplicate [{header}] table (first at line {first})"),
                        line: table.line,
                    });
                    continue;
                }
            }
            match (table.path[0].as_str(), table.path.len()) {
                ("workflow", 1) => {
                    name = opt_str(table, "name", &mut issues)?;
                    warn_unknown(table, &["name"], &mut issues);
                }
                ("transport", 1) => {
                    let url = if let Some((url, line)) = table.get("url") {
                        let url = expect_str(url, "url", line)?;
                        rendered.insert(line, format!("#@ transport {url}"));
                        Some(url)
                    } else {
                        None
                    };
                    if let Some((v, line)) = table.get("protocol") {
                        match expect_str(v, "protocol", line)?.as_str() {
                            "v1" => protocol = Some(WireProtocol::V1),
                            "v2" => protocol = Some(WireProtocol::V2),
                            // "shm" names the fabric, not a frame format: it
                            // pins the declared endpoint to the shared-memory
                            // scheme and leaves the wire protocol (v1/v2 over
                            // the ring) at its default.
                            "shm" => match url.as_deref() {
                                Some(u) if u.starts_with("shm://") => {}
                                Some(u) => {
                                    return Err(err(
                                        line,
                                        format!("protocol \"shm\" needs an shm:// url, got {u:?}"),
                                    ))
                                }
                                None => {
                                    return Err(err(
                                        line,
                                        "protocol \"shm\" needs a [transport] url declaring an \
                                         shm:// endpoint"
                                            .to_string(),
                                    ))
                                }
                            },
                            other => {
                                return Err(err(
                                    line,
                                    format!("bad protocol {other:?} (v1 | v2 | shm)"),
                                ))
                            }
                        }
                    }
                    if let Some((v, line)) = table.get("compression") {
                        compression = Some(match expect_str(v, "compression", line)?.as_str() {
                            "none" => Compression::None,
                            "lz" => Compression::Lz,
                            other => {
                                return Err(err(
                                    line,
                                    format!("bad compression {other:?} (none | lz)"),
                                ))
                            }
                        });
                    }
                    if let Some((v, line)) = table.get("timeout_secs") {
                        let secs = expect_pos_int(v, "timeout_secs", line)?;
                        hub_timeout = Some(Duration::from_secs(secs as u64));
                    }
                    warn_unknown(
                        table,
                        &["url", "protocol", "compression", "timeout_secs"],
                        &mut issues,
                    );
                }
                ("trace", 1) => {
                    let enabled = match table.get("enabled") {
                        Some((v, line)) => expect_bool(v, "enabled", line)?,
                        None => true,
                    };
                    if enabled {
                        let mut config = TraceConfig::new();
                        if let Some((v, line)) = table.get("ring_capacity") {
                            config = config.with_ring_capacity(expect_pos_int(
                                v,
                                "ring_capacity",
                                line,
                            )?);
                        }
                        trace = Some(config);
                    }
                    warn_unknown(table, &["enabled", "ring_capacity"], &mut issues);
                }
                ("component", 1) => {
                    let rendered_line = render_component(table, &mut issues)?;
                    rendered.insert(table.line, rendered_line);
                }
                ("policy", 2) => {
                    let label = &table.path[1];
                    let spec = render_policy(table, &mut issues)?;
                    rendered.insert(table.line, format!("#@ policy {label} {spec}"));
                }
                ("process", 2) => {
                    let pname = &table.path[1];
                    let Some((members, mline)) = table.get("members") else {
                        return Err(err(table.line, "[process.*] needs members = [\"…\"]"));
                    };
                    let members = expect_list(members, "members", mline)?;
                    if members.is_empty() {
                        return Err(err(mline, "members must not be empty"));
                    }
                    for m in &members {
                        no_whitespace(m, "member", mline)?;
                        process_members.push((m.clone(), pname.clone(), table.line));
                    }
                    warn_unknown(table, &["members"], &mut issues);
                    rendered.insert(
                        table.line,
                        format!("#@ process {pname} {}", members.join(",")),
                    );
                }
                ("trigger", 1) => trigger_tables.push(table),
                _ => issues.push(SpecIssue::UnknownKey {
                    key: format!("[{header}]"),
                    table: "(top level)".into(),
                    line: table.line,
                }),
            }
        }

        // A component in two process groups would be launched twice.
        for (i, (member, pname, line)) in process_members.iter().enumerate() {
            if let Some((_, other, _)) = process_members[..i].iter().find(|(m, _, _)| m == member) {
                issues.push(SpecIssue::Conflict {
                    detail: format!(
                        "component {member:?} is assigned to both process {other:?} and \
                         process {pname:?}"
                    ),
                    line: *line,
                });
            }
        }

        // Synthesize the line-preserving script and reuse the launch
        // grammar wholesale: its errors carry `.sbw`-accurate lines.
        let last = rendered.keys().max().copied().unwrap_or(0);
        let mut script = String::new();
        for lineno in 1..=last {
            if let Some(line) = rendered.get(&lineno) {
                script.push_str(line);
            }
            script.push('\n');
        }
        let (entries, directives) =
            parse_script_with_directives(&script).map_err(|e| err(e.line, e.detail))?;

        // Labels every process agrees on, for trigger-reference checks.
        let labels: Vec<String> = plan_script(&script)
            .map_err(|e| err(e.line, e.detail))?
            .0
            .into_iter()
            .map(|p| p.label)
            .collect();

        let mut triggers = Vec::new();
        for table in trigger_tables {
            let Some((when, wline)) = table.get("when") else {
                return Err(err(table.line, "[[trigger]] needs a when clause"));
            };
            let when = expect_str(when, "when", wline)?;
            let Some((then, tline)) = table.get("then") else {
                return Err(err(table.line, "[[trigger]] needs a then clause"));
            };
            let then = expect_str(then, "then", tline)?;
            warn_unknown(table, &["when", "then"], &mut issues);
            let (component, signal, op, value) =
                Trigger::parse_when(&when).map_err(|detail| err(wline, detail))?;
            let action = Trigger::parse_then(&then).map_err(|detail| err(tline, detail))?;
            if !labels.iter().any(|l| l == &component) {
                issues.push(SpecIssue::UndeclaredTriggerRef {
                    reference: component.clone(),
                    line: table.line,
                });
            }
            let target = match &action {
                TriggerAction::SetOutputStride { target, .. }
                | TriggerAction::RaiseFaultPolicy { target, .. } => Some(target.clone()),
                TriggerAction::SnapshotStream { .. } => None,
            };
            if let Some(target) = target {
                if !labels.iter().any(|l| l == &target) {
                    issues.push(SpecIssue::UndeclaredTriggerRef {
                        reference: target,
                        line: table.line,
                    });
                }
            }
            let mut trigger = Trigger::new(component, signal, op, value, action);
            trigger.line = table.line;
            triggers.push(trigger);
        }

        issues.sort_by_key(|i| i.line());
        Ok(ParsedSpec {
            name,
            entries,
            directives,
            triggers,
            trace,
            hub_timeout,
            protocol,
            compression,
            issues,
            script,
        })
    }
}

impl Workflow {
    /// Loads a `.sbw` spec file into a ready-to-run in-process workflow:
    /// components, policies, triggers, trace config, and hub timeout all
    /// applied. With the prelude in scope, the documented two-line entry
    /// point is:
    ///
    /// ```ignore
    /// let wf = Workflow::from_spec("pipeline.sbw")?;
    /// let report = wf.run_with(RunOptions::default())?;
    /// ```
    ///
    /// The `[transport] url` is *not* dialed here — a single process runs
    /// the whole workflow in memory; `sb-run` uses the URL for
    /// multi-process deployments.
    pub fn from_spec(path: impl AsRef<std::path::Path>) -> Result<Workflow, SpecLoadError> {
        Workflow::from_spec_with(path, SpecOptions::default())
    }

    /// [`Workflow::from_spec`] with explicit [`SpecOptions`].
    pub fn from_spec_with(
        path: impl AsRef<std::path::Path>,
        options: SpecOptions,
    ) -> Result<Workflow, SpecLoadError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|source| SpecLoadError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Workflow::from_spec_text_with(&text, options)
    }

    /// [`Workflow::from_spec`] over in-memory spec text.
    pub fn from_spec_text(text: &str) -> Result<Workflow, SpecLoadError> {
        Workflow::from_spec_text_with(text, SpecOptions::default())
    }

    /// [`Workflow::from_spec_text`] with explicit [`SpecOptions`].
    pub fn from_spec_text_with(
        text: &str,
        options: SpecOptions,
    ) -> Result<Workflow, SpecLoadError> {
        let spec = WorkflowSpec::parse(text)?;
        let issues: Vec<String> = if options.strict {
            spec.issues
                .iter()
                .map(|i| format!("line {}: {i}", i.line()))
                .collect()
        } else {
            spec.deny_issues()
        };
        if !issues.is_empty() {
            return Err(SpecLoadError::Invalid { issues });
        }
        let (plan, directives) =
            plan_script(&spec.script).map_err(|e| SpecLoadError::Parse(err(e.line, e.detail)))?;
        let mut wf = partial_workflow(StreamHub::new(), &plan, &[]).map_err(|detail| {
            SpecLoadError::Invalid {
                issues: vec![detail],
            }
        })?;
        apply_policy_directives(&mut wf, &directives);
        for trigger in spec.triggers {
            wf.add_trigger(trigger);
        }
        wf.default_trace = spec.trace;
        wf.default_hub_timeout = spec.hub_timeout;
        Ok(wf)
    }
}

fn err(line: usize, detail: impl Into<String>) -> SpecParseError {
    SpecParseError {
        line,
        detail: detail.into(),
    }
}

fn expect_str(v: &SpecValue, key: &str, line: usize) -> Result<String, SpecParseError> {
    match v {
        SpecValue::Str(s) => Ok(s.clone()),
        other => Err(err(
            line,
            format!("{key} must be a string, got {}", other.type_name()),
        )),
    }
}

fn expect_bool(v: &SpecValue, key: &str, line: usize) -> Result<bool, SpecParseError> {
    match v {
        SpecValue::Bool(b) => Ok(*b),
        other => Err(err(
            line,
            format!("{key} must be a boolean, got {}", other.type_name()),
        )),
    }
}

fn expect_pos_int(v: &SpecValue, key: &str, line: usize) -> Result<usize, SpecParseError> {
    match v {
        SpecValue::Int(n) if *n > 0 => Ok(*n as usize),
        SpecValue::Int(n) => Err(err(line, format!("{key} must be positive, got {n}"))),
        other => Err(err(
            line,
            format!("{key} must be an integer, got {}", other.type_name()),
        )),
    }
}

fn expect_list(v: &SpecValue, key: &str, line: usize) -> Result<Vec<String>, SpecParseError> {
    match v {
        SpecValue::List(items) => Ok(items.clone()),
        other => Err(err(
            line,
            format!("{key} must be a list, got {}", other.type_name()),
        )),
    }
}

/// Synthesized tokens go through a whitespace-splitting grammar, so no
/// token may contain whitespace.
fn no_whitespace(tok: &str, what: &str, line: usize) -> Result<(), SpecParseError> {
    if tok.chars().any(char::is_whitespace) || tok.is_empty() {
        return Err(err(
            line,
            format!("{what} {tok:?} must be one non-empty whitespace-free token"),
        ));
    }
    Ok(())
}

fn opt_str(
    table: &RawTable,
    key: &str,
    _issues: &mut [SpecIssue],
) -> Result<Option<String>, SpecParseError> {
    match table.get(key) {
        Some((v, line)) => Ok(Some(expect_str(v, key, line)?)),
        None => Ok(None),
    }
}

/// Flags every key of `table` not in `known` as SB018.
fn warn_unknown(table: &RawTable, known: &[&str], issues: &mut Vec<SpecIssue>) {
    let header = table.path.join(".");
    for (key, _, line) in &table.entries {
        if !known.contains(&key.as_str()) {
            issues.push(SpecIssue::UnknownKey {
                key: key.clone(),
                table: format!("[{header}]"),
                line: *line,
            });
        }
    }
}

/// Renders one `[[component]]` table as its launch-script line.
fn render_component(
    table: &RawTable,
    issues: &mut Vec<SpecIssue>,
) -> Result<String, SpecParseError> {
    let Some((program, pline)) = table.get("program") else {
        return Err(err(table.line, "[[component]] needs a program"));
    };
    let program = expect_str(program, "program", pline)?;
    no_whitespace(&program, "program", pline)?;
    let ranks = match table.get("ranks") {
        Some((v, line)) => expect_pos_int(v, "ranks", line)?,
        None => 1,
    };
    let mut line = format!("aprun -n {ranks} {program}");
    if let Some((args, aline)) = table.get("args") {
        for arg in expect_list(args, "args", aline)? {
            no_whitespace(&arg, "argument", aline)?;
            line.push(' ');
            line.push_str(&arg);
        }
    }
    for key in COMPONENT_OPTION_KEYS {
        let Some((v, vline)) = table.get(key) else {
            continue;
        };
        let value = match (v, *key) {
            (SpecValue::Bool(b), "rendezvous") => usize::from(*b).to_string(),
            (SpecValue::Str(s), "group") => {
                no_whitespace(s, "group", vline)?;
                s.clone()
            }
            (_, "group") => return Err(err(vline, "group must be a string")),
            (_, "rendezvous") => return Err(err(vline, "rendezvous must be a boolean")),
            (v, key) => expect_pos_int(v, key, vline)?.to_string(),
        };
        line.push_str(&format!(" {key}={value}"));
    }
    let mut known: Vec<&str> = vec!["program", "ranks", "args"];
    known.extend_from_slice(COMPONENT_OPTION_KEYS);
    warn_unknown(table, &known, issues);
    line.push_str(" &");
    Ok(line)
}

/// Renders one `[policy.LABEL]` table as its directive spec token
/// (`abort`, `degrade`, `restart:N[:MS]`).
fn render_policy(table: &RawTable, issues: &mut Vec<SpecIssue>) -> Result<String, SpecParseError> {
    let Some((action, aline)) = table.get("action") else {
        return Err(err(table.line, "[policy.*] needs an action"));
    };
    let action = expect_str(action, "action", aline)?;
    warn_unknown(table, &["action", "max_restarts", "backoff_ms"], issues);
    match action.as_str() {
        "abort" | "degrade" => {
            for key in ["max_restarts", "backoff_ms"] {
                if let Some((_, kline)) = table.get(key) {
                    issues.push(SpecIssue::Conflict {
                        detail: format!("{key} is meaningless with action = {action:?}"),
                        line: kline,
                    });
                }
            }
            Ok(action)
        }
        "restart" => {
            let Some((n, nline)) = table.get("max_restarts") else {
                return Err(err(aline, "action = \"restart\" needs max_restarts"));
            };
            let n = expect_pos_int(n, "max_restarts", nline)?;
            match table.get("backoff_ms") {
                Some((ms, mline)) => {
                    let ms = expect_pos_int(ms, "backoff_ms", mline)?;
                    Ok(format!("restart:{n}:{ms}"))
                }
                None => Ok(format!("restart:{n}")),
            }
        }
        other => Err(err(
            aline,
            format!("bad action {other:?} (abort, degrade, or restart)"),
        )),
    }
}

/// Parses the TOML subset into raw tables with per-key line numbers.
fn parse_tables(text: &str) -> Result<Vec<RawTable>, SpecParseError> {
    let mut tables: Vec<RawTable> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let s = strip_comment(raw).trim();
        if s.is_empty() {
            continue;
        }
        if let Some(header) = s.strip_prefix("[[") {
            let Some(header) = header.strip_suffix("]]") else {
                return Err(err(line, "unterminated [[…]] header"));
            };
            tables.push(RawTable {
                path: parse_path(header, line)?,
                line,
                entries: Vec::new(),
            });
            continue;
        }
        if let Some(header) = s.strip_prefix('[') {
            let Some(header) = header.strip_suffix(']') else {
                return Err(err(line, "unterminated […] header"));
            };
            tables.push(RawTable {
                path: parse_path(header, line)?,
                line,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = s.split_once('=') else {
            return Err(err(line, format!("expected key = value, got {s:?}")));
        };
        let key = key.trim();
        if key.is_empty() || key.contains(char::is_whitespace) {
            return Err(err(line, format!("bad key {key:?}")));
        }
        let value = parse_value(value.trim(), line)?;
        let Some(table) = tables.last_mut() else {
            return Err(err(line, "keys must live in a [table]"));
        };
        if table.entries.iter().any(|(k, _, _)| k == key) {
            return Err(err(line, format!("duplicate key {key:?}")));
        }
        table.entries.push((key.to_string(), value, line));
    }
    Ok(tables)
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(raw: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in raw.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &raw[..i],
            _ => {}
        }
        escaped = false;
    }
    raw
}

fn parse_path(header: &str, line: usize) -> Result<Vec<String>, SpecParseError> {
    let path: Vec<String> = header
        .trim()
        .split('.')
        .map(|s| s.trim().to_string())
        .collect();
    if path
        .iter()
        .any(|s| s.is_empty() || s.contains(char::is_whitespace))
    {
        return Err(err(line, format!("bad table header {header:?}")));
    }
    Ok(path)
}

fn parse_value(tok: &str, line: usize) -> Result<SpecValue, SpecParseError> {
    if tok.is_empty() {
        return Err(err(line, "missing value"));
    }
    if let Some(rest) = tok.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err(err(line, "unterminated list (lists are single-line)"));
        };
        let mut items = Vec::new();
        for item in split_list(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_scalar(item, line)? {
                SpecValue::Str(s) => items.push(s),
                SpecValue::Int(n) => items.push(n.to_string()),
                other => {
                    return Err(err(
                        line,
                        format!(
                            "list items must be strings or integers, got {}",
                            other.type_name()
                        ),
                    ))
                }
            }
        }
        return Ok(SpecValue::List(items));
    }
    parse_scalar(tok, line)
}

/// Splits a list body on commas outside strings.
fn split_list(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                current.push(c);
                continue;
            }
            '"' if !escaped => {
                in_str = !in_str;
                current.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
        escaped = false;
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    items
}

fn parse_scalar(tok: &str, line: usize) -> Result<SpecValue, SpecParseError> {
    if let Some(rest) = tok.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(err(line, format!("unterminated string {tok:?}")));
        };
        let mut out = String::new();
        let mut escaped = false;
        for c in body.chars() {
            if escaped {
                match c {
                    '"' | '\\' => out.push(c),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    other => return Err(err(line, format!("unknown escape \\{other}"))),
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Err(err(line, format!("stray quote inside {tok:?}")));
            } else {
                out.push(c);
            }
        }
        if escaped {
            return Err(err(line, format!("dangling escape in {tok:?}")));
        }
        return Ok(SpecValue::Str(out));
    }
    match tok {
        "true" => return Ok(SpecValue::Bool(true)),
        "false" => return Ok(SpecValue::Bool(false)),
        _ => {}
    }
    if let Ok(n) = tok.parse::<i64>() {
        return Ok(SpecValue::Int(n));
    }
    if let Ok(f) = tok.parse::<f64>() {
        return Ok(SpecValue::Float(f));
    }
    Err(err(
        line,
        format!("bad value {tok:?} (string, integer, float, boolean, or [list])"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Program;
    use crate::supervisor::{FailureAction, FaultPolicy};
    use crate::triggers::TriggerOp;

    const SPEC: &str = r#"
# A full-feature spec.
[workflow]
name = "demo"

[transport]
url = "tcp://127.0.0.1:7654"
protocol = "v2"
compression = "lz"
timeout_secs = 30

[trace]
enabled = true
ring_capacity = 512

[[component]]
program = "gromacs"
ranks = 2
args = ["chains=4", "len=4", "steps=3", "interval=2"]

[[component]]
program = "magnitude"
ranks = 2
args = ["gromacs.fp", "coords", "m.fp", "r"]

[[component]]
program = "histogram"
ranks = 1
args = ["m.fp", "r", "8"]

[policy.gromacs]
action = "restart"
max_restarts = 2
backoff_ms = 50

[process.sim]
members = ["gromacs"]

[process.viz]
members = ["magnitude", "histogram"]

[[trigger]]
when = "histogram.max > 100"
then = "snapshot_stream m.fp /tmp/spec_snap.txt"
"#;

    #[test]
    fn full_spec_compiles_with_sbw_line_numbers() {
        let spec = WorkflowSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name.as_deref(), Some("demo"));
        assert!(spec.issues.is_empty(), "{:?}", spec.issues);
        assert_eq!(spec.entries.len(), 3);
        // Entries carry the line of their [[component]] header.
        assert_eq!(spec.entries[0].line, 16);
        assert_eq!(spec.entries[0].nranks, 2);
        assert!(matches!(
            spec.entries[0].program,
            Program::Simulation { .. }
        ));
        assert!(matches!(
            spec.entries[2].program,
            Program::Histogram { num_bins: 8, .. }
        ));
        assert_eq!(
            spec.directives.transport.as_deref(),
            Some("tcp://127.0.0.1:7654")
        );
        assert_eq!(spec.directives.policies.len(), 1);
        assert_eq!(spec.directives.policies[0].label, "gromacs");
        assert_eq!(
            spec.directives.policies[0].policy,
            FaultPolicy::restart(2).with_backoff(Duration::from_millis(50))
        );
        assert_eq!(spec.directives.processes.len(), 2);
        assert_eq!(
            spec.directives.processes[1].members,
            ["magnitude", "histogram"]
        );
        assert_eq!(spec.protocol, Some(WireProtocol::V2));
        assert_eq!(spec.compression, Some(Compression::Lz));
        assert_eq!(spec.hub_timeout, Some(Duration::from_secs(30)));
        assert!(spec.trace.is_some());
        assert_eq!(spec.triggers.len(), 1);
        assert_eq!(spec.triggers[0].component, "histogram");
        assert_eq!(spec.triggers[0].op, TriggerOp::Gt);
        // The synthesized script preserves spec line numbers.
        let lines: Vec<&str> = spec.script.lines().collect();
        assert_eq!(
            lines[15],
            "aprun -n 2 gromacs chains=4 len=4 steps=3 interval=2 &"
        );
        assert_eq!(lines[6], "#@ transport tcp://127.0.0.1:7654");
    }

    #[test]
    fn component_options_round_trip_through_the_launch_grammar() {
        let spec = WorkflowSpec::parse(
            r#"
[[component]]
program = "temporal-mean"
args = ["a.fp", "x", "3", "b.fp", "y"]
group = "smooth"
queue = 4
rendezvous = true
groups = 2
stride = 3
"#,
        )
        .unwrap();
        let e = &spec.entries[0];
        assert_eq!(e.nranks, 1, "ranks defaults to 1");
        assert_eq!(e.options["group"], "smooth");
        assert_eq!(e.options["queue"], "4");
        assert_eq!(e.options["rendezvous"], "1");
        assert_eq!(e.options["groups"], "2");
        assert_eq!(e.options["stride"], "3");
    }

    #[test]
    fn unknown_keys_warn_but_compile() {
        let spec = WorkflowSpec::parse(
            "[workflow]\nname = \"x\"\ncolor = \"red\"\n\n[[component]]\nprogram = \"histogram\"\nargs = [\"a.fp\", \"x\", \"4\"]\nfrobnicate = 9\n",
        )
        .unwrap();
        assert_eq!(spec.issues.len(), 2, "{:?}", spec.issues);
        assert!(matches!(
            &spec.issues[0],
            SpecIssue::UnknownKey { key, line: 3, .. } if key == "color"
        ));
        assert!(!spec.issues[0].is_deny());
        assert_eq!(spec.entries.len(), 1);
    }

    #[test]
    fn unknown_table_warns() {
        let spec = WorkflowSpec::parse("[teleport]\nurl = \"tcp://h:1\"\n").unwrap();
        assert!(matches!(
            &spec.issues[0],
            SpecIssue::UnknownKey { key, .. } if key == "[teleport]"
        ));
    }

    #[test]
    fn undeclared_trigger_refs_are_deny() {
        let spec = WorkflowSpec::parse(
            "[[component]]\nprogram = \"histogram\"\nargs = [\"a.fp\", \"x\", \"4\"]\n\n[[trigger]]\nwhen = \"ghost.max > 1\"\nthen = \"set_output_stride phantom 2\"\n",
        )
        .unwrap();
        let refs: Vec<&str> = spec
            .issues
            .iter()
            .filter_map(|i| match i {
                SpecIssue::UndeclaredTriggerRef { reference, .. } => Some(reference.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(refs, ["ghost", "phantom"]);
        assert!(spec.issues.iter().all(|i| i.is_deny()));
        assert!(Workflow::from_spec_text(
            "[[component]]\nprogram = \"histogram\"\nargs = [\"a.fp\", \"x\", \"4\"]\n\n[[trigger]]\nwhen = \"ghost.max > 1\"\nthen = \"snapshot_stream a.fp /tmp/x\"\n"
        )
        .is_err());
    }

    #[test]
    fn conflicts_are_deny() {
        // Duplicate table.
        let spec = WorkflowSpec::parse(
            "[transport]\nurl = \"tcp://h:1\"\n\n[transport]\nurl = \"tcp://h:2\"\n",
        )
        .unwrap();
        assert!(matches!(
            spec.issues[0],
            SpecIssue::Conflict { line: 4, .. }
        ));
        // Component in two process groups.
        let spec = WorkflowSpec::parse(
            "[[component]]\nprogram = \"histogram\"\nargs = [\"a.fp\", \"x\", \"4\"]\n\n[process.a]\nmembers = [\"histogram\"]\n\n[process.b]\nmembers = [\"histogram\"]\n",
        )
        .unwrap();
        assert!(
            spec.issues
                .iter()
                .any(|i| matches!(i, SpecIssue::Conflict { .. })),
            "{:?}",
            spec.issues
        );
        // Policy knobs the action ignores.
        let spec =
            WorkflowSpec::parse("[policy.h]\naction = \"degrade\"\nmax_restarts = 3\n").unwrap();
        assert!(matches!(
            &spec.issues[0],
            SpecIssue::Conflict { line: 3, .. }
        ));
    }

    #[test]
    fn grammar_errors_carry_spec_lines() {
        // Bad positional args surface through the launch grammar at the
        // [[component]] header's line.
        let e = WorkflowSpec::parse(
            "\n\n[[component]]\nprogram = \"histogram\"\nargs = [\"a.fp\", \"x\", \"lots\"]\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.detail.contains("num-bins"), "{e}");
        // Spec-syntax errors carry their own line.
        for (text, line) in [
            ("[[component]\nprogram = \"x\"", 1),
            ("key = 1", 1),
            ("[t]\nkey = ", 2),
            ("[t]\nkey = nope", 2),
            ("[t]\nkey = \"unterminated", 2),
            ("[t]\na = 1\na = 2", 3),
            ("[policy.h]\naction = \"retry\"", 2),
            ("[policy.h]\naction = \"restart\"", 2),
            ("[process.p]\nmembers = []", 2),
            ("[[trigger]]\nwhen = \"a.b > 1\"", 1),
            ("[transport]\nprotocol = \"v3\"", 2),
            // protocol = "shm" pins the declared url to the shm:// scheme.
            ("[transport]\nurl = \"tcp://h:1\"\nprotocol = \"shm\"", 3),
            ("[transport]\nprotocol = \"shm\"", 2),
        ] {
            let e = WorkflowSpec::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?} -> {e}");
        }
    }

    #[test]
    fn transport_protocol_shm_accepts_shm_url() {
        let spec =
            WorkflowSpec::parse("[transport]\nurl = \"shm:///tmp/sb-rings\"\nprotocol = \"shm\"\n")
                .unwrap();
        assert_eq!(
            spec.directives.transport.as_deref(),
            Some("shm:///tmp/sb-rings")
        );
        // The fabric keyword leaves the wire protocol at its default.
        assert_eq!(spec.protocol, None);
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let spec =
            WorkflowSpec::parse("[workflow] # trailing comment\nname = \"has # hash\" # another\n")
                .unwrap();
        assert_eq!(spec.name.as_deref(), Some("has # hash"));
    }

    #[test]
    fn from_spec_text_builds_a_runnable_workflow() {
        let wf = Workflow::from_spec_text(
            r#"
[[component]]
program = "gromacs"
ranks = 1
args = ["chains=2", "len=2", "steps=2", "interval=1"]

[[component]]
program = "magnitude"
args = ["gromacs.fp", "coords", "m.fp", "r"]

[[component]]
program = "histogram"
args = ["m.fp", "r", "4"]

[policy.gromacs]
action = "degrade"
"#,
        )
        .unwrap();
        assert_eq!(wf.labels(), vec!["gromacs", "magnitude", "histogram"]);
        let report = wf
            .run_with(crate::supervisor::RunOptions::default())
            .unwrap();
        assert_eq!(report.component("histogram").unwrap().stats.steps, 2);
    }

    #[test]
    fn strict_options_reject_warn_level_issues() {
        let text = "[[component]]\nprogram = \"histogram\"\nargs = [\"a.fp\", \"x\", \"4\"]\nfrobnicate = 1\n";
        assert!(Workflow::from_spec_text(text).is_ok());
        let e = match Workflow::from_spec_text_with(text, SpecOptions::new().with_strict(true)) {
            Err(e) => e,
            Ok(_) => panic!("strict load should reject warn-level issues"),
        };
        assert!(e.to_string().contains("frobnicate"), "{e}");
    }

    #[test]
    fn policy_action_conflict_checks() {
        let spec =
            WorkflowSpec::parse("[policy.h]\naction = \"abort\"\nbackoff_ms = 10\n").unwrap();
        assert!(matches!(&spec.issues[0], SpecIssue::Conflict { .. }));
        assert_eq!(
            WorkflowSpec::parse("[policy.h]\naction = \"restart\"\nmax_restarts = 1\n")
                .unwrap()
                .directives
                .policies[0]
                .policy
                .action,
            FailureAction::Restart
        );
    }
}
