//! The Threshold component: filter data points by a predicate.
//!
//! Unlike Select (which keeps whole labelled rows), Threshold keeps the
//! *values* that satisfy a run-time predicate, emitting two aligned 1-d
//! arrays per step: `values` (the survivors) and `indices` (their linear
//! positions in the input's global row-major order). The output length
//! varies per step and is only known after a cross-rank exclusive scan —
//! a shape-dynamic analytic in the SmartBlock mould.

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::default_partition;
use sb_data::{Buffer, Chunk, Region, Shape, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{
    fault_gate, stash_partial_stats, stream_err, Component, StepFault, StreamArray,
};
use crate::error::{ComponentError, ComponentResult, StepResult};
use crate::metrics::ComponentStats;

/// The comparison a value must satisfy to survive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// `value > threshold`
    GreaterThan(f64),
    /// `value < threshold`
    LessThan(f64),
    /// `|value| > threshold`
    AbsGreaterThan(f64),
}

impl Predicate {
    /// Parses a launch-script predicate: `gt`, `lt` or `abs-gt`.
    pub fn parse(mode: &str, threshold: f64) -> Option<Predicate> {
        Some(match mode {
            "gt" => Predicate::GreaterThan(threshold),
            "lt" => Predicate::LessThan(threshold),
            "abs-gt" => Predicate::AbsGreaterThan(threshold),
            _ => return None,
        })
    }

    /// Whether `v` survives the filter.
    #[inline]
    pub fn keep(&self, v: f64) -> bool {
        match *self {
            Predicate::GreaterThan(t) => v > t,
            Predicate::LessThan(t) => v < t,
            Predicate::AbsGreaterThan(t) => v.abs() > t,
        }
    }
}

/// Filters `values`, returning the survivors and their indices offset by
/// `base` (the caller's global offset). This is the pure local kernel.
pub fn threshold_filter(values: &[f64], pred: Predicate, base: u64) -> (Vec<f64>, Vec<u64>) {
    let mut kept = Vec::new();
    let mut indices = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        if pred.keep(v) {
            kept.push(v);
            indices.push(base + i as u64);
        }
    }
    (kept, indices)
}

/// The Threshold workflow component.
#[derive(Debug, Clone)]
pub struct Threshold {
    /// Input stream/array names (any rank; filtered in row-major order).
    pub input: StreamArray,
    /// The predicate values must satisfy.
    pub predicate: Predicate,
    /// Output stream name; arrays are published as `<array>` (values) and
    /// `<array>_indices`.
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
}

impl Threshold {
    /// Builds a Threshold with the given predicate.
    pub fn new<I: Into<StreamArray>, O: Into<StreamArray>>(
        input: I,
        predicate: Predicate,
        output: O,
    ) -> Threshold {
        Threshold {
            input: input.into(),
            predicate,
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Threshold {
        self.reader_group = group.into();
        self
    }
}

impl Component for Threshold {
    fn label(&self) -> String {
        "threshold".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{ArraySpec, DimSpec, PartitionRule, ReadSpec, Signature, StreamSpec};
        use std::collections::BTreeMap;
        let in_array = self.input.array.clone();
        let out_array = self.output.array.clone();
        Signature::new(
            vec![ReadSpec::new(
                &self.input.stream,
                &in_array,
                PartitionRule::Along(0),
            )],
            move |ins| {
                if let Some(stream) = ins.first() {
                    stream.array(&in_array)?;
                }
                // How many values survive the predicate is inherently
                // data-dependent: both outputs are 1-d with dynamic extent.
                let mut map = BTreeMap::new();
                map.insert(
                    out_array.clone(),
                    ArraySpec::new(vec![DimSpec::dynamic("kept")], sb_data::DType::F64),
                );
                map.insert(
                    format!("{out_array}_indices"),
                    ArraySpec::new(vec![DimSpec::dynamic("kept")], sb_data::DType::U64),
                );
                Ok(vec![StreamSpec::Known(map)])
            },
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        // Threshold emits two variables per step (values + indices), so it
        // runs its own step loop instead of the single-chunk transform
        // helper.
        let mut reader = hub.open_reader_grouped(
            &self.input.stream,
            &self.reader_group,
            comm.rank(),
            comm.size(),
        );
        let mut writer = hub.open_writer(
            &self.output.stream,
            comm.rank(),
            comm.size(),
            self.writer_options,
        );
        let mut stats = ComponentStats::default();
        let label = "threshold";
        let rank = comm.rank();
        loop {
            let step = reader.current_step();
            let gate = match fault_gate(hub, label, rank, step) {
                Ok(StepFault::Stall) => {
                    writer.abandon();
                    return Ok(stats);
                }
                Ok(g) => g,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(e);
                }
            };
            let step_start = Instant::now();
            match reader.begin_step() {
                Ok(sb_stream::StepStatus::EndOfStream) => break,
                Ok(sb_stream::StepStatus::Ready(_)) => {}
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(stream_err(label, step, e));
                }
            }
            let wait = step_start.elapsed();
            let read = (|| -> StepResult<_> {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| sb_data::DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                let region = default_partition(&meta.shape, comm.size(), comm.rank());
                let var = reader.get(&self.input.array, &region)?;
                Ok((meta, region, var))
            })();
            let (meta, region, var) = match read {
                Ok(v) => v,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(ComponentError::from_step(label, step, e));
                }
            };
            reader.end_step();
            let step_in = var.byte_len() as u64;

            let kernel_start = Instant::now();
            // This rank's rows start at a known global linear offset
            // because the default partition blocks the slowest dimension;
            // assert that contract so a future partitioning change fails
            // loudly instead of mis-indexing.
            debug_assert!(
                region.offset().iter().skip(1).all(|&o| o == 0),
                "threshold: partition must be a leading-dimension slab"
            );
            let row_len: usize = meta.shape.sizes().iter().skip(1).product();
            let base = (region.offset().first().copied().unwrap_or(0) * row_len.max(1)) as u64;
            let (kept, indices) = threshold_filter(&var.data.into_f64_vec(), self.predicate, base);

            // Agree on global sizes: my offset = exscan of counts, total =
            // allreduce. (The two communication rounds of a shape-dynamic
            // component.)
            let local_n = kept.len() as u64;
            let my_off = comm.exscan(local_n, |a, b| a + b).unwrap_or(0);
            let total = comm.allreduce(local_n, |a, b| a + b);
            let compute = kernel_start.elapsed();

            let values_meta = VariableMeta::new(
                self.output.array.clone(),
                Shape::linear("kept", total as usize),
                sb_data::DType::F64,
            );
            let indices_meta = VariableMeta::new(
                format!("{}_indices", self.output.array),
                Shape::linear("kept", total as usize),
                sb_data::DType::U64,
            );
            let out_region = Region::new(vec![my_off as usize], vec![local_n as usize]);
            if let Err(e) = writer.begin_step() {
                writer.abandon();
                stash_partial_stats(stats);
                return Err(stream_err(label, step, e));
            }
            if gate != StepFault::DropChunk {
                let values_chunk = Chunk::new(values_meta, out_region.clone(), Buffer::F64(kept))
                    .expect("threshold values chunk is consistent");
                let indices_chunk = Chunk::new(indices_meta, out_region, Buffer::U64(indices))
                    .expect("threshold indices chunk is consistent");
                stats.bytes_out += (values_chunk.byte_len() + indices_chunk.byte_len()) as u64;
                writer.put(values_chunk);
                writer.put(indices_chunk);
            }
            if let Err(e) = writer.end_step() {
                writer.abandon();
                stash_partial_stats(stats);
                return Err(stream_err(label, step, e));
            }
            stats.record_step(step_start.elapsed(), wait, compute, step_in);
        }
        writer.close();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_parsing_and_semantics() {
        assert_eq!(
            Predicate::parse("gt", 1.0),
            Some(Predicate::GreaterThan(1.0))
        );
        assert_eq!(
            Predicate::parse("lt", -2.0),
            Some(Predicate::LessThan(-2.0))
        );
        assert_eq!(
            Predicate::parse("abs-gt", 0.5),
            Some(Predicate::AbsGreaterThan(0.5))
        );
        assert_eq!(Predicate::parse("eq", 0.0), None);

        assert!(Predicate::GreaterThan(1.0).keep(1.5));
        assert!(!Predicate::GreaterThan(1.0).keep(1.0));
        assert!(Predicate::LessThan(0.0).keep(-0.1));
        assert!(Predicate::AbsGreaterThan(2.0).keep(-3.0));
        assert!(!Predicate::AbsGreaterThan(2.0).keep(1.5));
    }

    #[test]
    fn filter_keeps_values_and_indices_aligned() {
        let values = [0.5, -3.0, 2.0, 0.0, 4.0];
        let (kept, idx) = threshold_filter(&values, Predicate::AbsGreaterThan(1.0), 100);
        assert_eq!(kept, vec![-3.0, 2.0, 4.0]);
        assert_eq!(idx, vec![101, 102, 104]);
    }

    #[test]
    fn filter_can_keep_nothing_or_everything() {
        let values = [1.0, 2.0];
        let (kept, idx) = threshold_filter(&values, Predicate::GreaterThan(5.0), 0);
        assert!(kept.is_empty());
        assert!(idx.is_empty());
        let (kept, _) = threshold_filter(&values, Predicate::GreaterThan(0.0), 0);
        assert_eq!(kept.len(), 2);
    }
}
