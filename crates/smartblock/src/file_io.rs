//! File endpoint components: storage-decoupled workflows (paper §VI).
//!
//! "Introducing new components that write and read from storage as part of
//! a workflow can break that dependency" — the dependency being that all
//! components of an in situ workflow must run simultaneously. [`FileWrite`]
//! drains a stream into the versioned `sb-data` container format;
//! [`FileRead`] replays a container file as a stream. A workflow can
//! therefore be split into phases that run at different times.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sb_comm::Communicator;
use sb_data::container::{ContainerReader, ContainerWriter};
use sb_data::decompose::default_partition;
use sb_data::{Chunk, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_sink, Component};
use crate::metrics::ComponentStats;

/// Drains an input stream to a container file (an endpoint component).
///
/// Rank 0 gathers each step's full variables through bounding-box reads and
/// appends them to the file; other ranks pace the stream. The output of a
/// workflow stage is thus a single self-contained artifact.
#[derive(Debug, Clone)]
pub struct FileWrite {
    /// Input stream name (all arrays are persisted).
    pub input: String,
    /// Container file path.
    pub path: PathBuf,
}

impl FileWrite {
    /// Builds a FileWrite draining `input` into `path`.
    pub fn new(input: impl Into<String>, path: impl Into<PathBuf>) -> FileWrite {
        FileWrite {
            input: input.into(),
            path: path.into(),
        }
    }
}

impl Component for FileWrite {
    fn label(&self) -> String {
        "file-write".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.clone()]
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentStats {
        let mut writer = if comm.rank() == 0 {
            let file = std::fs::File::create(&self.path)
                .unwrap_or_else(|e| panic!("file-write: cannot create {:?}: {e}", self.path));
            Some(
                ContainerWriter::new(std::io::BufWriter::new(file))
                    .unwrap_or_else(|e| panic!("file-write: {e}")),
            )
        } else {
            None
        };
        let stats = run_sink(
            "file-write",
            comm,
            hub,
            &self.input,
            "default",
            |reader, _comm, step| {
                let mut bytes_in = 0u64;
                let start = Instant::now();
                if let Some(w) = writer.as_mut() {
                    let mut vars = Vec::new();
                    for name in reader.variables() {
                        let var = reader.get_whole(&name)?;
                        bytes_in += var.byte_len() as u64;
                        vars.push(var);
                    }
                    w.write_step(step, &vars)?;
                }
                Ok((bytes_in, start.elapsed()))
            },
        );
        if let Some(w) = writer {
            let mut sink = w.finish().unwrap_or_else(|e| panic!("file-write: {e}"));
            use std::io::Write;
            sink.flush()
                .unwrap_or_else(|e| panic!("file-write: flushing {:?}: {e}", self.path));
        }
        stats
    }
}

/// Replays a container file as a stream (a source component).
///
/// Every rank opens the file independently (no communication) and
/// contributes its default partition of each variable, so downstream
/// components see exactly the stream shape an in situ producer would have
/// given them — self-description, labels and attributes included.
#[derive(Debug, Clone)]
pub struct FileRead {
    /// Container file path.
    pub path: PathBuf,
    /// Output stream name.
    pub output: String,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
}

impl FileRead {
    /// Builds a FileRead replaying `path` onto `output`.
    pub fn new(path: impl Into<PathBuf>, output: impl Into<String>) -> FileRead {
        FileRead {
            path: path.into(),
            output: output.into(),
            writer_options: WriterOptions::default(),
        }
    }
}

impl Component for FileRead {
    fn label(&self) -> String {
        "file-read".into()
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.clone()]
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentStats {
        let file = std::fs::File::open(&self.path)
            .unwrap_or_else(|e| panic!("file-read: cannot open {:?}: {e}", self.path));
        let mut container = ContainerReader::new(std::io::BufReader::new(file))
            .unwrap_or_else(|e| panic!("file-read: {e}"));
        let mut writer =
            hub.open_writer(&self.output, comm.rank(), comm.size(), self.writer_options);
        let mut stats = ComponentStats::default();
        loop {
            let start = Instant::now();
            let vars = match container
                .next_step()
                .unwrap_or_else(|e| panic!("file-read: step {}: {e}", stats.steps))
            {
                Some((_, vars)) => vars,
                None => break,
            };
            writer.begin_step();
            for var in vars {
                // Rank-0 (scalar) variables cannot be partitioned; only
                // rank 0 replays them.
                if var.shape.ndims() == 0 && comm.rank() != 0 {
                    continue;
                }
                let meta = VariableMeta::describing(&var);
                let region = default_partition(&var.shape, comm.size(), comm.rank());
                let local = var
                    .extract(&region)
                    .unwrap_or_else(|e| panic!("file-read: {e}"));
                let chunk = Chunk::new(meta, region, local.data)
                    .unwrap_or_else(|e| panic!("file-read: {e}"));
                stats.bytes_out += chunk.byte_len() as u64;
                writer.put(chunk);
            }
            writer.end_step();
            stats.record_step(start.elapsed(), Duration::ZERO, Duration::ZERO);
        }
        writer.close();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let w = FileWrite::new("s.fp", "/tmp/x.sbc");
        assert_eq!(w.label(), "file-write");
        assert_eq!(w.input, "s.fp");
        let r = FileRead::new("/tmp/x.sbc", "replay.fp");
        assert_eq!(r.label(), "file-read");
        assert_eq!(r.output, "replay.fp");
    }
}
