//! File endpoint components: storage-decoupled workflows (paper §VI).
//!
//! "Introducing new components that write and read from storage as part of
//! a workflow can break that dependency" — the dependency being that all
//! components of an in situ workflow must run simultaneously. [`FileWrite`]
//! drains a stream into the versioned `sb-data` container format;
//! [`FileRead`] replays a container file as a stream. A workflow can
//! therefore be split into phases that run at different times.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sb_comm::Communicator;
use sb_data::container::{ContainerReader, ContainerWriter};
use sb_data::decompose::default_partition;
use sb_data::{Chunk, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{fault_gate, run_sink, stash_partial_stats, Component, StepFault};
use crate::error::{ComponentError, ComponentResult, StepResult};
use crate::metrics::ComponentStats;

/// Drains an input stream to a container file (an endpoint component).
///
/// Rank 0 gathers each step's full variables through bounding-box reads and
/// appends them to the file; other ranks pace the stream. The output of a
/// workflow stage is thus a single self-contained artifact.
#[derive(Debug, Clone)]
pub struct FileWrite {
    /// Input stream name (all arrays are persisted).
    pub input: String,
    /// Container file path.
    pub path: PathBuf,
}

impl FileWrite {
    /// Builds a FileWrite draining `input` into `path`.
    pub fn new(input: impl Into<String>, path: impl Into<PathBuf>) -> FileWrite {
        FileWrite {
            input: input.into(),
            path: path.into(),
        }
    }
}

impl Component for FileWrite {
    fn label(&self) -> String {
        "file-write".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.clone()]
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        let label = "file-write";
        let mut writer = if comm.rank() == 0 {
            let open = (|| -> StepResult<_> {
                let file =
                    std::fs::File::create(&self.path).map_err(|e| sb_data::DataError::Io {
                        detail: format!("cannot create {:?}: {e}", self.path),
                    })?;
                Ok(ContainerWriter::new(std::io::BufWriter::new(file))?)
            })();
            match open {
                Ok(w) => Some(w),
                Err(e) => return Err(ComponentError::from_step(label, 0, e)),
            }
        } else {
            None
        };
        let stats = run_sink(
            label,
            comm,
            hub,
            &self.input,
            "default",
            |reader, _comm, step| {
                let mut bytes_in = 0u64;
                let start = Instant::now();
                if let Some(w) = writer.as_mut() {
                    let mut vars = Vec::new();
                    for name in reader.variables() {
                        let var = reader.get_whole(&name)?;
                        bytes_in += var.byte_len() as u64;
                        vars.push(var);
                    }
                    w.write_step(step, &vars)?;
                }
                Ok((bytes_in, start.elapsed()))
            },
        )?;
        if let Some(w) = writer {
            let flush = (|| -> StepResult<()> {
                let mut sink = w.finish()?;
                use std::io::Write;
                sink.flush().map_err(|e| sb_data::DataError::Io {
                    detail: format!("flushing {:?}: {e}", self.path),
                })?;
                Ok(())
            })();
            if let Err(e) = flush {
                return Err(ComponentError::from_step(label, stats.steps, e));
            }
        }
        Ok(stats)
    }
}

/// Replays a container file as a stream (a source component).
///
/// Every rank opens the file independently (no communication) and
/// contributes its default partition of each variable, so downstream
/// components see exactly the stream shape an in situ producer would have
/// given them — self-description, labels and attributes included.
#[derive(Debug, Clone)]
pub struct FileRead {
    /// Container file path.
    pub path: PathBuf,
    /// Output stream name.
    pub output: String,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
}

impl FileRead {
    /// Builds a FileRead replaying `path` onto `output`.
    pub fn new(path: impl Into<PathBuf>, output: impl Into<String>) -> FileRead {
        FileRead {
            path: path.into(),
            output: output.into(),
            writer_options: WriterOptions::default(),
        }
    }
}

impl Component for FileRead {
    fn label(&self) -> String {
        "file-read".into()
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.clone()]
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        let label = "file-read";
        let rank = comm.rank();
        let open = (|| -> StepResult<_> {
            let file = std::fs::File::open(&self.path).map_err(|e| sb_data::DataError::Io {
                detail: format!("cannot open {:?}: {e}", self.path),
            })?;
            Ok(ContainerReader::new(std::io::BufReader::new(file))?)
        })();
        let mut container = match open {
            Ok(c) => c,
            Err(e) => return Err(ComponentError::from_step(label, 0, e)),
        };
        let mut writer =
            hub.open_writer(&self.output, comm.rank(), comm.size(), self.writer_options);
        let mut stats = ComponentStats::default();
        loop {
            let step = writer.current_step();
            let gate = match fault_gate(hub, label, rank, step) {
                Ok(StepFault::Stall) => {
                    writer.abandon();
                    return Ok(stats);
                }
                Ok(g) => g,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(e);
                }
            };
            let start = Instant::now();
            let next = match container.next_step() {
                Ok(n) => n,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(ComponentError::from_step(label, step, e.into()));
                }
            };
            let vars = match next {
                Some((_, vars)) => vars,
                None => break,
            };
            let io = (|| -> StepResult<()> {
                writer.begin_step()?;
                if gate != StepFault::DropChunk {
                    for var in vars {
                        // Rank-0 (scalar) variables cannot be partitioned;
                        // only rank 0 replays them.
                        if var.shape.ndims() == 0 && comm.rank() != 0 {
                            continue;
                        }
                        let meta = VariableMeta::describing(&var);
                        let region = default_partition(&var.shape, comm.size(), comm.rank());
                        let local = var.extract(&region)?;
                        let chunk = Chunk::new(meta, region, local.data)?;
                        stats.bytes_out += chunk.byte_len() as u64;
                        writer.put(chunk);
                    }
                }
                writer.end_step()?;
                Ok(())
            })();
            if let Err(e) = io {
                writer.abandon();
                stash_partial_stats(stats);
                return Err(ComponentError::from_step(label, step, e));
            }
            stats.record_step(start.elapsed(), Duration::ZERO, Duration::ZERO, 0);
        }
        writer.close();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let w = FileWrite::new("s.fp", "/tmp/x.sbc");
        assert_eq!(w.label(), "file-write");
        assert_eq!(w.input, "s.fp");
        let r = FileRead::new("/tmp/x.sbc", "replay.fp");
        assert_eq!(r.label(), "file-read");
        assert_eq!(r.output, "replay.fp");
    }
}
