//! The workflow error taxonomy: per-step, per-component, and per-workflow
//! failures.
//!
//! Three layers mirror the runtime's structure. A *step* fails with a
//! [`StepError`] (a data-model or stream-transport problem inside one step
//! of a run loop); a *component* fails with a [`ComponentError`] (the step
//! error annotated with label and step, an unwound panic, or an injected
//! chaos fault); a *workflow* fails with a [`WorkflowError`] (static
//! validation, a launch problem, or a component failure that the
//! supervisor's [`crate::FaultPolicy`] could not absorb).

use std::fmt;
use std::time::Duration;

use sb_comm::CommError;
use sb_data::DataError;
use sb_stream::StreamError;

/// What went wrong inside one step of a component run loop.
///
/// The `From` impls let per-step closures use `?` on both data-model
/// operations (`reader.get(..)?`) and stream operations
/// (`writer.begin_step()?`); the run loop annotates the result with the
/// component label and step id.
#[derive(Debug, Clone, PartialEq)]
pub enum StepError {
    /// A self-describing-data operation failed.
    Data(DataError),
    /// A stream operation timed out or found its peer gone.
    Stream(StreamError),
}

impl From<DataError> for StepError {
    fn from(e: DataError) -> StepError {
        StepError::Data(e)
    }
}

impl From<StreamError> for StepError {
    fn from(e: StreamError) -> StepError {
        StepError::Stream(e)
    }
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::Data(e) => write!(f, "{e}"),
            StepError::Stream(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StepError {}

/// Result alias for per-step closures in the component run loops.
pub type StepResult<T> = Result<T, StepError>;

/// Why one rank of a component failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentError {
    /// A stream operation failed (timeout or peer gone).
    Stream {
        /// Component label.
        label: String,
        /// Step the component was working on.
        step: u64,
        /// The underlying transport error.
        source: StreamError,
    },
    /// A data-model operation failed (malformed or missing input).
    Data {
        /// Component label.
        label: String,
        /// Step the component was working on.
        step: u64,
        /// The underlying data error.
        source: DataError,
    },
    /// A fault-injection directive killed the component (chaos testing).
    Injected {
        /// Component label.
        label: String,
        /// Rank the directive fired on.
        rank: usize,
        /// Step the directive fired at.
        step: u64,
    },
    /// The component panicked; the unwind was caught at the launch layer.
    Panicked {
        /// Component label.
        label: String,
        /// The panicking rank.
        rank: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// The component could not be launched at all.
    Launch {
        /// Component label.
        label: String,
        /// The underlying launch error.
        source: CommError,
    },
}

impl ComponentError {
    /// Annotates a [`StepError`] with its component label and step.
    pub fn from_step(label: &str, step: u64, e: StepError) -> ComponentError {
        match e {
            StepError::Stream(source) => ComponentError::Stream {
                label: label.to_string(),
                step,
                source,
            },
            StepError::Data(source) => ComponentError::Data {
                label: label.to_string(),
                step,
                source,
            },
        }
    }

    /// The label of the failing component.
    pub fn label(&self) -> &str {
        match self {
            ComponentError::Stream { label, .. }
            | ComponentError::Data { label, .. }
            | ComponentError::Injected { label, .. }
            | ComponentError::Panicked { label, .. }
            | ComponentError::Launch { label, .. } => label,
        }
    }

    /// The failing rank, when one rank is attributable.
    pub fn rank(&self) -> Option<usize> {
        match self {
            ComponentError::Injected { rank, .. } | ComponentError::Panicked { rank, .. } => {
                Some(*rank)
            }
            _ => None,
        }
    }

    /// True for errors that are *consequences* of some other failure — a
    /// rank blocked on a peer that died — rather than the root cause. The
    /// supervisor prefers reporting a non-secondary error when both exist.
    pub fn is_secondary(&self) -> bool {
        matches!(self, ComponentError::Stream { .. })
    }
}

impl fmt::Display for ComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentError::Stream {
                label,
                step,
                source,
            } => write!(f, "component {label:?}: step {step}: {source}"),
            ComponentError::Data {
                label,
                step,
                source,
            } => write!(f, "component {label:?}: step {step}: {source}"),
            ComponentError::Injected { label, rank, step } => write!(
                f,
                "component {label:?}: rank {rank} killed by injected fault at step {step}"
            ),
            ComponentError::Panicked {
                label,
                rank,
                message,
            } => write!(f, "component {label:?}: rank {rank} panicked: {message}"),
            ComponentError::Launch { label, source } => {
                write!(f, "component {label:?}: launch failed: {source}")
            }
        }
    }
}

impl std::error::Error for ComponentError {}

/// Result alias for [`crate::Component::run`].
pub type ComponentResult = Result<crate::ComponentStats, ComponentError>;

/// Why a workflow run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkflowError {
    /// Static validation found fatal issues; nothing was launched.
    Invalid {
        /// Rendered [`crate::AnalysisIssue`]s of [`crate::analysis::Severity::Error`].
        issues: Vec<String>,
    },
    /// A component failed and its [`crate::FaultPolicy`] could not absorb
    /// the failure (abort policy, or restarts exhausted).
    ComponentFailed {
        /// The failing component's label.
        label: String,
        /// Times the component was attempted (1 = no restarts).
        attempts: u32,
        /// The error of the final attempt.
        error: ComponentError,
    },
    /// A component could not be launched.
    Launch(CommError),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::Invalid { issues } => {
                write!(f, "workflow failed static validation: ")?;
                for (i, issue) in issues.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{issue}")?;
                }
                Ok(())
            }
            WorkflowError::ComponentFailed {
                label,
                attempts,
                error,
            } => write!(
                f,
                "component {label:?} failed after {attempts} attempt(s): {error}"
            ),
            WorkflowError::Launch(e) => write!(f, "workflow launch failed: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Rough wall-clock cost of retrying: linear backoff, attempt `n` (1-based)
/// sleeps `n * backoff`. Kept here so the supervisor and its tests agree.
pub(crate) fn backoff_delay(backoff: Duration, attempt: u32) -> Duration {
    backoff.saturating_mul(attempt)
}
