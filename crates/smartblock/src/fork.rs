//! The Fork component: one input stream replicated onto several output
//! streams — the paper's §VI future-work enabler for DAG-shaped workflows
//! ("leverage ADIOS' ability to have several 'write groups' so as to allow
//! for the development of a Fork component").
//!
//! Fork copies *every* variable of each step to every output stream; each
//! rank forwards its partition, so downstream components still enjoy full
//! MxN re-partitioning freedom.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sb_comm::Communicator;
use sb_data::decompose::default_partition;
use sb_data::Chunk;
use sb_stream::{StepStatus, StreamHub, WriterOptions};

use crate::component::{fault_gate, stash_partial_stats, stream_err, Component, StepFault};
use crate::error::{ComponentError, ComponentResult, StepResult};
use crate::metrics::ComponentStats;

/// The Fork workflow component.
#[derive(Debug, Clone)]
pub struct Fork {
    /// Input stream name (all arrays are forwarded).
    pub input: String,
    /// Output stream names; each receives a full copy of every step.
    pub outputs: Vec<String>,
    /// Buffering policy for the output streams.
    pub writer_options: WriterOptions,
}

impl Fork {
    /// Builds a Fork from `input` onto `outputs`.
    pub fn new<I, O>(input: I, outputs: O) -> Fork
    where
        I: Into<String>,
        O: IntoIterator,
        O::Item: Into<String>,
    {
        let outputs: Vec<String> = outputs.into_iter().map(Into::into).collect();
        assert!(!outputs.is_empty(), "fork needs at least one output stream");
        Fork {
            input: input.into(),
            outputs,
            writer_options: WriterOptions::default(),
        }
    }

    /// Overrides the output buffering policy.
    pub fn with_writer_options(mut self, options: WriterOptions) -> Fork {
        self.writer_options = options;
        self
    }
}

impl Component for Fork {
    fn label(&self) -> String {
        "fork".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.clone(), "fork".to_string())]
    }

    fn output_streams(&self) -> Vec<String> {
        self.outputs.clone()
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{Signature, StreamSpec};
        // Fork replicates whole steps (no partitioning of its own), so it
        // declares no reads; every output carries the input's spec.
        let n = self.outputs.len();
        Signature::new(Vec::new(), move |ins| {
            let spec = ins.first().cloned().unwrap_or(StreamSpec::Opaque);
            Ok(vec![spec; n])
        })
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        let mut reader = hub.open_reader_grouped(&self.input, "fork", comm.rank(), comm.size());
        let mut writers: Vec<_> = self
            .outputs
            .iter()
            .map(|name| hub.open_writer(name, comm.rank(), comm.size(), self.writer_options))
            .collect();
        let mut stats = ComponentStats::default();
        let label = "fork";
        let rank = comm.rank();
        loop {
            let step = reader.current_step();
            let gate = match fault_gate(hub, label, rank, step) {
                Ok(StepFault::Stall) => {
                    for w in &mut writers {
                        w.abandon();
                    }
                    return Ok(stats);
                }
                Ok(g) => g,
                Err(e) => {
                    for w in &mut writers {
                        w.abandon();
                    }
                    stash_partial_stats(stats);
                    return Err(e);
                }
            };
            let step_start = Instant::now();
            match reader.begin_step() {
                Ok(StepStatus::EndOfStream) => break,
                Ok(StepStatus::Ready(_)) => {}
                Err(e) => {
                    for w in &mut writers {
                        w.abandon();
                    }
                    stash_partial_stats(stats);
                    return Err(stream_err(label, step, e));
                }
            }
            let wait = step_start.elapsed();
            // Read this rank's partition of every variable once, then put
            // it to every output. Per-step byte counts stay local to the
            // closure and land in `stats` through `record_step` below.
            let body = (|| -> StepResult<(u64, u64)> {
                let mut step_in = 0u64;
                let mut step_out = 0u64;
                let mut chunks: Vec<Chunk> = Vec::new();
                for name in reader.variables() {
                    let meta = reader
                        .meta(&name)
                        .expect("listed variable has meta")
                        .clone();
                    let region = default_partition(&meta.shape, comm.size(), comm.rank());
                    let var = reader.get(&name, &region)?;
                    step_in += var.byte_len() as u64;
                    chunks.push(Chunk::new(meta, region, var.data)?);
                }
                reader.end_step();
                // Stage every output before committing any: a downstream join
                // reading two branches then sees both sides of a step as soon
                // as the last end_step lands, instead of depending on the
                // branch order above. (A rendezvous-mode Fork feeding a join is
                // still a cyclic wait — use buffered options for fan-out.)
                for w in writers.iter_mut() {
                    w.begin_step()?;
                    if gate == StepFault::DropChunk {
                        continue;
                    }
                    for c in &chunks {
                        // Rank-0 (scalar) variables cannot be partitioned; only
                        // rank 0 contributes them.
                        if c.region.ndims() == 0 && comm.rank() != 0 {
                            continue;
                        }
                        step_out += c.byte_len() as u64;
                        w.put(c.clone());
                    }
                }
                for w in writers.iter_mut() {
                    w.end_step()?;
                }
                Ok((step_in, step_out))
            })();
            match body {
                Ok((step_in, step_out)) => {
                    stats.bytes_out += step_out;
                    stats.record_step(step_start.elapsed(), wait, Duration::ZERO, step_in);
                }
                Err(e) => {
                    for w in &mut writers {
                        w.abandon();
                    }
                    stash_partial_stats(stats);
                    return Err(ComponentError::from_step(label, step, e));
                }
            }
        }
        for mut w in writers {
            w.close();
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let f = Fork::new("in.fp", ["a.fp", "b.fp"]);
        assert_eq!(f.outputs.len(), 2);
        assert_eq!(f.label(), "fork");
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn empty_outputs_rejected() {
        let _ = Fork::new("in.fp", Vec::<String>::new());
    }
}
