//! The Histogram component: global distribution of a 1-d quantity (paper
//! §III-E).
//!
//! The ranks partition the incoming one-dimensional array, communicate to
//! find the global minimum and maximum, bin their local values, and reduce
//! the counts to rank 0, which writes the result — the paper's endpoint
//! behaviour ("one of the processes of Histogram writes the output to a
//! file on disk"). Optionally the result is also published on an output
//! stream (as `counts` + `bin_edges` arrays) so workflows can chain past
//! it and tests can observe it in process.
//!
//! Usage (paper Fig. 2):
//!
//! ```text
//! aprun histogram input-stream-name input-array-name num-bins
//! ```

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sb_comm::Communicator;
use sb_data::decompose::split_1d_part;
use sb_data::{AttrValue, Buffer, DataError, DataResult, Region, Shape, Variable};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_sink, Component, StreamArray};
use crate::error::{ComponentError, ComponentResult};

/// One timestep's histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramResult {
    /// Transport step the histogram describes.
    pub step: u64,
    /// Global minimum of the data.
    pub min: f64,
    /// Global maximum of the data.
    pub max: f64,
    /// Per-bin counts over `[min, max]`, highest bin inclusive.
    pub counts: Vec<u64>,
    /// Values excluded from binning because they were NaN or infinite.
    pub nan_count: u64,
}

impl HistogramResult {
    /// Total number of binned values (excludes [`nan_count`](Self::nan_count)).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `[lo, hi)` value range of bin `i` (`hi` inclusive for the last).
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.counts.len() as f64;
        (
            self.min + i as f64 * width,
            self.min + (i + 1) as f64 * width,
        )
    }
}

/// Bins `values` into `nbins` equal-width bins over `[min, max]`,
/// returning `(counts, nan_count)`.
///
/// Values equal to `max` land in the last bin; a degenerate range
/// (`min == max`) puts every finite value in bin 0. Non-finite values are
/// never binned — `(NaN - min) * scale` cast with `as usize` is 0, which
/// used to silently inflate bin 0 — and are tallied separately instead.
/// This is the pure local kernel of the Histogram component.
pub fn bin_counts(values: &[f64], min: f64, max: f64, nbins: usize) -> (Vec<u64>, u64) {
    assert!(nbins > 0, "histogram needs at least one bin");
    let mut counts = vec![0u64; nbins];
    let mut nan_count = 0u64;
    let width = max - min;
    if width.is_nan() || width <= 0.0 {
        // Degenerate or unordered range (all values equal, or an empty /
        // all-non-finite input whose reduced extremes are +inf/-inf).
        for &v in values {
            if v.is_finite() {
                counts[0] += 1;
            } else {
                nan_count += 1;
            }
        }
        return (counts, nan_count);
    }
    let scale = nbins as f64 / width;
    for &v in values {
        if !v.is_finite() {
            nan_count += 1;
            continue;
        }
        let bin = (((v - min) * scale) as usize).min(nbins - 1);
        counts[bin] += 1;
    }
    (counts, nan_count)
}

/// The Histogram workflow component (an endpoint).
pub struct Histogram {
    /// Input stream/array names (must be 1-d).
    pub input: StreamArray,
    /// Number of equal-width bins.
    pub num_bins: usize,
    /// File rank 0 appends per-step histograms to, if any.
    pub output_file: Option<PathBuf>,
    /// Stream to publish `counts`/`bin_edges` on, if any.
    pub output_stream: Option<String>,
    /// Reader-group name on the input stream.
    pub reader_group: String,
    /// Buffering policy for the optional output stream.
    pub writer_options: WriterOptions,
    results: Arc<Mutex<Vec<HistogramResult>>>,
}

impl Histogram {
    /// Builds a Histogram over `num_bins` bins.
    pub fn new<I: Into<StreamArray>>(input: I, num_bins: usize) -> Histogram {
        assert!(num_bins > 0, "histogram needs at least one bin");
        Histogram {
            input: input.into(),
            num_bins,
            output_file: None,
            output_stream: None,
            reader_group: "default".into(),
            writer_options: WriterOptions::default(),
            results: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Overrides the buffering policy of the optional output stream (e.g.
    /// to declare several subscriber groups on the histogram results).
    pub fn with_writer_options(mut self, options: WriterOptions) -> Histogram {
        self.writer_options = options;
        self
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Histogram {
        self.reader_group = group.into();
        self
    }

    /// Rank 0 appends each step's histogram to `path` (the paper's endpoint
    /// behaviour).
    pub fn with_output_file(mut self, path: impl Into<PathBuf>) -> Histogram {
        self.output_file = Some(path.into());
        self
    }

    /// Additionally publishes each histogram on stream `name`.
    pub fn with_output_stream(mut self, name: impl Into<String>) -> Histogram {
        self.output_stream = Some(name.into());
        self
    }

    /// A handle to the in-memory results rank 0 accumulates; clone it
    /// before moving the component into a workflow.
    pub fn results_handle(&self) -> Arc<Mutex<Vec<HistogramResult>>> {
        Arc::clone(&self.results)
    }
}

impl Component for Histogram {
    fn label(&self) -> String {
        "histogram".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        self.output_stream.iter().cloned().collect()
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{
            ArraySpec, DimSpec, PartitionRule, ReadSpec, Signature, SpecError, StreamSpec,
        };
        use std::collections::BTreeMap;
        let in_array = self.input.array.clone();
        let bins = self.num_bins;
        let has_output = self.output_stream.is_some();
        Signature::new(
            vec![ReadSpec::new(
                &self.input.stream,
                &in_array,
                PartitionRule::Along(0),
            )],
            move |ins| {
                if let Some(stream) = ins.first() {
                    if let Some(spec) = stream.array(&in_array)? {
                        if spec.ndims() != 1 {
                            return Err(SpecError::RankMismatch {
                                expected: 1,
                                got: spec.ndims(),
                            });
                        }
                        if let Some(elements) = spec.total_elements() {
                            if bins > elements {
                                return Err(SpecError::DegenerateBins { bins, elements });
                            }
                        }
                    }
                }
                if !has_output {
                    return Ok(Vec::new());
                }
                // The output arrays are fixed by configuration, so they are
                // known even when the input is opaque.
                let mut map = BTreeMap::new();
                map.insert(
                    "counts".to_string(),
                    ArraySpec::new(vec![DimSpec::fixed("bins", bins)], sb_data::DType::U64),
                );
                map.insert(
                    "bin_edges".to_string(),
                    ArraySpec::new(vec![DimSpec::fixed("edges", bins + 1)], sb_data::DType::F64),
                );
                Ok(vec![StreamSpec::Known(map)])
            },
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        let mut writer = self
            .output_stream
            .as_ref()
            .map(|s| hub.open_writer(s, comm.rank(), comm.size(), self.writer_options));
        // Truncate at run start, then append one block per step: a rerun
        // of the same workflow starts a fresh file instead of accumulating
        // histograms from previous runs.
        let mut file = match (&self.output_file, comm.rank()) {
            (Some(path), 0) => match std::fs::File::create(path) {
                Ok(f) => Some(f),
                Err(e) => {
                    if let Some(mut w) = writer {
                        w.abandon();
                    }
                    return Err(ComponentError::Data {
                        label: "histogram".into(),
                        step: 0,
                        source: DataError::Io {
                            detail: format!("cannot open {path:?}: {e}"),
                        },
                    });
                }
            },
            _ => None,
        };

        let stats = run_sink(
            "histogram",
            comm,
            hub,
            &self.input.stream,
            &self.reader_group,
            |reader, comm, step| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?;
                if meta.shape.ndims() != 1 {
                    return Err(DataError::RegionOutOfBounds {
                        detail: format!(
                            "histogram expects 1-d input, stream carries rank {}",
                            meta.shape.ndims()
                        ),
                    }
                    .into());
                }
                let n = meta.shape.size(0);
                let (off, count) = split_1d_part(n, comm.size(), comm.rank());
                let var = reader.get(&self.input.array, &Region::new(vec![off], vec![count]))?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                let local = var.data.into_f64_vec();
                // Global extremes, then local binning, then a count reduction —
                // the two communication rounds the paper describes. The
                // extremes only describe the binnable population, so
                // non-finite values are excluded here and tallied by
                // `bin_counts` below.
                let (lmin, lmax) = local
                    .iter()
                    .filter(|v| v.is_finite())
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                        (a.min(v), b.max(v))
                    });
                let min = comm.allreduce(lmin, f64::min);
                let max = comm.allreduce(lmax, f64::max);
                let (counts, nan) = bin_counts(&local, min, max, self.num_bins);
                let total = comm.reduce(0, counts, |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                });
                let nan_total = comm.reduce(0, nan, |a, b| a + b);
                let compute = kernel_start.elapsed();

                if let Some(counts) = total {
                    // Rank 0 only: record, write file, publish.
                    let result = HistogramResult {
                        step,
                        min,
                        max,
                        counts,
                        nan_count: nan_total.unwrap_or(0),
                    };
                    // Signals go out *before* this step is committed to the
                    // output stream or file, so a trigger firing on step k
                    // takes effect before anything downstream observes k.
                    let signals = hub.signals();
                    if signals.armed() {
                        signals.publish("histogram", "min", step, result.min);
                        signals.publish("histogram", "max", step, result.max);
                        signals.publish("histogram", "total", step, result.total() as f64);
                        signals.publish("histogram", "nan_count", step, result.nan_count as f64);
                    }
                    if let Some(f) = file.as_mut() {
                        write_histogram(f, &result)?;
                    }
                    if let Some(w) = writer.as_mut() {
                        let nb = result.counts.len();
                        let counts_var = Variable::new(
                            "counts",
                            Shape::linear("bins", nb),
                            Buffer::U64(result.counts.clone()),
                        )?
                        .with_attr("min", AttrValue::Float(result.min))
                        .with_attr("max", AttrValue::Float(result.max))
                        .with_attr("source", AttrValue::Text(self.input.to_string()));
                        let edges: Vec<f64> = (0..=nb)
                            .map(|i| result.min + (result.max - result.min) * i as f64 / nb as f64)
                            .collect();
                        let edges_var = Variable::new(
                            "bin_edges",
                            Shape::linear("edges", nb + 1),
                            Buffer::F64(edges),
                        )?;
                        w.begin_step()?;
                        w.put_whole(counts_var);
                        w.put_whole(edges_var);
                        w.end_step()?;
                    }
                    self.results.lock().push(result);
                } else if let Some(w) = writer.as_mut() {
                    // Non-root ranks pace the output stream without contributing.
                    w.begin_step()?;
                    w.end_step()?;
                }
                Ok((bytes_in, compute))
            },
        );
        match stats {
            Ok(s) => {
                if let Some(mut w) = writer {
                    w.close();
                }
                Ok(s)
            }
            Err(e) => {
                if let Some(mut w) = writer {
                    w.abandon();
                }
                Err(e)
            }
        }
    }
}

fn write_histogram(f: &mut std::fs::File, r: &HistogramResult) -> DataResult<()> {
    write!(
        f,
        "# step {} min {:.6e} max {:.6e} total {}",
        r.step,
        r.min,
        r.max,
        r.total()
    )?;
    // Only surfaced when present, so NaN-free outputs stay byte-identical.
    if r.nan_count > 0 {
        write!(f, " nan {}", r.nan_count)?;
    }
    writeln!(f)?;
    for (i, &c) in r.counts.iter().enumerate() {
        let (lo, hi) = r.bin_range(i);
        writeln!(f, "{lo:.6e} {hi:.6e} {c}")?;
    }
    Ok(())
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("input", &self.input)
            .field("num_bins", &self.num_bins)
            .field("output_file", &self.output_file)
            .field("output_stream", &self.output_stream)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_counts_basic() {
        let values = [0.0, 0.5, 1.0, 2.5, 4.0];
        let (counts, nan) = bin_counts(&values, 0.0, 4.0, 4);
        // Bins: [0,1) [1,2) [2,3) [3,4]: 0, 0.5 -> bin 0; 1.0 -> bin 1;
        // 2.5 -> bin 2; 4.0 -> bin 3 (max lands in last bin).
        assert_eq!(counts, vec![2, 1, 1, 1]);
        assert_eq!(nan, 0);
    }

    #[test]
    fn bin_counts_degenerate_range() {
        let (counts, nan) = bin_counts(&[7.0, 7.0, 7.0], 7.0, 7.0, 5);
        assert_eq!(counts, vec![3, 0, 0, 0, 0]);
        assert_eq!(nan, 0);
    }

    #[test]
    fn bin_counts_empty_input() {
        assert_eq!(bin_counts(&[], 0.0, 1.0, 3), (vec![0, 0, 0], 0));
    }

    #[test]
    fn bin_counts_sum_matches_input_len() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.7).sin()).collect();
        let (counts, _) = bin_counts(&values, -1.0, 1.0, 16);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn bin_counts_excludes_non_finite() {
        // Regression: NaN used to be counted into bin 0 because the
        // `(v - min) * scale as usize` cast maps NaN to 0.
        let values = [0.5, f64::NAN, 1.5, f64::INFINITY, f64::NEG_INFINITY, 3.5];
        let (counts, nan) = bin_counts(&values, 0.0, 4.0, 4);
        assert_eq!(counts, vec![1, 1, 0, 1]);
        assert_eq!(nan, 3);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn bin_counts_all_nan_input() {
        // An all-NaN input leaves the reduced extremes at +inf/-inf; no
        // value may be binned and every one must be tallied as NaN.
        let values = [f64::NAN; 4];
        let (counts, nan) = bin_counts(&values, f64::INFINITY, f64::NEG_INFINITY, 3);
        assert_eq!(counts, vec![0, 0, 0]);
        assert_eq!(nan, 4);
    }

    #[test]
    fn result_bin_ranges_tile_min_max() {
        let r = HistogramResult {
            step: 0,
            min: -2.0,
            max: 2.0,
            counts: vec![1, 2, 3, 4],
            nan_count: 0,
        };
        assert_eq!(r.total(), 10);
        assert_eq!(r.bin_range(0), (-2.0, -1.0));
        assert_eq!(r.bin_range(3), (1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(("a", "x"), 0);
    }
}
