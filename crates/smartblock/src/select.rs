//! The Select component: keep named rows of one dimension (paper §III-C).
//!
//! Select extracts certain rows (indices) from one dimension of an array
//! with any number of dimensions, identified *by name* through the quantity
//! header the upstream component attached — so a launch script can say
//! "keep vx, vy, vz" without knowing column numbers. The output has the
//! same rank with the selected dimension shrunk to the kept rows.
//!
//! Usage (paper Fig. 1):
//!
//! ```text
//! aprun select input-stream-name input-array-name dimension-index
//!       output-stream-name output-array-name [arg1] [arg2] ...
//! ```

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::slab_partition;
use sb_data::{Buffer, Chunk, DataError, DataResult, Region, Variable, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_transform, Component, StepOutput, StreamArray, TransformSpec};
use crate::error::ComponentResult;

/// Gathers the rows `indices` of dimension `dim` from `var`, in the order
/// given, producing a variable whose `dim` has size `indices.len()`.
///
/// This is the pure kernel of the Select component; it preserves dtype,
/// renames nothing, and re-labels `dim` with the selected subset of the
/// header (when one is present).
pub fn select_rows(var: &Variable, dim: usize, indices: &[usize]) -> DataResult<Variable> {
    var.shape.check_dim(dim)?;
    let d = var.shape.size(dim);
    for &i in indices {
        if i >= d {
            return Err(DataError::RegionOutOfBounds {
                detail: format!("selected row {i} exceeds dimension extent {d}"),
            });
        }
    }
    let sizes = var.shape.sizes();
    let pre: usize = sizes[..dim].iter().product();
    let post: usize = sizes[dim + 1..].iter().product();
    let out_shape = var.shape.with_dim_size(dim, indices.len());
    let out = var.data.gather_dim(pre, d, post, indices);
    let mut result = Variable::new(var.name.clone(), out_shape, out)?;
    for (&ldim, names) in &var.labels {
        if ldim == dim {
            result
                .set_labels(ldim, indices.iter().map(|&i| names[i].clone()).collect())
                .expect("selected labels match the resized dimension");
        } else {
            result
                .set_labels(ldim, names.clone())
                .expect("untouched labels keep their extent");
        }
    }
    result.attrs = var.attrs.clone();
    Ok(result)
}

/// The Select workflow component.
#[derive(Debug, Clone)]
pub struct Select {
    /// Input stream/array names.
    pub input: StreamArray,
    /// Index of the dimension to filter.
    pub dim_index: usize,
    /// Names of the rows to keep, resolved against the dimension's header.
    pub keep: Vec<String>,
    /// Output stream/array names.
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream (for multi-subscriber DAGs).
    pub reader_group: String,
}

impl Select {
    /// Builds a Select keeping the named rows of dimension `dim_index`.
    pub fn new<I, K, O>(input: I, dim_index: usize, keep: K, output: O) -> Select
    where
        I: Into<StreamArray>,
        K: IntoIterator,
        K::Item: Into<String>,
        O: Into<StreamArray>,
    {
        Select {
            input: input.into(),
            dim_index,
            keep: keep.into_iter().map(Into::into).collect(),
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Overrides the output buffering policy.
    pub fn with_writer_options(mut self, options: WriterOptions) -> Select {
        self.writer_options = options;
        self
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Select {
        self.reader_group = group.into();
        self
    }

    /// The dimension this rank partitions along: the first dimension that
    /// is not the filtered one (`None` for 1-d inputs, which are processed
    /// whole by rank 0).
    fn partition_dim(&self, ndims: usize) -> Option<usize> {
        (0..ndims).find(|&d| d != self.dim_index)
    }
}

impl Component for Select {
    fn label(&self) -> String {
        "select".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{
            unary_transfer, Extent, PartitionRule, ReadSpec, Signature, SpecError,
        };
        let dim = self.dim_index;
        let keep = self.keep.clone();
        Signature::with_boxed_transfer(
            vec![ReadSpec::new(
                &self.input.stream,
                &self.input.array,
                PartitionRule::FirstExcept(dim),
            )],
            unary_transfer(
                self.input.array.clone(),
                self.output.array.clone(),
                move |spec| {
                    spec.check_dim(dim)?;
                    let available = spec.labels.get(&dim).cloned().unwrap_or_default();
                    for name in &keep {
                        if !available.contains(name) {
                            return Err(SpecError::UnknownLabel {
                                dim,
                                label: name.clone(),
                                available: available.clone(),
                            });
                        }
                    }
                    let mut out = spec.clone();
                    out.dims[dim].extent = Extent::Fixed(keep.len());
                    out.labels.insert(dim, keep.clone());
                    Ok(out)
                },
            ),
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_transform(
            TransformSpec {
                label: "select",
                input_stream: &self.input.stream,
                reader_group: &self.reader_group,
                output_stream: &self.output.stream,
                writer_options: self.writer_options,
            },
            comm,
            hub,
            |reader, comm| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                meta.shape.check_dim(self.dim_index)?;
                // Resolve the kept names against the global header.
                let indices: Vec<usize> = self
                    .keep
                    .iter()
                    .map(|n| meta.resolve_label(self.dim_index, n))
                    .collect::<DataResult<_>>()?;

                // Partition along a non-filtered dimension so every rank
                // sees the whole header dimension.
                let region = match self.partition_dim(meta.shape.ndims()) {
                    Some(pdim) => slab_partition(&meta.shape, pdim, comm.size(), comm.rank()),
                    None => {
                        // 1-d input: rank 0 takes everything.
                        if comm.rank() == 0 {
                            Region::whole(&meta.shape)
                        } else {
                            Region::new(vec![0], vec![0])
                        }
                    }
                };
                let var = reader.get(&self.input.array, &region)?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                // A rank whose partition is empty (more ranks than rows, or
                // the 1-d fallback) contributes an empty chunk and skips the
                // kernel, whose row bounds are meaningless on a 0-extent dim.
                let selected_data = if region.is_empty() && var.shape.size(self.dim_index) == 0 {
                    sb_data::SharedBuffer::from(Buffer::zeros(meta.dtype, 0))
                } else {
                    let mut selected = select_rows(&var, self.dim_index, &indices)?;
                    selected.name = self.output.array.clone();
                    selected.data
                };
                let compute = kernel_start.elapsed();

                // Global output metadata: input shape with the filtered
                // dimension shrunk; labels re-derived from the global header.
                let out_shape = meta.shape.with_dim_size(self.dim_index, indices.len());
                let mut out_meta =
                    VariableMeta::new(self.output.array.clone(), out_shape, meta.dtype);
                for (&ldim, names) in &meta.labels {
                    let new = if ldim == self.dim_index {
                        indices.iter().map(|&i| names[i].clone()).collect()
                    } else {
                        names.clone()
                    };
                    out_meta.labels.insert(ldim, new);
                }
                out_meta.attrs = meta.attrs.clone();

                let mut out_region_offset = region.offset().to_vec();
                let mut out_region_count = region.count().to_vec();
                out_region_offset[self.dim_index] = 0;
                out_region_count[self.dim_index] = indices.len();
                // Empty partitions contribute an empty chunk of the right rank.
                if region.is_empty() {
                    out_region_count = vec![0; out_region_count.len()];
                }
                let chunk = Chunk::new(
                    out_meta,
                    Region::new(out_region_offset, out_region_count),
                    selected_data,
                )?;
                Ok(StepOutput {
                    chunk: Some(chunk),
                    bytes_in,
                    compute,
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_data::Shape;

    fn particles() -> Variable {
        // 4 particles x 5 props; value = 10*particle + prop.
        let data: Vec<f64> = (0..4)
            .flat_map(|p| (0..5).map(move |q| (10 * p + q) as f64))
            .collect();
        Variable::new(
            "atoms",
            Shape::of(&[("particles", 4), ("props", 5)]),
            Buffer::from(data),
        )
        .unwrap()
        .with_labels(1, &["ID", "Type", "vx", "vy", "vz"])
        .unwrap()
    }

    #[test]
    fn kernel_keeps_named_rows_in_order() {
        let v = particles();
        let out = select_rows(&v, 1, &[2, 3, 4]).unwrap();
        assert_eq!(out.shape.sizes(), vec![4, 3]);
        assert_eq!(out.get(&[0, 0]), 2.0); // vx of particle 0
        assert_eq!(out.get(&[3, 2]), 34.0); // vz of particle 3
        assert_eq!(
            out.header(1).unwrap(),
            &["vx".to_string(), "vy".into(), "vz".into()]
        );
    }

    #[test]
    fn kernel_reorders_when_asked() {
        let v = particles();
        let out = select_rows(&v, 1, &[4, 2]).unwrap();
        assert_eq!(out.get(&[1, 0]), 14.0); // vz first
        assert_eq!(out.get(&[1, 1]), 12.0); // then vx
        assert_eq!(out.header(1).unwrap(), &["vz".to_string(), "vx".into()]);
    }

    #[test]
    fn kernel_selects_along_dim_zero() {
        let v = particles();
        let out = select_rows(&v, 0, &[3, 1]).unwrap();
        assert_eq!(out.shape.sizes(), vec![2, 5]);
        assert_eq!(out.get(&[0, 0]), 30.0);
        assert_eq!(out.get(&[1, 4]), 14.0);
        // The untouched header on dim 1 survives.
        assert_eq!(out.header(1).unwrap().len(), 5);
    }

    #[test]
    fn kernel_selects_in_three_dimensions() {
        // 2 x 3 x 4, select middle dim rows [2, 0].
        let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let v = Variable::new(
            "t",
            Shape::of(&[("a", 2), ("b", 3), ("c", 4)]),
            Buffer::from(data),
        )
        .unwrap();
        let out = select_rows(&v, 1, &[2, 0]).unwrap();
        assert_eq!(out.shape.sizes(), vec![2, 2, 4]);
        // (a=1, b'=0 -> b=2, c=3): original linear = 1*12 + 2*4 + 3 = 23.
        assert_eq!(out.get(&[1, 0, 3]), 23.0);
        // (a=0, b'=1 -> b=0, c=0): original = 0.
        assert_eq!(out.get(&[0, 1, 0]), 0.0);
    }

    #[test]
    fn kernel_rejects_bad_rows_and_dims() {
        let v = particles();
        assert!(select_rows(&v, 1, &[5]).is_err());
        assert!(select_rows(&v, 2, &[0]).is_err());
    }

    #[test]
    fn kernel_empty_selection_yields_empty_dim() {
        let v = particles();
        let out = select_rows(&v, 1, &[]).unwrap();
        assert_eq!(out.shape.sizes(), vec![4, 0]);
        assert!(out.data.is_empty());
    }

    #[test]
    fn partition_dim_avoids_filtered_dim() {
        let s = Select::new(("a", "x"), 1, ["vx"], ("b", "y"));
        assert_eq!(s.partition_dim(2), Some(0));
        let s0 = Select::new(("a", "x"), 0, ["row"], ("b", "y"));
        assert_eq!(s0.partition_dim(3), Some(1));
        assert_eq!(s0.partition_dim(1), None);
    }
}
