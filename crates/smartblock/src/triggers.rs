//! DIVA-style reactive triggers: `when <component>.<signal> <op> <value>
//! then <action>`.
//!
//! A trigger watches one scalar signal a component publishes on the hub's
//! [`sb_stream::SignalBoard`] (a histogram's per-step `max`, a run loop's
//! `wait_ratio`) and, the first time the condition holds, performs one
//! runtime action:
//!
//! * `set_output_stride LABEL N` — retarget a [`crate::TemporalMean`]'s
//!   output decimation stride mid-run (via [`ControlAction`]);
//! * `snapshot_stream STREAM PATH` — dump the stream's currently buffered
//!   committed steps to a text file without disturbing the pipeline;
//! * `raise_fault_policy LABEL SPEC` — swap the component's fault policy
//!   (e.g. escalate `degrade` to `restart:3`) before the next failure.
//!
//! Evaluation is *synchronous in the publishing thread*: the signal board's
//! hook runs at the publication point, so a trigger firing at step `k`
//! takes effect before the publisher commits step `k` downstream — the
//! determinism the regression tests pin. Triggers fire once (DIVA's
//! edge-triggered clauses); the fired record lands on
//! [`crate::WorkflowReport::triggers`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use sb_stream::StreamHub;

use crate::component::Component;
use crate::supervisor::FaultPolicy;

/// A runtime control request delivered to a component via
/// [`Component::apply_control`]. Marked `#[non_exhaustive]`: new trigger
/// actions add variants without breaking component impls (the trait
/// default ignores unknown actions).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlAction {
    /// Change the component's output decimation stride (honoured by
    /// [`crate::TemporalMean`]).
    SetOutputStride(usize),
}

/// The comparison operator of a trigger's `when` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerOp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
}

impl TriggerOp {
    /// Parses the operator token of a `when` clause.
    pub fn parse(tok: &str) -> Option<TriggerOp> {
        match tok {
            ">" => Some(TriggerOp::Gt),
            ">=" => Some(TriggerOp::Ge),
            "<" => Some(TriggerOp::Lt),
            "<=" => Some(TriggerOp::Le),
            _ => None,
        }
    }

    /// Whether `observed op threshold` holds.
    pub fn holds(self, observed: f64, threshold: f64) -> bool {
        match self {
            TriggerOp::Gt => observed > threshold,
            TriggerOp::Ge => observed >= threshold,
            TriggerOp::Lt => observed < threshold,
            TriggerOp::Le => observed <= threshold,
        }
    }
}

impl fmt::Display for TriggerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TriggerOp::Gt => ">",
            TriggerOp::Ge => ">=",
            TriggerOp::Lt => "<",
            TriggerOp::Le => "<=",
        })
    }
}

/// The `then` clause of a trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerAction {
    /// `set_output_stride LABEL N`
    SetOutputStride {
        /// Component label whose output stride changes.
        target: String,
        /// The new stride (≥ 1).
        stride: usize,
    },
    /// `snapshot_stream STREAM PATH`
    SnapshotStream {
        /// Stream to snapshot.
        stream: String,
        /// File the text dump is written to.
        path: String,
    },
    /// `raise_fault_policy LABEL SPEC`
    RaiseFaultPolicy {
        /// Component label whose policy is replaced.
        target: String,
        /// The replacement policy.
        policy: FaultPolicy,
    },
}

impl fmt::Display for TriggerAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerAction::SetOutputStride { target, stride } => {
                write!(f, "set_output_stride {target} {stride}")
            }
            TriggerAction::SnapshotStream { stream, path } => {
                write!(f, "snapshot_stream {stream} {path}")
            }
            TriggerAction::RaiseFaultPolicy { target, policy } => {
                write!(f, "raise_fault_policy {target} {:?}", policy.action)
            }
        }
    }
}

/// One reactive clause: `when <component>.<signal> <op> <value> then
/// <action>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    /// Component whose signal is watched (the label the component
    /// publishes under — its base label).
    pub component: String,
    /// Signal name (`max`, `min`, `total`, `nan_count`, `wait_ratio`, …).
    pub signal: String,
    /// Comparison operator.
    pub op: TriggerOp,
    /// Threshold value.
    pub value: f64,
    /// What happens when the condition first holds.
    pub action: TriggerAction,
    /// 1-based spec line the trigger came from (0 when built
    /// programmatically), threaded into lint diagnostics.
    pub line: usize,
}

impl Trigger {
    /// Builds a trigger programmatically (line 0).
    pub fn new(
        component: impl Into<String>,
        signal: impl Into<String>,
        op: TriggerOp,
        value: f64,
        action: TriggerAction,
    ) -> Trigger {
        Trigger {
            component: component.into(),
            signal: signal.into(),
            op,
            value,
            action,
            line: 0,
        }
    }

    /// Parses the `when` clause body `component.signal op value` (the part
    /// after the `when` keyword).
    pub fn parse_when(when: &str) -> Result<(String, String, TriggerOp, f64), String> {
        let toks: Vec<&str> = when.split_whitespace().collect();
        let usage = || format!("bad when clause {when:?} (component.signal <op> value)");
        let [ref_, op, value] = toks[..] else {
            return Err(usage());
        };
        let (component, signal) = ref_
            .split_once('.')
            .ok_or_else(|| format!("bad signal reference {ref_:?} (component.signal)"))?;
        if component.is_empty() || signal.is_empty() {
            return Err(format!("bad signal reference {ref_:?} (component.signal)"));
        }
        let op =
            TriggerOp::parse(op).ok_or_else(|| format!("bad operator {op:?} (>, >=, <, <=)"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("bad threshold {value:?} (a number)"))?;
        Ok((component.to_string(), signal.to_string(), op, value))
    }

    /// Parses the `then` clause body (the part after the `then` keyword).
    pub fn parse_then(then: &str) -> Result<TriggerAction, String> {
        let toks: Vec<&str> = then.split_whitespace().collect();
        match toks.as_slice() {
            ["set_output_stride", target, stride] => {
                let stride: usize = stride
                    .parse()
                    .map_err(|_| format!("bad stride {stride:?} (a positive integer)"))?;
                if stride == 0 {
                    return Err("stride must be at least 1".to_string());
                }
                Ok(TriggerAction::SetOutputStride {
                    target: target.to_string(),
                    stride,
                })
            }
            ["snapshot_stream", stream, path] => Ok(TriggerAction::SnapshotStream {
                stream: stream.to_string(),
                path: path.to_string(),
            }),
            ["raise_fault_policy", target, spec] => {
                let policy = crate::launch::parse_policy_spec(spec)?;
                Ok(TriggerAction::RaiseFaultPolicy {
                    target: target.to_string(),
                    policy,
                })
            }
            _ => Err(format!(
                "bad then clause {then:?} (set_output_stride LABEL N, \
                 snapshot_stream STREAM PATH, or raise_fault_policy LABEL SPEC)"
            )),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "when {}.{} {} {} then {}",
            self.component, self.signal, self.op, self.value, self.action
        )
    }
}

/// The record of one trigger firing, surfaced on
/// [`crate::WorkflowReport::triggers`].
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerFire {
    /// The clause that fired, rendered.
    pub trigger: String,
    /// Step of the observation that fired it.
    pub step: u64,
    /// The observed value.
    pub value: f64,
    /// Whether the action took effect (`false` e.g. when a stride target
    /// ignores control actions or a snapshot stream does not exist).
    pub applied: bool,
    /// Whether the action was *skipped* rather than attempted: the backend
    /// cannot perform it at all (e.g. `snapshot_stream` on a remote
    /// transport that does not expose buffered steps). Skipped firings also
    /// record a `trigger_skipped` trace instant. `skipped` implies
    /// `!applied`.
    pub skipped: bool,
}

/// How performing one trigger action went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ActionOutcome {
    /// The action took effect.
    Applied,
    /// The action was attempted but failed (missing target, I/O error).
    Failed,
    /// The backend cannot perform the action; nothing was attempted.
    Skipped,
}

struct Armed {
    trigger: Trigger,
    fired: bool,
}

/// Evaluates a workflow's triggers against published signals and performs
/// their actions. One engine per run; [`crate::Workflow::run_with`] arms it
/// on the hub's signal board when the workflow declares triggers.
pub(crate) struct TriggerEngine {
    hub: Arc<StreamHub>,
    /// Component instances by workflow label, for [`ControlAction`] routing.
    components: BTreeMap<String, Arc<dyn Component>>,
    /// Live per-component fault policies (shared with the supervisors).
    policy_slots: BTreeMap<String, Arc<Mutex<FaultPolicy>>>,
    armed: Mutex<Vec<Armed>>,
    fired: Mutex<Vec<TriggerFire>>,
}

impl TriggerEngine {
    pub(crate) fn new(
        triggers: Vec<Trigger>,
        components: BTreeMap<String, Arc<dyn Component>>,
        hub: Arc<StreamHub>,
        policy_slots: BTreeMap<String, Arc<Mutex<FaultPolicy>>>,
    ) -> TriggerEngine {
        TriggerEngine {
            hub,
            components,
            policy_slots,
            armed: Mutex::new(
                triggers
                    .into_iter()
                    .map(|trigger| Armed {
                        trigger,
                        fired: false,
                    })
                    .collect(),
            ),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// The signal-board hook body: called synchronously on the publishing
    /// thread for every signal publication.
    pub(crate) fn observe(&self, component: &str, signal: &str, step: u64, value: f64) {
        // Collect matching un-fired clauses under the lock, act outside it:
        // actions touch streams and component state and must not hold the
        // engine lock while doing so.
        let mut due = Vec::new();
        {
            let mut armed = self.armed.lock();
            for a in armed.iter_mut() {
                if !a.fired
                    && a.trigger.component == component
                    && a.trigger.signal == signal
                    && a.trigger.op.holds(value, a.trigger.value)
                {
                    a.fired = true;
                    due.push(a.trigger.clone());
                }
            }
        }
        for trigger in due {
            let outcome = self.perform(&trigger.action, step);
            self.fired.lock().push(TriggerFire {
                trigger: trigger.to_string(),
                step,
                value,
                applied: outcome == ActionOutcome::Applied,
                skipped: outcome == ActionOutcome::Skipped,
            });
        }
    }

    fn perform(&self, action: &TriggerAction, step: u64) -> ActionOutcome {
        match action {
            TriggerAction::SetOutputStride { target, stride } => {
                match self
                    .components
                    .get(target)
                    .map(|c| c.apply_control(&ControlAction::SetOutputStride(*stride)))
                {
                    Some(true) => ActionOutcome::Applied,
                    _ => ActionOutcome::Failed,
                }
            }
            TriggerAction::SnapshotStream { stream, path } => {
                match self.hub.snapshot_stream(stream) {
                    Some(steps) => {
                        if write_snapshot(path, stream, &steps).is_ok() {
                            ActionOutcome::Applied
                        } else {
                            ActionOutcome::Failed
                        }
                    }
                    // The backend has no buffered-step view (e.g. a remote
                    // transport client): the action cannot run here. Make
                    // the skip visible instead of dropping it — a trace
                    // instant now, a skipped fired record after the run.
                    None => {
                        let tracer = self.hub.tracer();
                        let site = sb_stream::TraceSite::stream(tracer.intern(stream), 0, step);
                        tracer.instant(sb_stream::EventKind::TriggerSkipped, site, 0);
                        ActionOutcome::Skipped
                    }
                }
            }
            TriggerAction::RaiseFaultPolicy { target, policy } => {
                match self.policy_slots.get(target) {
                    Some(slot) => {
                        *slot.lock() = policy.clone();
                        ActionOutcome::Applied
                    }
                    None => ActionOutcome::Failed,
                }
            }
        }
    }

    /// Drains the fired records (called once, after the run).
    pub(crate) fn take_fired(&self) -> Vec<TriggerFire> {
        std::mem::take(&mut self.fired.lock())
    }
}

/// Writes a deterministic text dump of a stream snapshot: one header line,
/// then per step the variable names with their chunk counts and payload
/// byte totals.
fn write_snapshot(
    path: &str,
    stream: &str,
    steps: &[(u64, sb_stream::StepContents)],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = String::new();
    out.push_str(&format!(
        "# snapshot stream {stream} steps {}\n",
        steps.len()
    ));
    for (step, contents) in steps {
        out.push_str(&format!("step {step} vars {}\n", contents.len()));
        for (name, slot) in contents.iter() {
            let bytes: usize = slot.chunks.iter().map(|c| c.byte_len()).sum();
            out.push_str(&format!(
                "  var {name} chunks {} bytes {bytes}\n",
                slot.chunks.len()
            ));
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_parse_and_hold() {
        assert_eq!(TriggerOp::parse(">"), Some(TriggerOp::Gt));
        assert_eq!(TriggerOp::parse(">="), Some(TriggerOp::Ge));
        assert_eq!(TriggerOp::parse("<"), Some(TriggerOp::Lt));
        assert_eq!(TriggerOp::parse("<="), Some(TriggerOp::Le));
        assert_eq!(TriggerOp::parse("=="), None);
        assert!(TriggerOp::Gt.holds(2.0, 1.0));
        assert!(!TriggerOp::Gt.holds(1.0, 1.0));
        assert!(TriggerOp::Ge.holds(1.0, 1.0));
        assert!(TriggerOp::Lt.holds(0.5, 1.0));
        assert!(TriggerOp::Le.holds(1.0, 1.0));
    }

    #[test]
    fn when_clause_parses() {
        let (c, s, op, v) = Trigger::parse_when("histogram.max > 100").unwrap();
        assert_eq!((c.as_str(), s.as_str()), ("histogram", "max"));
        assert_eq!(op, TriggerOp::Gt);
        assert_eq!(v, 100.0);
        for bad in [
            "histogram.max >",
            "histogram max > 1",
            "histogram. > 1",
            ".max > 1",
            "histogram.max == 1",
            "histogram.max > lots",
        ] {
            assert!(Trigger::parse_when(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn then_clause_parses() {
        assert_eq!(
            Trigger::parse_then("set_output_stride temporal-mean 4").unwrap(),
            TriggerAction::SetOutputStride {
                target: "temporal-mean".into(),
                stride: 4,
            }
        );
        assert_eq!(
            Trigger::parse_then("snapshot_stream m.fp /tmp/snap.txt").unwrap(),
            TriggerAction::SnapshotStream {
                stream: "m.fp".into(),
                path: "/tmp/snap.txt".into(),
            }
        );
        match Trigger::parse_then("raise_fault_policy gromacs restart:2:50").unwrap() {
            TriggerAction::RaiseFaultPolicy { target, policy } => {
                assert_eq!(target, "gromacs");
                assert_eq!(
                    policy,
                    FaultPolicy::restart(2).with_backoff(std::time::Duration::from_millis(50))
                );
            }
            other => panic!("expected raise_fault_policy, got {other:?}"),
        }
        for bad in [
            "set_output_stride temporal-mean",
            "set_output_stride temporal-mean zero",
            "set_output_stride temporal-mean 0",
            "snapshot_stream m.fp",
            "raise_fault_policy gromacs retry",
            "explode",
        ] {
            assert!(Trigger::parse_then(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unsupported_snapshot_records_skip_and_trace_instant() {
        // Regression: a snapshot_stream action whose backend returns `None`
        // from `Transport::snapshot_stream` used to vanish as a plain
        // `applied: false`. It must surface as a skipped outcome on the
        // fired record plus a `trigger_skipped` trace instant.
        use sb_stream::{EventKind, StreamHub, TraceConfig};
        let hub = StreamHub::new();
        hub.tracer().enable(&TraceConfig::new());
        let engine = TriggerEngine::new(
            vec![Trigger::new(
                "histogram",
                "max",
                TriggerOp::Gt,
                1.0,
                TriggerAction::SnapshotStream {
                    stream: "never.opened".into(),
                    path: "/tmp/never_written_snap.txt".into(),
                },
            )],
            BTreeMap::new(),
            Arc::clone(&hub),
            BTreeMap::new(),
        );
        engine.observe("histogram", "max", 9, 2.0);
        let fired = engine.take_fired();
        assert_eq!(fired.len(), 1, "trigger should have fired: {fired:?}");
        assert!(!fired[0].applied);
        assert!(fired[0].skipped, "unsupported snapshot must be skipped");
        let timeline = hub.tracer().drain();
        let skip = timeline
            .events
            .iter()
            .find(|e| e.kind == EventKind::TriggerSkipped)
            .expect("a trigger_skipped instant on the timeline");
        assert_eq!(skip.stream, "never.opened");
        assert_eq!(skip.step, 9);
    }

    #[test]
    fn trigger_renders_round() {
        let t = Trigger::new(
            "histogram",
            "max",
            TriggerOp::Ge,
            3.5,
            TriggerAction::SetOutputStride {
                target: "temporal-mean".into(),
                stride: 2,
            },
        );
        assert_eq!(
            t.to_string(),
            "when histogram.max >= 3.5 then set_output_stride temporal-mean 2"
        );
    }
}
