//! Workflow assembly and execution.
//!
//! A [`Workflow`] is the in-process equivalent of the paper's launch script
//! (Fig. 8): a list of components with process counts, all launched
//! *simultaneously* and connected only by stream names. FlexPath-style
//! blocking lets them come up in any order; the workflow completes when
//! every component's input has ended.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sb_comm::Communicator;
use sb_data::decompose::default_partition;
use sb_data::{Chunk, Variable, VariableMeta};
use sb_stream::{StreamHub, TraceConfig, WriterOptions};

use crate::analysis::{self, AnalysisIssue, EntryView, Severity};
use crate::component::Component;
use crate::error::{ComponentResult, WorkflowError};
use crate::metrics::{ComponentReport, WorkflowReport};
use crate::supervisor::{supervise, FaultPolicy, RunOptions, Supervision, Validation};
use crate::triggers::{Trigger, TriggerEngine};

/// An ad-hoc source component built from a closure; every rank calls the
/// closure identically and contributes its partition of the produced
/// variable, so the closure must be deterministic in `step`.
struct ClosureSource<F> {
    label: String,
    stream: String,
    produce: F,
}

impl<F> Component for ClosureSource<F>
where
    F: Fn(u64) -> Option<Variable> + Send + Sync + 'static,
{
    fn label(&self) -> String {
        self.label.clone()
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.stream.clone()]
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        crate::component::run_source(
            &self.label,
            comm,
            hub,
            &self.stream,
            WriterOptions::default(),
            |comm, step| {
                Ok((self.produce)(step).map(|var| {
                    let meta = VariableMeta::describing(&var);
                    // Scalars cannot be partitioned among several source
                    // ranks (every rank would put the same one-element
                    // region); require a single-rank source for them.
                    assert!(
                        var.shape.ndims() > 0 || comm.size() == 1,
                        "a source producing a rank-0 (scalar) variable must run with 1 rank"
                    );
                    let region = default_partition(&var.shape, comm.size(), comm.rank());
                    let local = var.extract(&region).expect("partition fits the variable");
                    Chunk::new(meta, region, local.data).expect("partition chunk is consistent")
                }))
            },
        )
    }
}

/// An ad-hoc sink component built from a closure; rank 0 reads every
/// variable whole and hands the map to the closure.
struct ClosureSink<F> {
    label: String,
    stream: String,
    consume: F,
}

impl<F> Component for ClosureSink<F>
where
    F: Fn(u64, &BTreeMap<String, Variable>) + Send + Sync + 'static,
{
    fn label(&self) -> String {
        self.label.clone()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.stream.clone(), self.label.clone())]
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        crate::component::run_sink(
            &self.label,
            comm,
            hub,
            &self.stream,
            &self.label,
            |reader, comm, step| {
                let mut bytes_in = 0u64;
                if comm.rank() == 0 {
                    let mut vars = BTreeMap::new();
                    for name in reader.variables() {
                        let v = reader.get_whole(&name)?;
                        bytes_in += v.byte_len() as u64;
                        vars.insert(name, v);
                    }
                    (self.consume)(step, &vars);
                }
                Ok((bytes_in, Duration::ZERO))
            },
        )
    }
}

/// A problem found by [`Workflow::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WiringIssue {
    /// A stream is consumed but no component produces it: the readers
    /// would block until the hub's deadlock timeout.
    NoWriter {
        /// The dangling stream name.
        stream: String,
        /// Components that read it.
        readers: Vec<String>,
    },
    /// A stream is produced but nothing consumes it: the writer stalls
    /// once its buffer fills.
    NoReader {
        /// The unread stream name.
        stream: String,
        /// Components that write it.
        writers: Vec<String>,
    },
    /// Two components write the same stream; a stream has exactly one
    /// writer group.
    MultipleWriters {
        /// The contested stream name.
        stream: String,
        /// Components that write it.
        writers: Vec<String>,
    },
    /// Two components subscribe to one stream under the same reader-group
    /// name; their step accounting would interleave. Give one of them a
    /// distinct group via `with_reader_group` (and declare the subscriber
    /// count on the writer).
    DuplicateSubscription {
        /// The contested stream name.
        stream: String,
        /// The shared group name.
        group: String,
        /// Components sharing it.
        readers: Vec<String>,
    },
}

impl std::fmt::Display for WiringIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WiringIssue::NoWriter { stream, readers } => {
                write!(
                    f,
                    "stream {stream:?} is read by {readers:?} but written by nothing"
                )
            }
            WiringIssue::NoReader { stream, writers } => {
                write!(
                    f,
                    "stream {stream:?} is written by {writers:?} but read by nothing"
                )
            }
            WiringIssue::MultipleWriters { stream, writers } => {
                write!(f, "stream {stream:?} has multiple writers: {writers:?}")
            }
            WiringIssue::DuplicateSubscription {
                stream,
                group,
                readers,
            } => write!(
                f,
                "components {readers:?} all subscribe to stream {stream:?} as reader group \
                 {group:?}; give each a distinct group"
            ),
        }
    }
}

struct Entry {
    label: String,
    nranks: usize,
    component: Arc<dyn Component>,
    /// 1-based launch-script line this entry came from, when the workflow
    /// was assembled from a script; threaded into lint diagnostics.
    line: Option<usize>,
}

/// A workflow under assembly: components plus the stream hub that connects
/// them.
pub struct Workflow {
    hub: Arc<StreamHub>,
    entries: Vec<Entry>,
    /// Per-component fault-policy overrides, by label.
    policies: BTreeMap<String, FaultPolicy>,
    /// Reactive trigger clauses, evaluated against published signals.
    triggers: Vec<Trigger>,
    /// Trace config a `.sbw` spec declared; consulted when
    /// [`RunOptions::trace`] is `None` (before the `SB_TRACE` fallback).
    pub(crate) default_trace: Option<TraceConfig>,
    /// Hub timeout a `.sbw` spec declared; consulted when
    /// [`RunOptions::hub_timeout`] is `None`.
    pub(crate) default_hub_timeout: Option<Duration>,
}

impl Default for Workflow {
    fn default() -> Self {
        Workflow::new()
    }
}

impl Workflow {
    /// A workflow over a fresh stream hub.
    pub fn new() -> Workflow {
        Workflow::with_hub(StreamHub::new())
    }

    /// A workflow over an existing hub (lets callers attach out-of-band
    /// readers/writers, e.g. the bench harnesses).
    pub fn with_hub(hub: Arc<StreamHub>) -> Workflow {
        Workflow {
            hub,
            entries: Vec::new(),
            policies: BTreeMap::new(),
            triggers: Vec::new(),
            default_trace: None,
            default_hub_timeout: None,
        }
    }

    /// The hub components will rendezvous on.
    pub fn hub(&self) -> &Arc<StreamHub> {
        &self.hub
    }

    /// Adds a component with `nranks` ranks, deriving its label (repeated
    /// labels get `-2`, `-3`, … suffixes, mirroring the paper's
    /// "Dim-Reduce 1"/"Dim-Reduce 2").
    pub fn add<C: Component>(&mut self, nranks: usize, component: C) -> &mut Self {
        let base = component.label();
        let label = self.unique_label(base);
        self.add_labeled(label, nranks, component)
    }

    /// [`Workflow::add`], also recording the 1-based launch-script line
    /// the component came from (threaded into lint diagnostics).
    pub fn add_at<C: Component>(&mut self, nranks: usize, component: C, line: usize) -> &mut Self {
        let base = component.label();
        let label = self.unique_label(base);
        self.push_entry(label, nranks, Arc::new(component), Some(line))
    }

    /// Adds a component under an explicit label.
    pub fn add_labeled<C: Component>(
        &mut self,
        label: impl Into<String>,
        nranks: usize,
        component: C,
    ) -> &mut Self {
        self.push_entry(label.into(), nranks, Arc::new(component), None)
    }

    fn push_entry(
        &mut self,
        label: String,
        nranks: usize,
        component: Arc<dyn Component>,
        line: Option<usize>,
    ) -> &mut Self {
        assert!(nranks > 0, "a component needs at least one rank");
        assert!(
            self.entries.iter().all(|e| e.label != label),
            "duplicate component label {label:?}"
        );
        self.entries.push(Entry {
            label,
            nranks,
            component,
            line,
        });
        self
    }

    /// Adds an ad-hoc source producing one variable per step from a
    /// closure (`None` ends the stream). The closure runs identically on
    /// every rank, so it must be deterministic in `step`.
    pub fn add_source<F>(
        &mut self,
        label: impl Into<String>,
        nranks: usize,
        stream: impl Into<String>,
        produce: F,
    ) -> &mut Self
    where
        F: Fn(u64) -> Option<Variable> + Send + Sync + 'static,
    {
        let label = label.into();
        self.add_labeled(
            label.clone(),
            nranks,
            ClosureSource {
                label,
                stream: stream.into(),
                produce,
            },
        )
    }

    /// Adds an ad-hoc sink whose closure sees every variable of every step
    /// (on rank 0).
    pub fn add_sink<F>(
        &mut self,
        label: impl Into<String>,
        nranks: usize,
        stream: impl Into<String>,
        consume: F,
    ) -> &mut Self
    where
        F: Fn(u64, &BTreeMap<String, Variable>) + Send + Sync + 'static,
    {
        let label = label.into();
        self.add_labeled(
            label.clone(),
            nranks,
            ClosureSink {
                label,
                stream: stream.into(),
                consume,
            },
        )
    }

    fn unique_label(&self, base: String) -> String {
        if self.entries.iter().all(|e| e.label != base) {
            return base;
        }
        let mut n = 2;
        loop {
            let candidate = format!("{base}-{n}");
            if self.entries.iter().all(|e| e.label != candidate) {
                return candidate;
            }
            n += 1;
        }
    }

    /// Labels in launch order.
    pub fn labels(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.label.as_str()).collect()
    }

    /// Overrides the fault policy for the component labelled `label`
    /// (components without an override use the policy in
    /// [`RunOptions::fault_policy`]).
    pub fn set_fault_policy(&mut self, label: impl Into<String>, policy: FaultPolicy) -> &mut Self {
        self.policies.insert(label.into(), policy);
        self
    }

    /// Adds a reactive trigger clause: `when component.signal op value then
    /// action`, evaluated synchronously at each matching signal publication
    /// during [`Workflow::run_with`]. Triggers fire once; fired records land
    /// on [`WorkflowReport::triggers`].
    pub fn add_trigger(&mut self, trigger: Trigger) -> &mut Self {
        self.triggers.push(trigger);
        self
    }

    /// The declared trigger clauses, in declaration order.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Static workflow analysis: wiring diagnostics (dangling or contested
    /// streams and reader groups), subscription-cycle detection, and
    /// [`ArraySpec`](crate::analysis::ArraySpec) propagation through every
    /// component's declared [`signature`](Component::signature), catching
    /// contract violations (unknown labels, out-of-range axes, shape
    /// mismatches, degenerate histograms) and over-decomposition before
    /// any rank is launched.
    ///
    /// Components that declare nothing (custom `Component` impls using the
    /// default trait methods) propagate opaque streams, which silence the
    /// spec checks, so an empty result is strong evidence, not proof, of a
    /// well-formed workflow. Use [`AnalysisIssue::severity`] to separate
    /// fatal errors from advisories.
    pub fn validate(&self) -> Vec<AnalysisIssue> {
        analysis::analyze(&self.views(), &self.policies)
    }

    /// [`Workflow::validate`] as leveled, source-located
    /// [`Diagnostic`](crate::analysis::Diagnostic)s: issues are filtered
    /// and re-leveled by `config` (lints set to `allow` disappear), and
    /// each diagnostic carries the launch-script line of the offending
    /// component when the workflow was assembled from a script.
    pub fn lint(&self, config: &analysis::LintConfig) -> Vec<analysis::Diagnostic> {
        analysis::lint_entries(&self.views(), &self.policies, &Default::default(), config)
    }

    fn views(&self) -> Vec<EntryView<'_>> {
        self.entries
            .iter()
            .map(|e| EntryView {
                label: &e.label,
                nranks: e.nranks,
                component: e.component.as_ref(),
                line: e.line,
            })
            .collect()
    }

    /// Launches every component simultaneously (each rank on its own
    /// thread) under supervision and blocks until all of them finish,
    /// returning the paper's end-to-end measurements.
    ///
    /// `options` controls static validation ([`Validation`]), the default
    /// per-component [`FaultPolicy`] (override individual components with
    /// [`Workflow::set_fault_policy`]), and an optional hub-timeout
    /// override. Under the default options this behaves like the old
    /// `run()`: fail fast on fatal validation issues, abort the workflow on
    /// the first component failure — but the failure arrives as a typed
    /// [`WorkflowError`] and blocked peers are poisoned instead of left to
    /// time out.
    // The error carries the full failure context by value; a workflow
    // returns once per run, so the large-variant cost is irrelevant and
    // boxing would only hurt callers' pattern matching.
    #[allow(clippy::result_large_err)]
    pub fn run_with(self, options: RunOptions) -> Result<WorkflowReport, WorkflowError> {
        if options.validation == Validation::FailFast {
            let fatal: Vec<String> = self
                .validate()
                .into_iter()
                .filter(|i| i.severity() == Severity::Error)
                .map(|i| i.to_string())
                .collect();
            if !fatal.is_empty() {
                return Err(WorkflowError::Invalid { issues: fatal });
            }
        }
        let Workflow {
            hub,
            entries,
            policies,
            triggers,
            default_trace,
            default_hub_timeout,
        } = self;
        if let Some(timeout) = options.hub_timeout.or(default_hub_timeout) {
            hub.set_wait_timeout(timeout);
        }
        // Arm the tracer before any component thread spawns so the very
        // first step is on the timeline. Precedence: RunOptions, then the
        // spec's `[trace]` table, then `SB_TRACE` (non-empty, not "0"),
        // which enables the default config without touching call sites.
        let trace_config = options
            .trace
            .clone()
            .or(default_trace)
            .or_else(|| match std::env::var("SB_TRACE") {
                Ok(v) if !v.is_empty() && v != "0" => Some(TraceConfig::new()),
                _ => None,
            });
        if let Some(config) = &trace_config {
            hub.tracer().enable(config);
        }
        // One live policy slot per component, shared between its supervisor
        // (which re-reads it at each failure decision) and the trigger
        // engine (whose `raise_fault_policy` action replaces the contents).
        let policy_slots: BTreeMap<String, Arc<Mutex<FaultPolicy>>> = entries
            .iter()
            .map(|entry| {
                let policy = policies
                    .get(&entry.label)
                    .cloned()
                    .unwrap_or_else(|| options.fault_policy.clone());
                (entry.label.clone(), Arc::new(Mutex::new(policy)))
            })
            .collect();
        // Arm the trigger engine on the hub's signal board before any rank
        // spawns: the hook runs synchronously at each signal publication.
        let engine = (!triggers.is_empty()).then(|| {
            let components: BTreeMap<String, Arc<dyn Component>> = entries
                .iter()
                .map(|entry| (entry.label.clone(), Arc::clone(&entry.component)))
                .collect();
            Arc::new(TriggerEngine::new(
                triggers,
                components,
                Arc::clone(&hub),
                policy_slots.clone(),
            ))
        });
        if let Some(engine) = &engine {
            let observer = Arc::clone(engine);
            hub.signals()
                .arm(Box::new(move |component, signal, step, value| {
                    observer.observe(component, signal, step, value);
                }));
        }
        let start = Instant::now();
        let sup = Arc::new(Supervision::new(Arc::clone(&hub)));
        let supervisors: Vec<std::thread::JoinHandle<ComponentReport>> = entries
            .into_iter()
            .map(|entry| {
                let policy = Arc::clone(&policy_slots[&entry.label]);
                let sup = Arc::clone(&sup);
                std::thread::Builder::new()
                    .name(format!("supervisor/{}", entry.label))
                    .spawn(move || {
                        supervise(&entry.label, entry.nranks, entry.component, &policy, &sup)
                    })
                    .expect("spawning a supervisor thread")
            })
            .collect();
        let components: Vec<ComponentReport> = supervisors
            .into_iter()
            .map(|h| h.join().expect("a supervisor thread panicked"))
            .collect();
        let fired = match &engine {
            Some(engine) => {
                hub.signals().disarm();
                engine.take_fired()
            }
            None => Vec::new(),
        };
        let timeline = if trace_config.is_some() {
            let timeline = hub.tracer().drain();
            hub.tracer().disable();
            timeline
        } else {
            sb_stream::Timeline::default()
        };
        if let Some((label, attempts, error)) = sup.take_first_failure() {
            return Err(WorkflowError::ComponentFailed {
                label,
                attempts,
                error,
            });
        }
        Ok(WorkflowReport {
            elapsed: start.elapsed(),
            components,
            streams: hub.all_metrics(),
            timeline,
            triggers: fired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_data::{Buffer, Shape};

    fn counter_variable(step: u64, n: usize) -> Variable {
        let data: Vec<f64> = (0..n).map(|i| (i as u64 + step) as f64).collect();
        Variable::new("x", Shape::linear("n", n), Buffer::from(data)).unwrap()
    }

    #[test]
    fn source_sink_workflow_round_trips() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let mut wf = Workflow::new();
        wf.add_source("gen", 2, "w.fp", |step| {
            (step < 5).then(|| counter_variable(step, 12))
        });
        wf.add_sink("check", 3, "w.fp", move |step, vars| {
            let v = &vars["x"];
            assert_eq!(v.shape.total_len(), 12);
            assert_eq!(v.data.get_f64(3), (3 + step) as f64);
            seen2.fetch_add(1, Ordering::SeqCst);
        });
        let report = wf.run_with(RunOptions::default()).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 5);
        assert_eq!(report.component("gen").unwrap().stats.steps, 5);
        assert_eq!(report.component("check").unwrap().stats.steps, 5);
        assert_eq!(report.total_ranks(), 5);
        assert_eq!(report.streams.len(), 1);
        assert_eq!(report.streams[0].steps_consumed, 5);
    }

    #[test]
    fn labels_deduplicate() {
        let mut wf = Workflow::new();
        wf.add(1, crate::DimReduce::new(("a.fp", "x"), 0, 1, ("b.fp", "x")));
        wf.add(1, crate::DimReduce::new(("b.fp", "x"), 0, 1, ("c.fp", "x")));
        wf.add(1, crate::DimReduce::new(("c.fp", "x"), 0, 1, ("d.fp", "x")));
        assert_eq!(
            wf.labels(),
            vec!["dim-reduce", "dim-reduce-2", "dim-reduce-3"]
        );
    }

    #[test]
    #[should_panic(expected = "duplicate component label")]
    fn explicit_duplicate_labels_rejected() {
        let mut wf = Workflow::new();
        wf.add_source("s", 1, "a.fp", |_| None);
        wf.add_source("s", 1, "b.fp", |_| None);
    }

    #[test]
    fn validate_finds_wiring_problems() {
        let mut wf = Workflow::new();
        // select reads a stream nothing writes, and writes one nothing reads.
        wf.add(
            1,
            crate::Select::new(("ghost.fp", "x"), 0, ["a"], ("dead.fp", "y")),
        );
        let issues = wf.validate();
        assert_eq!(issues.len(), 2, "{issues:?}");
        assert!(issues.iter().any(|i| matches!(
            i,
            AnalysisIssue::Wiring(WiringIssue::NoWriter { stream, .. }) if stream == "ghost.fp"
        )));
        assert!(issues.iter().any(|i| matches!(
            i,
            AnalysisIssue::Wiring(WiringIssue::NoReader { stream, .. }) if stream == "dead.fp"
        )));
        assert!(issues[0].to_string().contains(".fp"));
    }

    #[test]
    fn validate_accepts_a_complete_pipeline() {
        let mut wf = Workflow::new();
        wf.add_source("gen", 1, "a.fp", |_| None);
        wf.add(1, crate::Magnitude::new(("a.fp", "x"), ("b.fp", "y")));
        wf.add(1, crate::Histogram::new(("b.fp", "y"), 4));
        assert!(wf.validate().is_empty(), "{:?}", wf.validate());
    }

    #[test]
    fn validate_flags_duplicate_writers() {
        let mut wf = Workflow::new();
        wf.add_source("gen-a", 1, "x.fp", |_| None);
        wf.add_source("gen-b", 1, "x.fp", |_| None);
        wf.add_sink("end", 1, "x.fp", |_, _| {});
        let issues = wf.validate();
        assert!(issues.iter().any(|i| matches!(
            i,
            AnalysisIssue::Wiring(WiringIssue::MultipleWriters { writers, .. })
                if writers.len() == 2
        )));
    }

    #[test]
    fn failing_component_surfaces_as_typed_error() {
        let hub = StreamHub::with_timeout(Duration::from_millis(200));
        let mut wf = Workflow::with_hub(hub);
        wf.add_source("gen", 1, "w.fp", |step| {
            (step < 1).then(|| counter_variable(step, 4))
        });
        // The sink asks for a variable that does not exist -> data error.
        wf.add(1, crate::Histogram::new(("w.fp", "missing"), 4));
        let err = wf.run_with(RunOptions::default()).unwrap_err();
        match &err {
            WorkflowError::ComponentFailed {
                label,
                attempts,
                error,
            } => {
                assert_eq!(label, "histogram");
                assert_eq!(*attempts, 1);
                assert!(
                    matches!(error, crate::ComponentError::Data { .. }),
                    "unexpected error: {error:?}"
                );
            }
            other => panic!("expected ComponentFailed, got {other:?}"),
        }
        assert!(err.to_string().contains("missing"), "{err}");
    }
}
