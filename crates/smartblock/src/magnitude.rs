//! The Magnitude component: per-row vector magnitudes (paper §III-D).
//!
//! Magnitude operates on a two-dimensional array where one dimension spans
//! the data points (particles, atoms) and the other spans the components of
//! one vector per point; it outputs the one-dimensional array of vector
//! magnitudes. Because the contract is always 2-d, the component takes only
//! stream/array names as parameters.

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::slab_partition;
use sb_data::{Buffer, Chunk, DType, DataError, DataResult, Region, Shape, Variable, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_transform, Component, StepOutput, StreamArray, TransformSpec};
use crate::error::ComponentResult;

/// Computes the Euclidean magnitude of each row vector of a 2-d array.
///
/// This is the pure kernel of the Magnitude component.
pub fn vector_magnitudes(var: &Variable) -> DataResult<Vec<f64>> {
    if var.shape.ndims() != 2 {
        return Err(DataError::RegionOutOfBounds {
            detail: format!(
                "magnitude expects a 2-d array, got rank {}",
                var.shape.ndims()
            ),
        });
    }
    let n = var.shape.size(0);
    let m = var.shape.size(1);
    let mut out = Vec::with_capacity(n);
    // Fast path: borrow f64 storage directly instead of widening per element.
    if let Some(data) = var.data.as_f64_slice() {
        for row in data.chunks_exact(m.max(1)) {
            out.push(row.iter().map(|x| x * x).sum::<f64>().sqrt());
        }
        if m == 0 {
            out.clear();
            out.resize(n, 0.0);
        }
    } else {
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..m {
                let x = var.data.get_f64(i * m + j);
                acc += x * x;
            }
            out.push(acc.sqrt());
        }
    }
    Ok(out)
}

/// The Magnitude workflow component.
#[derive(Debug, Clone)]
pub struct Magnitude {
    /// Input stream/array names (must be a 2-d array).
    pub input: StreamArray,
    /// Output stream/array names (a 1-d array of magnitudes).
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
}

impl Magnitude {
    /// Builds a Magnitude between the given endpoints.
    pub fn new<I: Into<StreamArray>, O: Into<StreamArray>>(input: I, output: O) -> Magnitude {
        Magnitude {
            input: input.into(),
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Overrides the output buffering policy.
    pub fn with_writer_options(mut self, options: WriterOptions) -> Magnitude {
        self.writer_options = options;
        self
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Magnitude {
        self.reader_group = group.into();
        self
    }
}

impl Component for Magnitude {
    fn label(&self) -> String {
        "magnitude".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{
            unary_transfer, ArraySpec, PartitionRule, ReadSpec, Signature, SpecError,
        };
        Signature::with_boxed_transfer(
            vec![ReadSpec::new(
                &self.input.stream,
                &self.input.array,
                PartitionRule::Along(0),
            )],
            unary_transfer(
                self.input.array.clone(),
                self.output.array.clone(),
                |spec| {
                    if spec.ndims() != 2 {
                        return Err(SpecError::RankMismatch {
                            expected: 2,
                            got: spec.ndims(),
                        });
                    }
                    Ok(ArraySpec::new(
                        vec![spec.dims[0].clone()],
                        sb_data::DType::F64,
                    ))
                },
            ),
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_transform(
            TransformSpec {
                label: "magnitude",
                input_stream: &self.input.stream,
                reader_group: &self.reader_group,
                output_stream: &self.output.stream,
                writer_options: self.writer_options,
            },
            comm,
            hub,
            |reader, comm| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                if meta.shape.ndims() != 2 {
                    return Err(DataError::RegionOutOfBounds {
                        detail: format!(
                            "magnitude expects 2-d input, stream carries rank {}",
                            meta.shape.ndims()
                        ),
                    }
                    .into());
                }
                // Partition the points dimension; every rank reads whole rows.
                let n = meta.shape.size(0);
                let region = slab_partition(&meta.shape, 0, comm.size(), comm.rank());
                let (off, count) = (region.offset()[0], region.count()[0]);
                let var = reader.get(&self.input.array, &region)?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                let mags = vector_magnitudes(&var)?;
                let compute = kernel_start.elapsed();

                let out_meta = VariableMeta::new(
                    self.output.array.clone(),
                    Shape::new(vec![sb_data::Dim::new(
                        meta.shape.dim_name(0).to_string(),
                        n,
                    )]),
                    DType::F64,
                );
                let chunk = Chunk::new(
                    out_meta,
                    Region::new(vec![off], vec![count]),
                    Buffer::F64(mags),
                )?;
                Ok(StepOutput {
                    chunk: Some(chunk),
                    bytes_in,
                    compute,
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_computes_row_magnitudes() {
        let v = Variable::new(
            "vel",
            Shape::of(&[("particles", 3), ("comp", 3)]),
            Buffer::F64(vec![3.0, 4.0, 0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 2.0]),
        )
        .unwrap();
        assert_eq!(vector_magnitudes(&v).unwrap(), vec![5.0, 0.0, 3.0]);
    }

    #[test]
    fn kernel_widens_non_f64_input() {
        let v = Variable::new(
            "vel",
            Shape::of(&[("p", 2), ("c", 2)]),
            Buffer::I32(vec![3, 4, 6, 8]),
        )
        .unwrap();
        assert_eq!(vector_magnitudes(&v).unwrap(), vec![5.0, 10.0]);
    }

    #[test]
    fn kernel_rejects_non_2d() {
        let v = Variable::new("x", Shape::linear("n", 3), Buffer::F64(vec![0.0; 3])).unwrap();
        assert!(vector_magnitudes(&v).is_err());
    }

    #[test]
    fn kernel_handles_empty_rows() {
        let v =
            Variable::new("vel", Shape::of(&[("p", 0), ("c", 3)]), Buffer::F64(vec![])).unwrap();
        assert_eq!(vector_magnitudes(&v).unwrap(), Vec::<f64>::new());
    }
}
