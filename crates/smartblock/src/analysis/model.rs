//! The analysis model: the component/stream graph every pass reads.
//!
//! [`Model::build`] runs once per lint: it indexes writers, readers and
//! subscriptions, topologically sorts the component graph (Kahn), and
//! propagates both [`StreamSpec`]s and static step counts from source
//! declarations through every component's [`Signature`]. Contract and
//! over-decomposition violations are discovered *during* propagation (they
//! are properties of the spec flow), so the model records them for the
//! contract pass to report; everything else is derived state the passes in
//! [`super::passes`] query.

use std::collections::{BTreeMap, BTreeSet};

use crate::component::Component;

use super::diagnostics::AnalysisIssue;
use super::spec::{Extent, StepContract, StreamSpec};

/// One workflow entry as the analyzer sees it.
pub(crate) struct EntryView<'a> {
    /// Deduplicated component label.
    pub(crate) label: &'a str,
    /// Rank count.
    pub(crate) nranks: usize,
    /// The component itself (for streams, subscriptions, signature).
    pub(crate) component: &'a dyn Component,
    /// 1-based launch-script line, when the workflow came from a script.
    pub(crate) line: Option<usize>,
}

/// Everything the passes need, computed once.
pub(crate) struct Model<'a> {
    /// The entries, in launch order.
    pub(crate) entries: &'a [EntryView<'a>],
    /// Stream → indices of entries writing it.
    pub(crate) writers: BTreeMap<String, Vec<usize>>,
    /// Stream → indices of entries reading it.
    pub(crate) readers: BTreeMap<String, Vec<usize>>,
    /// `(stream, reader group)` → labels subscribed under that group.
    pub(crate) subscriptions: BTreeMap<(String, String), Vec<String>>,
    /// Writer → reader edges for every stream both ends declare.
    pub(crate) edges: BTreeSet<(usize, usize)>,
    /// Kahn order of every entry not on (or downstream of) a cycle.
    pub(crate) topo_order: Vec<usize>,
    /// Propagated stream contents (uncontested streams only).
    pub(crate) specs: BTreeMap<String, StreamSpec>,
    /// Statically known step count per stream.
    pub(crate) steps: BTreeMap<String, u64>,
    /// Contract and over-decomposition issues found during propagation,
    /// in topological order; reported by the contract pass.
    pub(crate) propagation_issues: Vec<AnalysisIssue>,
}

impl<'a> Model<'a> {
    /// Labels of the given entry indices, in the given order.
    pub(crate) fn labels_of(&self, ids: &[usize]) -> Vec<String> {
        ids.iter()
            .map(|&i| self.entries[i].label.to_string())
            .collect()
    }

    /// Builds the model: graph indexing, topo sort, spec and step-count
    /// propagation.
    pub(crate) fn build(entries: &'a [EntryView<'a>]) -> Model<'a> {
        let mut writers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut readers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut subscriptions: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
        for (i, e) in entries.iter().enumerate() {
            for s in e.component.output_streams() {
                writers.entry(s).or_default().push(i);
            }
            for s in e.component.input_streams() {
                readers.entry(s).or_default().push(i);
            }
            for sub in e.component.input_subscriptions() {
                subscriptions
                    .entry(sub)
                    .or_default()
                    .push(e.label.to_string());
            }
        }

        // Edge writer -> reader for every stream both ends declare.
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (stream, producers) in &writers {
            if let Some(consumers) = readers.get(stream) {
                for &w in producers {
                    for &r in consumers {
                        edges.insert((w, r));
                    }
                }
            }
        }
        let topo_order = kahn_order(entries.len(), &edges);

        // Streams with several writers carry no single declaration; keep
        // them opaque (and their step counts unknown) rather than trusting
        // either writer.
        let contested: BTreeSet<&String> = writers
            .iter()
            .filter(|(_, p)| p.len() > 1)
            .map(|(s, _)| s)
            .collect();

        let mut specs: BTreeMap<String, StreamSpec> = BTreeMap::new();
        let mut steps: BTreeMap<String, u64> = BTreeMap::new();
        let mut propagation_issues = Vec::new();
        for &idx in &topo_order {
            let e = &entries[idx];
            let sig = e.component.signature();

            // Over-decomposition: more ranks than the partitioned dimension
            // has slices. Extent-1 dimensions are exempt — they are
            // inherently serial (the paper's GTCP pipeline runs multi-rank
            // Dim-Reduce on a selected, extent-1 property dimension) and
            // empty slab parts are supported at run time.
            for read in &sig.reads {
                let Some(StreamSpec::Known(arrays)) = specs.get(&read.stream) else {
                    continue;
                };
                let Some(spec) = arrays.get(&read.array) else {
                    continue;
                };
                let Some(d) = read.partition.resolve(spec.ndims()) else {
                    continue;
                };
                if let Extent::Fixed(extent) = spec.dims[d].extent {
                    if extent > 1 && e.nranks > extent {
                        propagation_issues.push(AnalysisIssue::OverDecomposed {
                            component: e.label.to_string(),
                            stream: read.stream.clone(),
                            array: read.array.clone(),
                            dim: spec.dims[d].name.clone(),
                            extent,
                            nranks: e.nranks,
                        });
                    }
                }
            }

            let input_streams = e.component.input_streams();
            let ins: Vec<StreamSpec> = input_streams
                .iter()
                .map(|s| specs.get(s).cloned().unwrap_or(StreamSpec::Opaque))
                .collect();
            let outs = e.component.output_streams();
            let out_specs = match &sig.transfer {
                None => vec![StreamSpec::Opaque; outs.len()],
                Some(transfer) => match transfer(&ins) {
                    Ok(v) if v.len() == outs.len() => v,
                    Ok(_) => vec![StreamSpec::Opaque; outs.len()],
                    Err(error) => {
                        propagation_issues.push(AnalysisIssue::Contract {
                            component: e.label.to_string(),
                            stream: input_streams.join(", "),
                            error,
                        });
                        vec![StreamSpec::Opaque; outs.len()]
                    }
                },
            };

            // Step-count propagation. A relative contract needs *every*
            // input's count: a join stops at the first end-of-stream, so an
            // unknown input may truncate the output below any known one.
            let distinct_inputs: BTreeSet<&String> = input_streams.iter().collect();
            let known_in: Vec<u64> = distinct_inputs
                .iter()
                .filter_map(|s| steps.get(*s))
                .copied()
                .collect();
            let all_known = !distinct_inputs.is_empty() && known_in.len() == distinct_inputs.len();
            let out_steps = match sig.steps {
                StepContract::Produces(n) => Some(n),
                StepContract::Unknown => None,
                StepContract::SameAsInput => {
                    all_known.then(|| known_in.iter().copied().min().unwrap_or(0))
                }
                StepContract::Decimates(stride) if stride >= 1 => {
                    all_known.then(|| known_in.iter().copied().min().unwrap_or(0) / stride)
                }
                StepContract::Decimates(_) => None,
            };

            for (stream, spec) in outs.iter().zip(out_specs) {
                if contested.contains(stream) {
                    continue;
                }
                specs.insert(stream.clone(), spec);
                if let Some(n) = out_steps {
                    steps.insert(stream.clone(), n);
                }
            }
        }

        Model {
            entries,
            writers,
            readers,
            subscriptions,
            edges,
            topo_order,
            specs,
            steps,
            propagation_issues,
        }
    }
}

/// Kahn's algorithm over `n` nodes; returns the topological order of every
/// node reachable without entering a cycle, lowest index first among ready
/// nodes (i.e. launch order is preserved where the graph allows).
pub(crate) fn kahn_order(n: usize, edges: &BTreeSet<(usize, usize)>) -> Vec<usize> {
    let mut indegree = vec![0usize; n];
    for &(_, b) in edges {
        indegree[b] += 1;
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &(a, b) in edges.range((i, 0)..(i + 1, 0)) {
            debug_assert_eq!(a, i);
            indegree[b] -= 1;
            if indegree[b] == 0 {
                ready.insert(b);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahn_handles_chains_and_cycles() {
        // 0 -> 1 -> 2, plus 3 <-> 4 cycling.
        let edges: BTreeSet<(usize, usize)> =
            [(0, 1), (1, 2), (3, 4), (4, 3)].into_iter().collect();
        let order = kahn_order(5, &edges);
        assert_eq!(order, vec![0, 1, 2]);
    }
}
