//! Structured diagnostics: the issue taxonomy, severity mapping, and the
//! rustc-style text and machine-readable JSON renderings.
//!
//! Every finding is an [`AnalysisIssue`] (the *what*, with typed fields)
//! wrapped in a [`Diagnostic`] (the *how to report it*: the effective
//! [`Level`] under the run's [`LintConfig`](super::LintConfig) and the
//! launch-script line it points at). A diagnostic renders two ways:
//!
//! * text — `script.sb:12: error[SB004]: components ...` — for humans;
//! * JSON — one object per diagnostic with `id`, `name`, `level`, `line`,
//!   `message` and a `fields` map — for CI, conforming to
//!   `schemas/smartblock.lint.v1.json`.
//!
//! The workspace is dependency-free, so the JSON is emitted (and, for
//! `sb-lint --check`, structurally validated) by hand, mirroring how
//! `sb-trace` treats `smartblock.trace.v1.json`.

use std::fmt;

use super::lints::{lint_by_id, Level, Lint};
use super::spec::SpecError;
use crate::runtime::WiringIssue;

/// How bad an [`AnalysisIssue`] is, derived from its lint's *default*
/// level (the pre-lint-engine severity vocabulary, kept for
/// [`crate::Workflow::validate`] compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable (an unread stream, interleaved step
    /// accounting, mostly-empty histogram bins).
    Warning,
    /// The workflow provably deadlocks or a component provably panics.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A problem found by static analysis ([`crate::Workflow::validate`],
/// [`crate::Workflow::lint`], or [`super::lint_script`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisIssue {
    /// The script does not parse, or a component constructor rejected its
    /// arguments outright (zero bins, empty fork). Script-level lint only.
    ScriptError {
        /// What went wrong.
        detail: String,
    },
    /// A stream-level wiring problem (dangling reader/writer, contested
    /// stream or reader group).
    Wiring(WiringIssue),
    /// Components whose subscriptions form a cycle: under blocking
    /// connects every member waits for another's first step, forever.
    Cycle {
        /// Labels of the components on the cycle, in launch order.
        components: Vec<String>,
    },
    /// A component's declared contract provably fails on its input.
    Contract {
        /// The violating component's label.
        component: String,
        /// Its input stream(s).
        stream: String,
        /// What the transfer function rejected.
        error: SpecError,
    },
    /// More ranks than the partitioned dimension has slices: the surplus
    /// ranks receive empty partitions every step.
    OverDecomposed {
        /// The over-provisioned component's label.
        component: String,
        /// The stream it reads.
        stream: String,
        /// The array it partitions.
        array: String,
        /// The partitioned dimension's name.
        dim: String,
        /// That dimension's fixed extent.
        extent: usize,
        /// The component's rank count.
        nranks: usize,
    },
    /// A multi-input component joins streams with provably different step
    /// counts: the component stops at the first end-of-stream, so the
    /// faster inputs' tail steps are silently dropped — or, under
    /// rendezvous writers, the faster side wedges.
    CadenceMismatch {
        /// The joining component's label.
        component: String,
        /// `(input stream, statically known step count)`, slowest first.
        rates: Vec<(String, u64)>,
    },
    /// A writer declares more reader groups (`groups=N`) than the script
    /// actually subscribes: every step is retained for subscribers that
    /// never come, the queue fills, and the writer wedges.
    StarvedWriter {
        /// The writing component's label.
        component: String,
        /// The over-declared output stream.
        stream: String,
        /// Reader groups the writer waits for.
        declared: usize,
        /// Reader groups the script subscribes.
        actual: usize,
        /// The subscribing groups, for the message.
        groups: Vec<String>,
    },
    /// A Restart policy on a component whose signature declares
    /// cross-step state: upstream cannot replay the steps committed before
    /// the crash, so the restarted component recomputes from a silently
    /// truncated window.
    RestartUnsound {
        /// The stateful component's label.
        component: String,
    },
    /// A Degrade policy on a terminal sink (no output streams): a failure
    /// ends the workflow "successfully" with the results truncated and no
    /// downstream component to notice.
    DegradeTerminal {
        /// The sink's label.
        component: String,
    },
    /// A Restart policy with `max_restarts == 0`: it behaves exactly like
    /// Abort, which is almost certainly not what was meant.
    ZeroRestartBudget {
        /// The component's label.
        component: String,
    },
    /// A fault policy names a component the script does not define.
    UnknownPolicyTarget {
        /// The dangling policy label.
        label: String,
        /// Components the script does define.
        known: Vec<String>,
    },
    /// A component is not assigned to any `#@ process` of the partition
    /// plan: no process would run it and every subscriber of its outputs
    /// blocks forever.
    UnassignedComponent {
        /// The orphaned component's label.
        component: String,
        /// The declared process names.
        processes: Vec<String>,
    },
    /// A component is assigned to more than one process: both would run
    /// it, double-writing its output streams.
    MultiplyAssigned {
        /// The contested component's label.
        component: String,
        /// The processes that claim it.
        processes: Vec<String>,
    },
    /// A `#@ process` directive names a component the script does not
    /// define.
    UnknownProcessMember {
        /// The process making the claim.
        process: String,
        /// The unknown member label.
        member: String,
        /// Components the script does define.
        known: Vec<String>,
    },
    /// Two `#@ process` directives use the same process name.
    DuplicateProcessName {
        /// The repeated name.
        process: String,
    },
    /// A stream crosses processes but the script declares no `#@
    /// transport` endpoint to carry it.
    MissingTransport {
        /// The cross-process stream.
        stream: String,
        /// The writing process.
        writer_process: String,
        /// A reading process on the other side.
        reader_process: String,
    },
    /// The declared transport endpoint can never be dialled (port 0).
    UnreachableEndpoint {
        /// The bad endpoint URL.
        url: String,
        /// Why it is unreachable.
        reason: String,
    },
    /// The script declares conflicting broker endpoints: every process
    /// must rendezvous on the same one.
    EndpointCollision {
        /// The distinct URLs declared.
        urls: Vec<String>,
    },
    /// A `.sbw` spec key or table the spec language does not define; the
    /// compiler ignores it, which usually means a typo silently changes
    /// behavior.
    SpecUnknownKey {
        /// The unknown key (or `[table]` header).
        key: String,
        /// The table it appeared in (`"(top level)"` for unknown tables).
        table: String,
    },
    /// A `.sbw` trigger clause references a component label the spec does
    /// not declare; the clause could never fire or act.
    SpecUndeclaredRef {
        /// The undeclared component label.
        reference: String,
    },
    /// Two `.sbw` constructs contradict each other (duplicate singleton
    /// tables, a component in two process groups, policy knobs the
    /// declared action ignores).
    SpecConflict {
        /// Human-readable description of the contradiction.
        detail: String,
    },
    /// An inline `#@ policy` or `#@ process` directive in a launch script;
    /// still supported, but a `.sbw` spec expresses the same thing in one
    /// lintable artifact.
    PreferSpec {
        /// The directive kind (`"policy"` or `"process"`).
        directive: String,
    },
    /// The estimated wire cost of a cross-process stream exceeds the
    /// threshold: fan-out and per-chunk metadata amplify every payload
    /// byte into several bytes on the wire.
    WireAmplification {
        /// The expensive stream.
        stream: String,
        /// Estimated amplification, in tenths (41 = 4.1x).
        amplification_tenths: u64,
        /// The warning threshold, in tenths.
        threshold_tenths: u64,
        /// Statically known payload bytes per step.
        payload_bytes: u64,
        /// Estimated bytes on the wire per step.
        wire_bytes: u64,
    },
}

impl AnalysisIssue {
    /// The registered lint this issue reports under.
    pub fn lint(&self) -> &'static Lint {
        let id = match self {
            AnalysisIssue::ScriptError { .. } => "SB000",
            AnalysisIssue::Wiring(WiringIssue::NoWriter { .. }) => "SB001",
            AnalysisIssue::Wiring(WiringIssue::NoReader { .. }) => "SB002",
            AnalysisIssue::Wiring(WiringIssue::MultipleWriters { .. }) => "SB003",
            AnalysisIssue::Wiring(WiringIssue::DuplicateSubscription { .. }) => "SB004",
            AnalysisIssue::Cycle { .. } => "SB005",
            AnalysisIssue::Contract {
                error: SpecError::DegenerateBins { .. },
                ..
            } => "SB007",
            AnalysisIssue::Contract { .. } => "SB006",
            AnalysisIssue::OverDecomposed { .. } => "SB008",
            AnalysisIssue::CadenceMismatch { .. } => "SB009",
            AnalysisIssue::StarvedWriter { .. } => "SB010",
            AnalysisIssue::RestartUnsound { .. } => "SB011",
            AnalysisIssue::DegradeTerminal { .. } => "SB012",
            AnalysisIssue::ZeroRestartBudget { .. } => "SB013",
            AnalysisIssue::UnknownPolicyTarget { .. } => "SB014",
            AnalysisIssue::UnassignedComponent { .. }
            | AnalysisIssue::MultiplyAssigned { .. }
            | AnalysisIssue::UnknownProcessMember { .. }
            | AnalysisIssue::DuplicateProcessName { .. } => "SB015",
            AnalysisIssue::MissingTransport { .. }
            | AnalysisIssue::UnreachableEndpoint { .. }
            | AnalysisIssue::EndpointCollision { .. } => "SB016",
            AnalysisIssue::WireAmplification { .. } => "SB017",
            AnalysisIssue::SpecUnknownKey { .. } => "SB018",
            AnalysisIssue::SpecUndeclaredRef { .. } => "SB019",
            AnalysisIssue::SpecConflict { .. } => "SB020",
            AnalysisIssue::PreferSpec { .. } => "SB021",
        };
        lint_by_id(id).expect("every issue maps to a registered lint")
    }

    /// Whether the issue is fatal under default levels
    /// ([`crate::Workflow::run_with`] refuses) or advisory.
    pub fn severity(&self) -> Severity {
        match self.lint().default_level {
            Level::Deny => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// The component label the issue is primarily about, if one is.
    pub fn component(&self) -> Option<&str> {
        match self {
            AnalysisIssue::Contract { component, .. }
            | AnalysisIssue::OverDecomposed { component, .. }
            | AnalysisIssue::CadenceMismatch { component, .. }
            | AnalysisIssue::StarvedWriter { component, .. }
            | AnalysisIssue::RestartUnsound { component }
            | AnalysisIssue::DegradeTerminal { component }
            | AnalysisIssue::ZeroRestartBudget { component }
            | AnalysisIssue::UnassignedComponent { component, .. }
            | AnalysisIssue::MultiplyAssigned { component, .. } => Some(component),
            AnalysisIssue::UnknownPolicyTarget { label, .. } => Some(label),
            _ => None,
        }
    }

    /// The stream the issue is primarily about, if one is.
    pub fn stream(&self) -> Option<&str> {
        match self {
            AnalysisIssue::Wiring(
                WiringIssue::NoWriter { stream, .. }
                | WiringIssue::NoReader { stream, .. }
                | WiringIssue::MultipleWriters { stream, .. }
                | WiringIssue::DuplicateSubscription { stream, .. },
            ) => Some(stream),
            AnalysisIssue::Contract { stream, .. }
            | AnalysisIssue::OverDecomposed { stream, .. }
            | AnalysisIssue::StarvedWriter { stream, .. }
            | AnalysisIssue::MissingTransport { stream, .. }
            | AnalysisIssue::WireAmplification { stream, .. } => Some(stream),
            _ => None,
        }
    }

    /// Machine-readable extra fields for the JSON rendering, beyond the
    /// common `id`/`name`/`level`/`line`/`message` keys.
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        let mut fields = Vec::new();
        if let Some(c) = self.component() {
            fields.push(("component", c.to_string()));
        }
        if let Some(s) = self.stream() {
            fields.push(("stream", s.to_string()));
        }
        match self {
            AnalysisIssue::OverDecomposed { extent, nranks, .. } => {
                fields.push(("extent", extent.to_string()));
                fields.push(("nranks", nranks.to_string()));
            }
            AnalysisIssue::CadenceMismatch { rates, .. } => {
                for (stream, steps) in rates {
                    fields.push(("rate", format!("{stream}={steps}")));
                }
            }
            AnalysisIssue::StarvedWriter {
                declared, actual, ..
            } => {
                fields.push(("declared", declared.to_string()));
                fields.push(("actual", actual.to_string()));
            }
            AnalysisIssue::MissingTransport {
                writer_process,
                reader_process,
                ..
            } => {
                fields.push(("writer-process", writer_process.clone()));
                fields.push(("reader-process", reader_process.clone()));
            }
            AnalysisIssue::UnreachableEndpoint { url, .. } => {
                fields.push(("url", url.clone()));
            }
            AnalysisIssue::EndpointCollision { urls } => {
                for url in urls {
                    fields.push(("url", url.clone()));
                }
            }
            AnalysisIssue::WireAmplification {
                amplification_tenths,
                threshold_tenths,
                payload_bytes,
                wire_bytes,
                ..
            } => {
                fields.push(("amplification", render_tenths(*amplification_tenths)));
                fields.push(("threshold", render_tenths(*threshold_tenths)));
                fields.push(("payload-bytes", payload_bytes.to_string()));
                fields.push(("wire-bytes", wire_bytes.to_string()));
            }
            AnalysisIssue::UnknownProcessMember {
                process, member, ..
            } => {
                fields.push(("process", process.clone()));
                fields.push(("member", member.clone()));
            }
            AnalysisIssue::DuplicateProcessName { process } => {
                fields.push(("process", process.clone()));
            }
            AnalysisIssue::SpecUnknownKey { key, table } => {
                fields.push(("key", key.clone()));
                fields.push(("table", table.clone()));
            }
            AnalysisIssue::SpecUndeclaredRef { reference } => {
                fields.push(("reference", reference.clone()));
            }
            AnalysisIssue::PreferSpec { directive } => {
                fields.push(("directive", directive.clone()));
            }
            _ => {}
        }
        fields
    }
}

/// `41` → `"4.1"`.
fn render_tenths(tenths: u64) -> String {
    format!("{}.{}", tenths / 10, tenths % 10)
}

impl fmt::Display for AnalysisIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisIssue::ScriptError { detail } => write!(f, "{detail}"),
            AnalysisIssue::Wiring(w) => w.fmt(f),
            AnalysisIssue::Cycle { components } => write!(
                f,
                "components {components:?} subscribe to each other in a cycle; every member \
                 blocks on another's first step, so the workflow deadlocks"
            ),
            AnalysisIssue::Contract {
                component,
                stream,
                error,
            } => write!(f, "component {component:?} (input {stream:?}): {error}"),
            AnalysisIssue::OverDecomposed {
                component,
                stream,
                array,
                dim,
                extent,
                nranks,
            } => write!(
                f,
                "component {component:?} runs {nranks} ranks but partitions {stream}:{array} \
                 along dimension {dim:?} of extent {extent}; at most {extent} ranks can \
                 receive data"
            ),
            AnalysisIssue::CadenceMismatch { component, rates } => {
                write!(
                    f,
                    "component {component:?} joins streams of different step counts:"
                )?;
                for (stream, steps) in rates {
                    write!(f, " {stream}={steps}")?;
                }
                write!(
                    f,
                    "; the join stops at the first end-of-stream and the faster inputs' \
                     remaining steps are dropped"
                )
            }
            AnalysisIssue::StarvedWriter {
                component,
                stream,
                declared,
                actual,
                groups,
            } => write!(
                f,
                "component {component:?} declares groups={declared} on stream {stream:?} but \
                 the script subscribes only {actual} group(s) {groups:?}; every step waits for \
                 subscribers that never come and the writer wedges once its queue fills"
            ),
            AnalysisIssue::RestartUnsound { component } => write!(
                f,
                "component {component:?} has a Restart policy but carries state across steps; \
                 its upstream cannot replay committed steps, so a restart silently recomputes \
                 from a truncated window — use Abort or Degrade"
            ),
            AnalysisIssue::DegradeTerminal { component } => write!(
                f,
                "component {component:?} is a terminal sink with a Degrade policy; on failure \
                 the workflow ends \"successfully\" with the results silently truncated"
            ),
            AnalysisIssue::ZeroRestartBudget { component } => write!(
                f,
                "component {component:?} has a Restart policy with max_restarts=0, which \
                 behaves exactly like Abort"
            ),
            AnalysisIssue::UnknownPolicyTarget { label, known } => write!(
                f,
                "fault policy targets component {label:?} but the script defines {known:?}"
            ),
            AnalysisIssue::UnassignedComponent {
                component,
                processes,
            } => write!(
                f,
                "component {component:?} is not assigned to any process (declared: \
                 {processes:?}); nothing would run it and its subscribers block forever"
            ),
            AnalysisIssue::MultiplyAssigned {
                component,
                processes,
            } => write!(
                f,
                "component {component:?} is assigned to processes {processes:?}; each would \
                 run it and double-write its output streams"
            ),
            AnalysisIssue::UnknownProcessMember {
                process,
                member,
                known,
            } => write!(
                f,
                "process {process:?} claims component {member:?} but the script defines {known:?}"
            ),
            AnalysisIssue::DuplicateProcessName { process } => {
                write!(f, "process name {process:?} is declared twice")
            }
            AnalysisIssue::MissingTransport {
                stream,
                writer_process,
                reader_process,
            } => write!(
                f,
                "stream {stream:?} crosses from process {writer_process:?} to process \
                 {reader_process:?} but the script declares no `#@ transport` endpoint \
                 (tcp://host:port or shm://DIR) to carry it"
            ),
            AnalysisIssue::UnreachableEndpoint { url, reason } => {
                write!(
                    f,
                    "transport endpoint {url:?} can never be dialled: {reason}"
                )
            }
            AnalysisIssue::EndpointCollision { urls } => write!(
                f,
                "the script declares conflicting transport endpoints {urls:?}; every process \
                 must rendezvous on the same broker"
            ),
            AnalysisIssue::SpecUnknownKey { key, table } => write!(
                f,
                "unknown key {key:?} in {table}; the spec compiler ignores it"
            ),
            AnalysisIssue::SpecUndeclaredRef { reference } => write!(
                f,
                "trigger references component {reference:?} but the spec declares no such \
                 component; the clause could never fire or act"
            ),
            AnalysisIssue::SpecConflict { detail } => f.write_str(detail),
            AnalysisIssue::PreferSpec { directive } => write!(
                f,
                "inline `#@ {directive}` directive; a declarative `.sbw` spec expresses the \
                 same thing in one lintable artifact"
            ),
            AnalysisIssue::WireAmplification {
                stream,
                amplification_tenths,
                threshold_tenths,
                payload_bytes,
                wire_bytes,
            } => write!(
                f,
                "stream {stream:?} is estimated to cost {}x its payload on the wire \
                 ({payload_bytes} payload bytes -> ~{wire_bytes} wire bytes per step, \
                 threshold {}x); reduce fan-out or move the consumers into the writer's process",
                render_tenths(*amplification_tenths),
                render_tenths(*threshold_tenths),
            ),
        }
    }
}

/// One reportable finding: the issue, its effective level under the run's
/// configuration, and the launch-script line it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The underlying typed issue.
    pub issue: AnalysisIssue,
    /// Effective level after [`super::LintConfig`] overrides.
    pub level: Level,
    /// 1-based launch-script line the issue points at, when the workflow
    /// came from a script.
    pub line: Option<usize>,
}

impl Diagnostic {
    /// The registered lint this diagnostic reports under.
    pub fn lint(&self) -> &'static Lint {
        self.issue.lint()
    }

    /// The stable `SBxxx` ID.
    pub fn id(&self) -> &'static str {
        self.lint().id
    }

    /// The human-readable message (the issue's `Display`).
    pub fn message(&self) -> String {
        self.issue.to_string()
    }

    /// The rustc-style one-line text rendering:
    /// `script.sb:12: error[SB004]: components ...`.
    pub fn render_text(&self, source: &str) -> String {
        let lint = self.lint();
        match self.line {
            Some(line) => format!(
                "{source}:{line}: {}[{}]: {}",
                self.level, lint.id, self.issue
            ),
            None => format!("{source}: {}[{}]: {}", self.level, lint.id, self.issue),
        }
    }

    /// The JSON object rendering (one object, no trailing newline),
    /// conforming to `schemas/smartblock.lint.v1.json`.
    pub fn render_json(&self) -> String {
        let lint = self.lint();
        let mut out = String::from("{");
        push_json_str(&mut out, "id", lint.id);
        out.push(',');
        push_json_str(&mut out, "name", lint.name);
        out.push(',');
        push_json_str(&mut out, "level", &self.level.to_string());
        out.push(',');
        match self.line {
            Some(line) => out.push_str(&format!("\"line\":{line}")),
            None => out.push_str("\"line\":null"),
        }
        out.push(',');
        push_json_str(&mut out, "message", &self.message());
        out.push_str(",\"fields\":{");
        // Repeated keys (multi-valued fields) are indexed: rate, rate-2, ...
        let mut seen: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for (i, (key, value)) in self.issue.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let n = seen.entry(key).or_insert(0);
            *n += 1;
            let key = if *n == 1 {
                (*key).to_string()
            } else {
                format!("{key}-{n}")
            };
            push_json_str(&mut out, &key, value);
        }
        out.push_str("}}");
        out
    }
}

/// Appends `"key":"escaped value"` to `out`.
fn push_json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The lint results for one script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptLint {
    /// The script's display name (path, or `<stdin>`).
    pub name: String,
    /// Diagnostics in pass order ([`Level::Allow`] already filtered out).
    pub diagnostics: Vec<Diagnostic>,
}

impl ScriptLint {
    /// Diagnostics at [`Level::Deny`].
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Diagnostics at [`Level::Warn`].
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }

    /// The text rendering, one line per diagnostic.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_text(&self.name));
            out.push('\n');
        }
        out
    }

    /// The JSON object for this script within a report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        push_json_str(&mut out, "script", &self.name);
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.render_json());
        }
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{}}}",
            self.errors(),
            self.warnings()
        ));
        out
    }
}

/// Renders the full `smartblock.lint.v1` report over several scripts.
pub fn render_report_json(scripts: &[ScriptLint]) -> String {
    let errors: usize = scripts.iter().map(ScriptLint::errors).sum();
    let warnings: usize = scripts.iter().map(ScriptLint::warnings).sum();
    let mut out = String::from("{\"schema\":\"smartblock.lint.v1\",\"scripts\":[");
    for (i, s) in scripts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.render_json());
    }
    out.push_str(&format!("],\"errors\":{errors},\"warnings\":{warnings}}}"));
    out.push('\n');
    out
}

/// String-level schema check of a `smartblock.lint.v1` report, mirroring
/// the checked-in JSON schema without needing a JSON parser (the workspace
/// is dependency-free). Used by `sb-lint --check` and CI.
pub fn check_report(text: &str) -> Result<(), String> {
    let text = text.trim();
    if !text.starts_with('{') || !text.ends_with('}') {
        return Err("report is not a JSON object".into());
    }
    for key in [
        "\"schema\":\"smartblock.lint.v1\"",
        "\"scripts\":[",
        "\"errors\":",
        "\"warnings\":",
    ] {
        if !text.contains(key) {
            return Err(format!("report is missing {key}"));
        }
    }
    // Balanced braces/brackets outside strings: a cheap well-formedness
    // proxy that catches truncated output.
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in text.chars() {
        if in_str {
            match (esc, c) {
                (true, _) => esc = false,
                (false, '\\') => esc = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err("unbalanced brackets".into());
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unbalanced brackets or unterminated string".into());
    }
    // Every diagnostic id must be a registered lint.
    let mut rest = text;
    while let Some(pos) = rest.find("\"id\":\"") {
        rest = &rest[pos + 6..];
        let end = rest.find('"').ok_or("unterminated id string")?;
        let id = &rest[..end];
        if lint_by_id(id).is_none() {
            return Err(format!("unknown lint id {id:?} in report"));
        }
        for key in [
            "\"name\":",
            "\"level\":",
            "\"line\":",
            "\"message\":",
            "\"fields\":",
        ] {
            if !rest.contains(key) {
                return Err(format!("diagnostic {id} is missing {key}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            issue: AnalysisIssue::Wiring(WiringIssue::NoWriter {
                stream: "ghost.fp".into(),
                readers: vec!["select".into()],
            }),
            level: Level::Deny,
            line: Some(3),
        }
    }

    #[test]
    fn severity_split_matches_the_documented_model() {
        let warning = AnalysisIssue::Wiring(WiringIssue::NoReader {
            stream: "s".into(),
            writers: vec![],
        });
        assert_eq!(warning.severity(), Severity::Warning);
        let error = AnalysisIssue::Cycle { components: vec![] };
        assert_eq!(error.severity(), Severity::Error);
        let degenerate = AnalysisIssue::Contract {
            component: "h".into(),
            stream: "s".into(),
            error: SpecError::DegenerateBins {
                bins: 100,
                elements: 5,
            },
        };
        assert_eq!(degenerate.severity(), Severity::Warning);
        assert_eq!(degenerate.lint().id, "SB007");
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let d = sample();
        assert_eq!(
            d.render_text("wf.sb"),
            "wf.sb:3: error[SB001]: stream \"ghost.fp\" is read by [\"select\"] but written \
             by nothing"
        );
        let mut unlined = d;
        unlined.line = None;
        assert!(unlined
            .render_text("wf.sb")
            .starts_with("wf.sb: error[SB001]:"));
    }

    #[test]
    fn json_rendering_escapes_and_validates() {
        let report = render_report_json(&[ScriptLint {
            name: "a \"quoted\"\npath.sb".into(),
            diagnostics: vec![sample()],
        }]);
        assert!(report.contains("\\\"quoted\\\"\\npath.sb"));
        assert!(report.contains("\"id\":\"SB001\""));
        assert!(report.contains("\"line\":3"));
        assert!(report.contains("\"errors\":1"));
        check_report(&report).unwrap();
    }

    #[test]
    fn check_report_rejects_malformed_documents() {
        assert!(check_report("not json").is_err());
        assert!(check_report("{\"schema\":\"smartblock.lint.v1\"}").is_err());
        let truncated = "{\"schema\":\"smartblock.lint.v1\",\"scripts\":[{\"errors\":0,";
        assert!(check_report(truncated).is_err());
        let bad_id = "{\"schema\":\"smartblock.lint.v1\",\"scripts\":[{\"diagnostics\":\
                      [{\"id\":\"SB999\",\"name\":\"x\",\"level\":\"error\",\"line\":null,\
                      \"message\":\"m\",\"fields\":{}}],\"errors\":1,\"warnings\":0}],\
                      \"errors\":1,\"warnings\":0}";
        assert!(check_report(bad_id).is_err());
    }

    #[test]
    fn multi_valued_fields_get_indexed_keys() {
        let d = Diagnostic {
            issue: AnalysisIssue::CadenceMismatch {
                component: "combine".into(),
                rates: vec![("a.fp".into(), 2), ("b.fp".into(), 4)],
            },
            level: Level::Deny,
            line: None,
        };
        let json = d.render_json();
        assert!(json.contains("\"rate\":\"a.fp=2\""), "{json}");
        assert!(json.contains("\"rate-2\":\"b.fp=4\""), "{json}");
    }
}
