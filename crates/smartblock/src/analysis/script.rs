//! Script-level linting: [`lint_script`] runs the full pipeline over a
//! launch script, producing [`Diagnostic`]s with source lines.
//!
//! On top of the model-level passes shared with
//! [`Workflow::lint`](crate::Workflow::lint), four passes exist only
//! here because they read launch-script artifacts a programmatic
//! workflow does not carry:
//!
//! - **starvation** (SB010): a `groups=N` writer declaration against the
//!   reader groups the script actually subscribes;
//! - **partition plan** (SB015): `#@ process` assignments must cover every
//!   component exactly once;
//! - **transport** (SB016): cross-process streams need a usable `tcp://` or `shm://`
//!   endpoint, and several `#@ transport` lines must agree;
//! - **wire cost** (SB017): estimated bytes-on-the-wire per payload byte
//!   of each cross-process stream, from the propagated specs.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::component::Component;
use crate::launch::{parse_script_with_directives, Program, ScriptDirectives};
use crate::supervisor::FaultPolicy;
use crate::workflows::instantiate_entry;

use super::diagnostics::{AnalysisIssue, Diagnostic, ScriptLint};
use super::lints::{Level, LintConfig};
use super::model::{EntryView, Model};
use super::spec::StreamSpec;
use super::{lint_entries, PolicyLines};

/// Wire amplification (in tenths) above which SB017 fires: 6.0× the
/// payload. The TCP benchmark (`BENCH_tcp.json`) measures a flat ~4×
/// for well-shaped streams, so 6× of headroom separates protocol
/// overhead from a wiring problem (tiny payloads fanned out widely).
pub const WIRE_AMPLIFICATION_THRESHOLD_TENTHS: u64 = 60;

/// Fixed per-step envelope bytes the wire estimate charges each rank for
/// framing, handshakes and step control, on top of the self-describing
/// metadata derived from the spec.
const STEP_ENVELOPE_BYTES: u64 = 64;

/// One successfully instantiated script entry plus its lint-relevant
/// script artifacts.
struct BuiltEntry {
    label: String,
    nranks: usize,
    component: Box<dyn Component>,
    line: usize,
    /// `groups=N` declared on the writer line, when parseable.
    declared_groups: Option<usize>,
}

/// Lints one launch script end to end. `name` is only used for rendering
/// (the `script.sh:12:` prefix); `config` filters and re-levels lints.
pub fn lint_script(name: &str, text: &str, config: &LintConfig) -> ScriptLint {
    lint_script_impl(name, text, config, true)
}

/// Lints one `.sbw` workflow spec end to end: spec-level issues
/// (SB018–SB020) plus every script-level pass over the spec's compiled
/// form. Both layers report `.sbw` line numbers — the compiled script
/// preserves them by construction.
pub fn lint_spec(name: &str, text: &str, config: &LintConfig) -> ScriptLint {
    let mut lint = ScriptLint {
        name: name.to_string(),
        diagnostics: Vec::new(),
    };
    let spec = match crate::spec::WorkflowSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => {
            let issue = AnalysisIssue::ScriptError { detail: e.detail };
            let level = config.level_for(issue.lint());
            if level != Level::Allow {
                lint.diagnostics.push(Diagnostic {
                    issue,
                    level,
                    line: Some(e.line),
                });
            }
            return lint;
        }
    };
    for issue in &spec.issues {
        let line = Some(issue.line());
        let issue = match issue.clone() {
            crate::spec::SpecIssue::UnknownKey { key, table, .. } => {
                AnalysisIssue::SpecUnknownKey { key, table }
            }
            crate::spec::SpecIssue::UndeclaredTriggerRef { reference, .. } => {
                AnalysisIssue::SpecUndeclaredRef { reference }
            }
            crate::spec::SpecIssue::Conflict { detail, .. } => {
                AnalysisIssue::SpecConflict { detail }
            }
        };
        let level = config.level_for(issue.lint());
        if level != Level::Allow {
            lint.diagnostics.push(Diagnostic { issue, level, line });
        }
    }
    // The directives in the compiled script are the spec's own, so the
    // prefer-spec nudge (SB021) stays off on this path.
    lint.diagnostics
        .extend(lint_script_impl(name, &spec.script, config, false).diagnostics);
    lint
}

/// The shared body of [`lint_script`] and [`lint_spec`];
/// `flag_inline_directives` gates SB021 (only launch scripts written by
/// hand should be nudged toward `.sbw`).
fn lint_script_impl(
    name: &str,
    text: &str,
    config: &LintConfig,
    flag_inline_directives: bool,
) -> ScriptLint {
    let mut lint = ScriptLint {
        name: name.to_string(),
        diagnostics: Vec::new(),
    };
    let push = |lint: &mut ScriptLint, issue: AnalysisIssue, line: Option<usize>| {
        let level = config.level_for(issue.lint());
        if level != Level::Allow {
            lint.diagnostics.push(Diagnostic { issue, level, line });
        }
    };

    let (entries, directives) = match parse_script_with_directives(text) {
        Ok(parsed) => parsed,
        Err(e) => {
            push(
                &mut lint,
                AnalysisIssue::ScriptError { detail: e.detail },
                Some(e.line),
            );
            return lint;
        }
    };

    if flag_inline_directives {
        for p in &directives.policies {
            push(
                &mut lint,
                AnalysisIssue::PreferSpec {
                    directive: "policy".to_string(),
                },
                Some(p.line),
            );
        }
        for p in &directives.processes {
            push(
                &mut lint,
                AnalysisIssue::PreferSpec {
                    directive: "process".to_string(),
                },
                Some(p.line),
            );
        }
    }

    // Instantiate every entry, trapping constructor panics (a histogram
    // with zero bins, a non-integer option) as SB000 on the entry's line.
    // Labels are derived exactly as `Workflow::add` derives them so plan
    // members and policy targets match the runtime's names.
    let mut built: Vec<BuiltEntry> = Vec::new();
    let mut constructor_failed = false;
    for entry in &entries {
        match catch_unwind(AssertUnwindSafe(|| instantiate_entry(entry))) {
            Ok(component) => {
                let base = component.label();
                let mut label = base.clone();
                let mut n = 2;
                while built.iter().any(|b| b.label == label) {
                    label = format!("{base}-{n}");
                    n += 1;
                }
                let declared_groups = match &entry.program {
                    Program::Simulation { params, .. } => params.get("groups"),
                    _ => entry.options.get("groups"),
                }
                .and_then(|g| g.parse::<usize>().ok());
                built.push(BuiltEntry {
                    label,
                    nranks: entry.nranks,
                    component,
                    line: entry.line,
                    declared_groups,
                });
            }
            Err(payload) => {
                constructor_failed = true;
                push(
                    &mut lint,
                    AnalysisIssue::ScriptError {
                        detail: format!(
                            "component rejected its arguments: {}",
                            panic_message(&payload)
                        ),
                    },
                    Some(entry.line),
                );
            }
        }
    }
    // A half-built workflow would cascade into spurious wiring issues
    // (the failed component's streams look unwired); stop at SB000.
    if constructor_failed {
        return lint;
    }

    let policies: BTreeMap<String, FaultPolicy> = directives
        .policies
        .iter()
        .map(|p| (p.label.clone(), p.policy.clone()))
        .collect();
    let policy_lines: PolicyLines = directives
        .policies
        .iter()
        .map(|p| (p.label.clone(), p.line))
        .collect();

    let views: Vec<EntryView<'_>> = built
        .iter()
        .map(|b| EntryView {
            label: &b.label,
            nranks: b.nranks,
            component: b.component.as_ref(),
            line: Some(b.line),
        })
        .collect();
    lint.diagnostics
        .extend(lint_entries(&views, &policies, &policy_lines, config));

    let model = Model::build(&views);
    starvation_pass(&model, &built, |issue, line| push(&mut lint, issue, line));
    let assignment = plan_pass(&model, &built, &directives, |issue, line| {
        push(&mut lint, issue, line)
    });
    transport_pass(&model, &built, &directives, &assignment, |issue, line| {
        push(&mut lint, issue, line)
    });
    wire_cost_pass(&model, &built, &assignment, |issue, line| {
        push(&mut lint, issue, line)
    });
    lint
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "constructor panicked".to_string()
    }
}

/// SB010: writer declares more reader groups than the script subscribes.
fn starvation_pass(
    model: &Model<'_>,
    built: &[BuiltEntry],
    mut push: impl FnMut(AnalysisIssue, Option<usize>),
) {
    for b in built {
        let Some(declared) = b.declared_groups else {
            continue;
        };
        for stream in b.component.output_streams() {
            let groups: Vec<String> = model
                .subscriptions
                .keys()
                .filter(|(s, _)| *s == stream)
                .map(|(_, g)| g.clone())
                .collect();
            if declared > groups.len() {
                push(
                    AnalysisIssue::StarvedWriter {
                        component: b.label.clone(),
                        stream,
                        declared,
                        actual: groups.len(),
                        groups,
                    },
                    Some(b.line),
                );
            }
        }
    }
}

/// SB015: every component in exactly one process. Returns the label →
/// process assignment for uniquely assigned components (empty when the
/// script declares no processes).
fn plan_pass(
    _model: &Model<'_>,
    built: &[BuiltEntry],
    directives: &ScriptDirectives,
    mut push: impl FnMut(AnalysisIssue, Option<usize>),
) -> BTreeMap<String, String> {
    let mut assignment = BTreeMap::new();
    if directives.processes.is_empty() {
        return assignment;
    }
    let labels: BTreeSet<&str> = built.iter().map(|b| b.label.as_str()).collect();
    let known: Vec<String> = built.iter().map(|b| b.label.clone()).collect();
    let mut seen = BTreeSet::new();
    for proc in &directives.processes {
        if !seen.insert(proc.name.as_str()) {
            push(
                AnalysisIssue::DuplicateProcessName {
                    process: proc.name.clone(),
                },
                Some(proc.line),
            );
        }
        for member in &proc.members {
            if !labels.contains(member.as_str()) {
                push(
                    AnalysisIssue::UnknownProcessMember {
                        process: proc.name.clone(),
                        member: member.clone(),
                        known: known.clone(),
                    },
                    Some(proc.line),
                );
            }
        }
    }
    let process_names: Vec<String> = directives
        .processes
        .iter()
        .map(|p| p.name.clone())
        .collect();
    for b in built {
        let assigned: Vec<String> = directives
            .processes
            .iter()
            .filter(|p| p.members.contains(&b.label))
            .map(|p| p.name.clone())
            .collect();
        match assigned.len() {
            0 => push(
                AnalysisIssue::UnassignedComponent {
                    component: b.label.clone(),
                    processes: process_names.clone(),
                },
                Some(b.line),
            ),
            1 => {
                assignment.insert(b.label.clone(), assigned.into_iter().next().unwrap());
            }
            _ => push(
                AnalysisIssue::MultiplyAssigned {
                    component: b.label.clone(),
                    processes: assigned,
                },
                Some(b.line),
            ),
        }
    }
    assignment
}

/// SB016: endpoint collisions, unconnectable endpoints, and cross-process
/// streams with no transport at all.
fn transport_pass(
    model: &Model<'_>,
    built: &[BuiltEntry],
    directives: &ScriptDirectives,
    assignment: &BTreeMap<String, String>,
    mut push: impl FnMut(AnalysisIssue, Option<usize>),
) {
    let mut distinct: Vec<&str> = Vec::new();
    let mut collision_line = None;
    for (url, line) in &directives.transports {
        if !distinct.contains(&url.as_str()) {
            if !distinct.is_empty() && collision_line.is_none() {
                collision_line = Some(*line);
            }
            distinct.push(url);
        }
        // `validate_transport_url` accepts any u16 port at parse time;
        // port 0 survives parsing but is never connectable. Only tcp://
        // URLs carry a port — an shm:// rendezvous directory may legally
        // end in ":0".
        if url.starts_with("tcp://") && url.ends_with(":0") {
            push(
                AnalysisIssue::UnreachableEndpoint {
                    url: url.clone(),
                    reason: "port 0 is not a connectable endpoint".to_string(),
                },
                Some(*line),
            );
        }
    }
    if distinct.len() > 1 {
        push(
            AnalysisIssue::EndpointCollision {
                urls: distinct.iter().map(|u| u.to_string()).collect(),
            },
            collision_line,
        );
    }

    if directives.transports.is_empty() {
        for (stream, writer_process, _reader, reader_process) in
            cross_process_streams(model, built, assignment)
        {
            let writer_line = built
                .iter()
                .find(|b| Some(&b.label) == writer_of(model, built, &stream))
                .map(|b| b.line);
            push(
                AnalysisIssue::MissingTransport {
                    stream,
                    writer_process,
                    reader_process,
                },
                writer_line,
            );
        }
    }
}

/// The label of `stream`'s single writer, when it has exactly one.
fn writer_of<'b>(model: &Model<'_>, built: &'b [BuiltEntry], stream: &str) -> Option<&'b String> {
    match model.writers.get(stream).map(Vec::as_slice) {
        Some([w]) => Some(&built[*w].label),
        _ => None,
    }
}

/// Streams whose single writer and some reader land in different
/// processes: `(stream, writer process, reader label, reader process)`,
/// one tuple per stream (the first cross-process reader found).
fn cross_process_streams(
    model: &Model<'_>,
    built: &[BuiltEntry],
    assignment: &BTreeMap<String, String>,
) -> Vec<(String, String, String, String)> {
    let mut out = Vec::new();
    for (stream, consumers) in &model.readers {
        let Some(writer_label) = writer_of(model, built, stream) else {
            continue;
        };
        let Some(writer_process) = assignment.get(writer_label) else {
            continue;
        };
        for &r in consumers {
            let reader_label = &built[r].label;
            let Some(reader_process) = assignment.get(reader_label) else {
                continue;
            };
            if reader_process != writer_process {
                out.push((
                    stream.clone(),
                    writer_process.clone(),
                    reader_label.clone(),
                    reader_process.clone(),
                ));
                break;
            }
        }
    }
    out
}

/// SB017: static wire-cost estimate for each cross-process stream.
///
/// One step of a stream with payload `P` bytes crosses the broker once up
/// (writer → broker) and once per subscribed reader group down (the
/// broker fans out whole steps per group), so the payload alone costs
/// `(1 + groups) × P`. On top of that every participating rank exchanges
/// the self-describing metadata and step envelope. The amplification is
/// wire bytes per payload byte; tiny payloads under wide fan-out are
/// exactly the shapes the TCP benchmark shows drowning in overhead.
fn wire_cost_pass(
    model: &Model<'_>,
    built: &[BuiltEntry],
    assignment: &BTreeMap<String, String>,
    mut push: impl FnMut(AnalysisIssue, Option<usize>),
) {
    for (stream, _writer_process, _reader, _reader_process) in
        cross_process_streams(model, built, assignment)
    {
        let Some(StreamSpec::Known(arrays)) = model.specs.get(&stream) else {
            continue;
        };
        let payload: Option<u64> = arrays.values().map(|a| a.payload_bytes()).sum();
        let Some(payload) = payload else { continue };
        if payload == 0 {
            continue;
        }
        // Self-describing metadata one rank ships per step: array and
        // dimension names, 8 bytes per extent, and every quantity label.
        let meta: u64 = STEP_ENVELOPE_BYTES
            + arrays
                .iter()
                .map(|(name, spec)| {
                    name.len() as u64
                        + spec
                            .dims
                            .iter()
                            .map(|d| 8 + d.name.len() as u64)
                            .sum::<u64>()
                        + spec
                            .labels
                            .values()
                            .flatten()
                            .map(|l| l.len() as u64)
                            .sum::<u64>()
                })
                .sum::<u64>();
        let groups = model
            .subscriptions
            .keys()
            .filter(|(s, _)| *s == stream)
            .count()
            .max(1) as u64;
        let writer_idx = model.writers[&stream][0];
        let writer_ranks = built[writer_idx].nranks as u64;
        let reader_ranks: u64 = model.readers[&stream]
            .iter()
            .map(|&r| built[r].nranks as u64)
            .sum();
        let wire = (1 + groups) * payload + (writer_ranks + reader_ranks) * meta;
        let amplification_tenths = wire * 10 / payload;
        if amplification_tenths > WIRE_AMPLIFICATION_THRESHOLD_TENTHS {
            let line = built.get(writer_idx).map(|b| b.line);
            push(
                AnalysisIssue::WireAmplification {
                    stream,
                    amplification_tenths,
                    threshold_tenths: WIRE_AMPLIFICATION_THRESHOLD_TENTHS,
                    payload_bytes: payload,
                    wire_bytes: wire,
                },
                line,
            );
        }
    }
}
