//! The lint registry: stable IDs, names, default levels, and per-run
//! level configuration.
//!
//! Every class of problem the analyzer can report is a [`Lint`] with a
//! stable `SBxxx` ID. IDs are append-only: a lint is never renumbered and
//! never reused, so `--allow`/`--deny` flags, CI suppressions, and JSON
//! consumers keep working across releases. [`LintConfig`] carries the
//! per-run overrides (`allow`/`warn`/`deny` by ID).

use std::collections::BTreeMap;
use std::fmt;

/// How a diagnostic is treated for exit-code and filtering purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Suppressed: the diagnostic is not reported at all.
    Allow,
    /// Reported; the script may still run.
    Warn,
    /// Reported; the script is refused (`sb-lint` exits 1, `sb-run`
    /// refuses to launch).
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Allow => write!(f, "allow"),
            Level::Warn => write!(f, "warning"),
            Level::Deny => write!(f, "error"),
        }
    }
}

/// One registered lint: a stable ID, a short kebab-case name, the default
/// level, and a one-line summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable `SBxxx` identifier (append-only, never reused).
    pub id: &'static str,
    /// Short kebab-case name shown next to the ID.
    pub name: &'static str,
    /// Level when no override is configured.
    pub default_level: Level,
    /// One-line description for `--help`-style listings and docs.
    pub summary: &'static str,
}

/// Every lint the engine can emit, in ID order.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "SB000",
        name: "script-error",
        default_level: Level::Deny,
        summary: "the script does not parse, or a component rejects its arguments outright",
    },
    Lint {
        id: "SB001",
        name: "no-writer",
        default_level: Level::Deny,
        summary: "a stream is read but nothing writes it; its readers block forever",
    },
    Lint {
        id: "SB002",
        name: "no-reader",
        default_level: Level::Warn,
        summary: "a stream is written but nothing reads it; the writer stalls when its queue fills",
    },
    Lint {
        id: "SB003",
        name: "multiple-writers",
        default_level: Level::Deny,
        summary: "two components write the same stream; a stream has exactly one writer group",
    },
    Lint {
        id: "SB004",
        name: "duplicate-subscription",
        default_level: Level::Warn,
        summary: "two components share one reader group; their step accounting interleaves",
    },
    Lint {
        id: "SB005",
        name: "subscription-cycle",
        default_level: Level::Deny,
        summary: "components subscribe to each other in a cycle: a guaranteed deadlock",
    },
    Lint {
        id: "SB006",
        name: "contract-violation",
        default_level: Level::Deny,
        summary: "a component's declared contract provably fails on its input specs",
    },
    Lint {
        id: "SB007",
        name: "degenerate-bins",
        default_level: Level::Warn,
        summary: "more histogram bins than the input can have elements",
    },
    Lint {
        id: "SB008",
        name: "over-decomposition",
        default_level: Level::Deny,
        summary: "more ranks than the partitioned dimension has slices",
    },
    Lint {
        id: "SB009",
        name: "cadence-mismatch",
        default_level: Level::Deny,
        summary: "a join reads streams with provably different step counts; the slower side \
                  ends the join early or the faster side deadlocks",
    },
    Lint {
        id: "SB010",
        name: "starved-writer",
        default_level: Level::Deny,
        summary: "a writer declares more reader groups than the script subscribes; steps are \
                  retained for subscribers that never come and the queue wedges",
    },
    Lint {
        id: "SB011",
        name: "restart-unsound",
        default_level: Level::Deny,
        summary: "a Restart policy on a stateful component: upstream cannot replay committed \
                  steps, so the restarted component recomputes from a silently truncated window",
    },
    Lint {
        id: "SB012",
        name: "degrade-terminal",
        default_level: Level::Warn,
        summary: "a Degrade policy on a terminal sink: the workflow finishes 'successfully' \
                  with its results silently truncated",
    },
    Lint {
        id: "SB013",
        name: "zero-restart-budget",
        default_level: Level::Warn,
        summary: "a Restart policy with max_restarts = 0 behaves exactly like Abort",
    },
    Lint {
        id: "SB014",
        name: "unknown-policy-target",
        default_level: Level::Deny,
        summary: "a fault policy names a component the script does not define",
    },
    Lint {
        id: "SB015",
        name: "invalid-partition",
        default_level: Level::Deny,
        summary: "the process plan does not assign every component to exactly one process",
    },
    Lint {
        id: "SB016",
        name: "bad-transport",
        default_level: Level::Deny,
        summary: "a cross-process stream has no usable transport endpoint (tcp:// or shm://)",
    },
    Lint {
        id: "SB017",
        name: "wire-amplification",
        default_level: Level::Warn,
        summary: "the estimated bytes-on-the-wire per payload byte of a cross-process stream \
                  exceeds the threshold",
    },
    Lint {
        id: "SB018",
        name: "spec-unknown-key",
        default_level: Level::Warn,
        summary: "a `.sbw` spec key or table the spec language does not define; the compiler \
                  ignores it",
    },
    Lint {
        id: "SB019",
        name: "spec-undeclared-ref",
        default_level: Level::Deny,
        summary: "a `.sbw` trigger clause references a component the spec does not declare; \
                  the clause could never fire or act",
    },
    Lint {
        id: "SB020",
        name: "spec-conflict",
        default_level: Level::Deny,
        summary: "two `.sbw` constructs contradict each other: duplicate tables, a component \
                  in two process groups, or policy knobs the declared action ignores",
    },
    Lint {
        id: "SB021",
        name: "prefer-spec",
        default_level: Level::Warn,
        summary: "inline `#@ policy`/`#@ process` directives still work but a declarative \
                  `.sbw` spec expresses the same thing in one lintable artifact",
    },
];

/// Looks up a lint by its `SBxxx` ID.
pub fn lint_by_id(id: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.id == id)
}

/// Looks up a lint by its kebab-case name.
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.name == name)
}

/// Per-run lint levels: the registry defaults plus explicit overrides.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    overrides: BTreeMap<&'static str, Level>,
}

impl LintConfig {
    /// The default configuration (registry levels, no overrides).
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Overrides one lint's level by ID or name; errors on an unknown
    /// lint so typos in `--allow`/`--deny` flags fail loudly.
    pub fn set(&mut self, lint: &str, level: Level) -> Result<(), String> {
        match lint_by_id(lint).or_else(|| lint_by_name(lint)) {
            Some(l) => {
                self.overrides.insert(l.id, level);
                Ok(())
            }
            None => Err(format!(
                "unknown lint {lint:?} (IDs SB000..SB{:03}, or kebab-case names)",
                LINTS.len() - 1
            )),
        }
    }

    /// The effective level for a lint under this configuration.
    pub fn level_for(&self, lint: &Lint) -> Level {
        self.overrides
            .get(lint.id)
            .copied()
            .unwrap_or(lint.default_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        for (i, lint) in LINTS.iter().enumerate() {
            assert_eq!(
                lint.id,
                format!("SB{i:03}"),
                "registry must stay append-only"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        for a in LINTS {
            assert_eq!(
                LINTS.iter().filter(|b| b.name == a.name).count(),
                1,
                "{}",
                a.name
            );
        }
    }

    #[test]
    fn config_overrides_by_id_and_name() {
        let mut config = LintConfig::new();
        let no_reader = lint_by_id("SB002").unwrap();
        assert_eq!(config.level_for(no_reader), Level::Warn);
        config.set("SB002", Level::Deny).unwrap();
        assert_eq!(config.level_for(no_reader), Level::Deny);
        config.set("no-reader", Level::Allow).unwrap();
        assert_eq!(config.level_for(no_reader), Level::Allow);
        assert!(config.set("SB999", Level::Allow).is_err());
    }
}
