//! The static data-contract vocabulary: array/stream specs, partition
//! rules, step-cadence contracts, and component signatures.
//!
//! These types are the analysis-time mirror of the runtime's
//! self-describing data model (`sb_data::VariableMeta`): every component
//! declares *statically* what it reads, how it partitions it, how specs
//! flow through it, and at what step rate it produces output. The passes
//! in [`crate::analysis::passes`] consume these declarations.

use std::collections::BTreeMap;
use std::fmt;

use sb_data::{DType, Shape};

/// A statically known or data-dependent dimension length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    /// The extent is fixed by configuration (e.g. a simulation grid size).
    Fixed(usize),
    /// The extent depends on the data (e.g. atoms surviving a threshold).
    Dynamic,
}

impl Extent {
    /// The product of two extents; dynamic absorbs everything.
    pub fn times(self, other: Extent) -> Extent {
        match (self, other) {
            (Extent::Fixed(a), Extent::Fixed(b)) => Extent::Fixed(a * b),
            _ => Extent::Dynamic,
        }
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Extent::Fixed(n) => write!(f, "{n}"),
            Extent::Dynamic => write!(f, "?"),
        }
    }
}

/// One dimension of an [`ArraySpec`]: a name and an extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimSpec {
    /// Dimension name (mirrors `sb_data::Dim`).
    pub name: String,
    /// Statically known or dynamic length.
    pub extent: Extent,
}

impl DimSpec {
    /// A dimension with a configuration-fixed extent.
    pub fn fixed(name: impl Into<String>, extent: usize) -> DimSpec {
        DimSpec {
            name: name.into(),
            extent: Extent::Fixed(extent),
        }
    }

    /// A dimension whose extent only the data determines.
    pub fn dynamic(name: impl Into<String>) -> DimSpec {
        DimSpec {
            name: name.into(),
            extent: Extent::Dynamic,
        }
    }
}

impl fmt::Display for DimSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.extent)
    }
}

/// The static description of one array: dimensions, element type and
/// per-dimension quantity labels — the analysis-time mirror of
/// `sb_data::VariableMeta`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpec {
    /// Dimensions, outermost first.
    pub dims: Vec<DimSpec>,
    /// Element type.
    pub dtype: DType,
    /// Per-dimension labels (dimension index → names along it).
    pub labels: BTreeMap<usize, Vec<String>>,
}

impl ArraySpec {
    /// A spec with the given dimensions and no labels.
    pub fn new(dims: Vec<DimSpec>, dtype: DType) -> ArraySpec {
        ArraySpec {
            dims,
            dtype,
            labels: BTreeMap::new(),
        }
    }

    /// A fully fixed spec copied from a concrete shape.
    pub fn from_shape(shape: &Shape, dtype: DType) -> ArraySpec {
        ArraySpec::new(
            shape
                .dims()
                .iter()
                .map(|d| DimSpec::fixed(d.name.clone(), d.size))
                .collect(),
            dtype,
        )
    }

    /// Attaches labels along `dim` (builder style).
    pub fn with_dim_labels<S: Into<String>>(
        mut self,
        dim: usize,
        labels: impl IntoIterator<Item = S>,
    ) -> ArraySpec {
        self.labels
            .insert(dim, labels.into_iter().map(Into::into).collect());
        self
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Errors with [`SpecError::AxisOutOfBounds`] unless `dim` exists.
    pub fn check_dim(&self, dim: usize) -> Result<(), SpecError> {
        if dim < self.dims.len() {
            Ok(())
        } else {
            Err(SpecError::AxisOutOfBounds {
                axis: dim,
                ndims: self.dims.len(),
            })
        }
    }

    /// Total element count, if every extent is fixed.
    pub fn total_elements(&self) -> Option<usize> {
        self.dims.iter().try_fold(1usize, |acc, d| match d.extent {
            Extent::Fixed(n) => Some(acc * n),
            Extent::Dynamic => None,
        })
    }

    /// Statically known payload size of one step of this array, in bytes.
    pub fn payload_bytes(&self) -> Option<u64> {
        self.total_elements()
            .map(|n| n as u64 * self.dtype.elem_bytes() as u64)
    }
}

impl fmt::Display for ArraySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "] {}", self.dtype.name())
    }
}

/// What the analysis knows about one stream's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSpec {
    /// Nothing is declared (closure components, file replays, multi-writer
    /// streams): downstream checks that need facts stay silent.
    Opaque,
    /// The full array map the writer declares (array name → spec).
    Known(BTreeMap<String, ArraySpec>),
}

impl StreamSpec {
    /// A known stream carrying exactly one array.
    pub fn known_one(array: impl Into<String>, spec: ArraySpec) -> StreamSpec {
        let mut map = BTreeMap::new();
        map.insert(array.into(), spec);
        StreamSpec::Known(map)
    }

    /// Looks up `name`: `Ok(None)` on an opaque stream, an
    /// [`SpecError::UnknownArray`] when the stream is known but lacks it.
    pub fn array(&self, name: &str) -> Result<Option<&ArraySpec>, SpecError> {
        match self {
            StreamSpec::Opaque => Ok(None),
            StreamSpec::Known(map) => match map.get(name) {
                Some(spec) => Ok(Some(spec)),
                None => Err(SpecError::UnknownArray {
                    array: name.to_string(),
                    available: map.keys().cloned().collect(),
                }),
            },
        }
    }
}

/// A contract violation a transfer function can detect statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The stream is declared but does not carry the requested array.
    UnknownArray {
        /// The missing array name.
        array: String,
        /// Arrays the stream does carry.
        available: Vec<String>,
    },
    /// A label (quantity name) is not present along the dimension.
    UnknownLabel {
        /// The labelled dimension.
        dim: usize,
        /// The missing label.
        label: String,
        /// Labels the dimension does carry.
        available: Vec<String>,
    },
    /// A dimension index exceeds the array's rank.
    AxisOutOfBounds {
        /// The out-of-range axis.
        axis: usize,
        /// The array's rank.
        ndims: usize,
    },
    /// The array's rank does not match the component's contract.
    RankMismatch {
        /// Rank the component requires.
        expected: usize,
        /// Rank the array has.
        got: usize,
    },
    /// Two inputs that must agree element-wise provably disagree.
    ShapeMismatch {
        /// Rendered left spec.
        left: String,
        /// Rendered right spec.
        right: String,
    },
    /// An axis list is malformed (bad permutation, self-referential
    /// dim-reduce, ...).
    InvalidAxes {
        /// What is wrong with it.
        detail: String,
    },
    /// More histogram bins than the input can ever have elements: most
    /// bins are guaranteed empty.
    DegenerateBins {
        /// Requested bin count.
        bins: usize,
        /// Statically known element count.
        elements: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownArray { array, available } => {
                write!(
                    f,
                    "array {array:?} is not produced on this stream (available: {available:?})"
                )
            }
            SpecError::UnknownLabel {
                dim,
                label,
                available,
            } => write!(
                f,
                "dimension {dim} carries no quantity named {label:?} (available: {available:?})"
            ),
            SpecError::AxisOutOfBounds { axis, ndims } => {
                write!(f, "axis {axis} is out of bounds for a {ndims}-d array")
            }
            SpecError::RankMismatch { expected, got } => {
                write!(f, "expected a {expected}-d array, got {got}-d")
            }
            SpecError::ShapeMismatch { left, right } => {
                write!(f, "input shapes disagree: {left} vs {right}")
            }
            SpecError::InvalidAxes { detail } => write!(f, "{detail}"),
            SpecError::DegenerateBins { bins, elements } => write!(
                f,
                "{bins} bins over at most {elements} elements leaves most bins empty"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// How a component partitions one input array among its ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionRule {
    /// Slab decomposition along a fixed dimension.
    Along(usize),
    /// The first dimension that is *not* the given one (the rule Select
    /// and Reduce use so the operated-on dimension stays whole per rank).
    FirstExcept(usize),
}

impl PartitionRule {
    /// The concrete dimension for an array of rank `ndims`, if any.
    pub fn resolve(&self, ndims: usize) -> Option<usize> {
        match *self {
            PartitionRule::Along(d) => (d < ndims).then_some(d),
            PartitionRule::FirstExcept(x) => (0..ndims).find(|&d| d != x),
        }
    }
}

/// One `(stream, array)` pair a component reads, with its partition rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadSpec {
    /// Stream the array arrives on.
    pub stream: String,
    /// Array name within the stream.
    pub array: String,
    /// How the array is split among the component's ranks.
    pub partition: PartitionRule,
}

impl ReadSpec {
    /// Builds a read declaration.
    pub fn new(
        stream: impl Into<String>,
        array: impl Into<String>,
        partition: PartitionRule,
    ) -> ReadSpec {
        ReadSpec {
            stream: stream.into(),
            array: array.into(),
            partition,
        }
    }
}

/// Maps input stream specs (parallel to
/// [`Component::input_streams`](crate::Component::input_streams)) to
/// output stream specs (parallel to
/// [`Component::output_streams`](crate::Component::output_streams)).
pub type TransferFn =
    Box<dyn Fn(&[StreamSpec]) -> Result<Vec<StreamSpec>, SpecError> + Send + Sync>;

/// How many steps a component publishes on its output streams — the
/// step-rate half of a component's contract, propagated by the cadence
/// pass to find joins of provably different step rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepContract {
    /// Nothing is declared (closure components, file replays): cadence
    /// checks involving this component's outputs stay silent.
    Unknown,
    /// A source that produces exactly this many steps (a simulation with a
    /// configured `steps` count).
    Produces(u64),
    /// A transform that publishes one step per input step (every paper
    /// component).
    SameAsInput,
    /// A decimating transform that publishes one step per `n` input steps
    /// (`temporal-mean stride=n`).
    Decimates(u64),
}

/// A component's static contract: what it reads, how specs flow through
/// it, its output step rate, and whether it carries state across steps.
pub struct Signature {
    /// Declared input reads (used for over-decomposition checks).
    pub reads: Vec<ReadSpec>,
    /// Spec transfer function; `None` means the component is opaque and
    /// its outputs propagate as [`StreamSpec::Opaque`].
    pub transfer: Option<TransferFn>,
    /// Output step rate relative to the input (or absolute, for sources).
    pub steps: StepContract,
    /// True when the component carries state *across* steps (a temporal
    /// window): a supervisor restart silently loses that state, because
    /// upstream cannot replay already-committed steps.
    pub stateful: bool,
}

impl Signature {
    /// The default signature: nothing declared, outputs opaque.
    pub fn opaque() -> Signature {
        Signature {
            reads: Vec::new(),
            transfer: None,
            steps: StepContract::Unknown,
            stateful: false,
        }
    }

    /// A signature from reads and a transfer closure. The step contract
    /// defaults to [`StepContract::SameAsInput`] (one output step per
    /// input step), which the cadence pass ignores for components with no
    /// inputs — sources should declare [`StepContract::Produces`] via
    /// [`Signature::with_steps`].
    pub fn new<F>(reads: Vec<ReadSpec>, transfer: F) -> Signature
    where
        F: Fn(&[StreamSpec]) -> Result<Vec<StreamSpec>, SpecError> + Send + Sync + 'static,
    {
        Signature::with_boxed_transfer(reads, Box::new(transfer))
    }

    /// [`Signature::new`] for an already-boxed [`TransferFn`] (e.g. one
    /// built by [`unary_transfer`]).
    pub fn with_boxed_transfer(reads: Vec<ReadSpec>, transfer: TransferFn) -> Signature {
        Signature {
            reads,
            transfer: Some(transfer),
            steps: StepContract::SameAsInput,
            stateful: false,
        }
    }

    /// Overrides the step contract (builder style).
    pub fn with_steps(mut self, steps: StepContract) -> Signature {
        self.steps = steps;
        self
    }

    /// Marks the component as carrying cross-step state (builder style).
    pub fn with_stateful(mut self, stateful: bool) -> Signature {
        self.stateful = stateful;
        self
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature")
            .field("reads", &self.reads)
            .field("transfer", &self.transfer.as_ref().map(|_| "<fn>"))
            .field("steps", &self.steps)
            .field("stateful", &self.stateful)
            .finish()
    }
}

/// A transfer function for the common one-input/one-output transform:
/// looks up `input_array` on the first input stream, applies `f` to its
/// spec, and publishes the result as `output_array`. Opaque inputs
/// propagate as opaque outputs.
pub fn unary_transfer<F>(input_array: String, output_array: String, f: F) -> TransferFn
where
    F: Fn(&ArraySpec) -> Result<ArraySpec, SpecError> + Send + Sync + 'static,
{
    Box::new(move |ins| match ins.first() {
        Some(stream) => match stream.array(&input_array)? {
            Some(spec) => Ok(vec![StreamSpec::known_one(output_array.clone(), f(spec)?)]),
            None => Ok(vec![StreamSpec::Opaque]),
        },
        None => Ok(vec![StreamSpec::Opaque]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_multiply_with_dynamic_absorbing() {
        assert_eq!(Extent::Fixed(3).times(Extent::Fixed(4)), Extent::Fixed(12));
        assert_eq!(Extent::Fixed(3).times(Extent::Dynamic), Extent::Dynamic);
        assert_eq!(Extent::Dynamic.times(Extent::Fixed(4)), Extent::Dynamic);
    }

    #[test]
    fn array_spec_renders_readably() {
        let spec = ArraySpec::new(
            vec![DimSpec::dynamic("particles"), DimSpec::fixed("props", 5)],
            DType::F64,
        );
        assert_eq!(spec.to_string(), "[particles=?, props=5] f64");
        assert_eq!(spec.total_elements(), None);
        assert_eq!(spec.payload_bytes(), None);
        let fixed = ArraySpec::new(vec![DimSpec::fixed("n", 6)], DType::U64);
        assert_eq!(fixed.total_elements(), Some(6));
        assert_eq!(fixed.payload_bytes(), Some(48));
    }

    #[test]
    fn stream_spec_lookup_distinguishes_opaque_from_missing() {
        assert_eq!(StreamSpec::Opaque.array("x"), Ok(None));
        let known = StreamSpec::known_one("x", ArraySpec::new(vec![], DType::F64));
        assert!(known.array("x").unwrap().is_some());
        assert!(matches!(
            known.array("y"),
            Err(SpecError::UnknownArray { array, available })
                if array == "y" && available == vec!["x".to_string()]
        ));
    }

    #[test]
    fn partition_rules_resolve_against_rank() {
        assert_eq!(PartitionRule::Along(1).resolve(3), Some(1));
        assert_eq!(PartitionRule::Along(3).resolve(3), None);
        assert_eq!(PartitionRule::FirstExcept(0).resolve(3), Some(1));
        assert_eq!(PartitionRule::FirstExcept(2).resolve(3), Some(0));
        assert_eq!(PartitionRule::FirstExcept(0).resolve(1), None);
    }

    #[test]
    fn signature_builders_set_the_new_contract_fields() {
        let sig = Signature::opaque();
        assert_eq!(sig.steps, StepContract::Unknown);
        assert!(!sig.stateful);
        let sig = Signature::new(Vec::new(), |_| Ok(Vec::new()))
            .with_steps(StepContract::Produces(7))
            .with_stateful(true);
        assert_eq!(sig.steps, StepContract::Produces(7));
        assert!(sig.stateful);
    }
}
