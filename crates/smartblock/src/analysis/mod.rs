//! Static workflow analysis: the SmartBlock lint engine.
//!
//! The paper's thesis is that standardized component interfaces make a
//! whole workflow checkable *before* it runs. This module is that check,
//! organized as a staged lint engine:
//!
//! - [`spec`] — the contract vocabulary: [`StreamSpec`]s, [`Signature`]s,
//!   transfer functions, and [`StepContract`]s;
//! - [`lints`] — the registry of stable `SBxxx` lint IDs with default
//!   levels and per-run [`LintConfig`] overrides;
//! - [`diagnostics`] — structured [`AnalysisIssue`]s and [`Diagnostic`]s
//!   with rustc-style text and `smartblock.lint.v1` JSON renderings;
//! - [`model`] — the shared graph/spec/step model built once per lint;
//! - [`passes`] — the model-level passes (wiring, cycle, contract,
//!   cadence, fault-policy soundness);
//! - [`script`] — script-level linting ([`lint_script`]) plus the passes
//!   that need launch-script directives: starvation, partition plan,
//!   transport, and wire cost.
//!
//! [`Workflow::validate`](crate::Workflow::validate) returns the raw
//! [`AnalysisIssue`]s (the pre-existing API);
//! [`Workflow::lint`](crate::Workflow::lint) and [`lint_script`] return
//! leveled [`Diagnostic`]s for `sb-lint` and `sb-run`'s pre-launch gate.

pub mod diagnostics;
pub mod lints;
pub(crate) mod model;
pub(crate) mod passes;
pub mod script;
pub mod spec;

pub use diagnostics::{
    check_report, render_report_json, AnalysisIssue, Diagnostic, ScriptLint, Severity,
};
pub use lints::{lint_by_id, lint_by_name, Level, Lint, LintConfig, LINTS};
pub use script::{lint_script, lint_spec, WIRE_AMPLIFICATION_THRESHOLD_TENTHS};
pub use spec::{
    unary_transfer, ArraySpec, DimSpec, Extent, PartitionRule, ReadSpec, Signature, SpecError,
    StepContract, StreamSpec, TransferFn,
};

pub(crate) use model::EntryView;

use std::collections::BTreeMap;

use crate::supervisor::FaultPolicy;

/// `#@ policy` label → directive line, for attributing SB014 (whose
/// target label matches no entry) to the directive that named it.
pub(crate) type PolicyLines = BTreeMap<String, usize>;

/// Runs the model-level passes in their fixed order and returns the raw
/// issues: wiring first (so the oldest, most actionable problems lead),
/// then cycle, contract, cadence, and fault-policy soundness.
pub(crate) fn analyze(
    entries: &[EntryView<'_>],
    policies: &BTreeMap<String, FaultPolicy>,
) -> Vec<AnalysisIssue> {
    let model = model::Model::build(entries);
    let mut issues = Vec::new();
    passes::wiring::run(&model, &mut issues);
    passes::cycle::run(&model, &mut issues);
    passes::contract::run(&model, &mut issues);
    passes::cadence::run(&model, &mut issues);
    passes::fault::run(&model, policies, &mut issues);
    issues
}

/// [`analyze`] plus leveling and source-line attribution: the shared body
/// of [`Workflow::lint`](crate::Workflow::lint) and [`lint_script`].
/// Issues whose lint the config allows are dropped.
pub(crate) fn lint_entries(
    entries: &[EntryView<'_>],
    policies: &BTreeMap<String, FaultPolicy>,
    policy_lines: &PolicyLines,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let issues = analyze(entries, policies);
    issues
        .into_iter()
        .filter_map(|issue| {
            let level = config.level_for(issue.lint());
            if level == Level::Allow {
                return None;
            }
            let line = attribute_line(entries, policy_lines, &issue);
            Some(Diagnostic { issue, level, line })
        })
        .collect()
}

/// Best source line for an issue: the named component's launch line,
/// else the stream's writer line, else the stream's first reader line,
/// else (for unknown policy targets) the policy directive's line.
fn attribute_line(
    entries: &[EntryView<'_>],
    policy_lines: &PolicyLines,
    issue: &AnalysisIssue,
) -> Option<usize> {
    let line_of_label = |label: &str| {
        entries
            .iter()
            .find(|e| e.label == label)
            .and_then(|e| e.line)
    };
    if let Some(component) = issue.component() {
        if let Some(line) = line_of_label(component) {
            return Some(line);
        }
    }
    if let AnalysisIssue::UnknownPolicyTarget { label, .. } = issue {
        return policy_lines.get(label).copied();
    }
    // A cycle has no single home component; point at its first member.
    if let AnalysisIssue::Cycle { components } = issue {
        return components.first().and_then(|c| line_of_label(c));
    }
    let stream = issue.stream()?;
    let writes = |e: &&EntryView<'_>| e.component.output_streams().iter().any(|s| s == stream);
    let reads = |e: &&EntryView<'_>| e.component.input_streams().iter().any(|s| s == stream);
    entries
        .iter()
        .find(writes)
        .or_else(|| entries.iter().find(reads))
        .and_then(|e| e.line)
}
