//! Cycle pass: SB005 subscription-cycle.

use std::collections::BTreeSet;

use crate::analysis::diagnostics::AnalysisIssue;
use crate::analysis::model::{kahn_order, Model};

pub(crate) fn run(model: &Model<'_>, issues: &mut Vec<AnalysisIssue>) {
    let n = model.entries.len();
    if model.topo_order.len() == n {
        return;
    }
    let in_order: BTreeSet<usize> = model.topo_order.iter().copied().collect();
    let forward_stuck: BTreeSet<usize> = (0..n).filter(|i| !in_order.contains(i)).collect();
    // Nodes merely downstream of a cycle are also stuck forward; the ones
    // stuck in *both* directions are the cycle itself.
    let reversed: BTreeSet<(usize, usize)> = model.edges.iter().map(|&(a, b)| (b, a)).collect();
    let backward_done: BTreeSet<usize> = kahn_order(n, &reversed).into_iter().collect();
    let on_cycle: Vec<String> = (0..n)
        .filter(|i| forward_stuck.contains(i) && !backward_done.contains(i))
        .map(|i| model.entries[i].label.to_string())
        .collect();
    issues.push(AnalysisIssue::Cycle {
        components: on_cycle,
    });
}
