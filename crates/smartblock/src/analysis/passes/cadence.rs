//! Cadence pass: SB009 cadence-mismatch.
//!
//! Step counts are propagated through [`StepContract`]s in
//! [`Model::build`]: sources declare `Produces(n)`, pass-through
//! components inherit the minimum of their inputs, and decimating
//! components (Temporal-Mean with a stride) divide it. A component that
//! *joins* two streams whose statically known step counts differ is
//! doomed: the runtime joins step-by-step, so the slower stream ends the
//! join early and the remaining steps of the faster one are silently
//! dropped — or, under rendezvous writers, the faster side wedges.
//! Unknown counts (opaque closures, contested streams) stay silent; the
//! lint only fires on a provable mismatch.
//!
//! [`StepContract`]: crate::analysis::StepContract

use std::collections::BTreeSet;

use crate::analysis::diagnostics::AnalysisIssue;
use crate::analysis::model::Model;

pub(crate) fn run(model: &Model<'_>, issues: &mut Vec<AnalysisIssue>) {
    for e in model.entries {
        let distinct: BTreeSet<String> = e.component.input_streams().into_iter().collect();
        if distinct.len() < 2 {
            continue;
        }
        let rates: Vec<(String, u64)> = distinct
            .into_iter()
            .filter_map(|s| model.steps.get(&s).map(|&n| (s, n)))
            .collect();
        if rates.len() < 2 {
            continue;
        }
        let first = rates[0].1;
        if rates.iter().any(|&(_, n)| n != first) {
            issues.push(AnalysisIssue::CadenceMismatch {
                component: e.label.to_string(),
                rates,
            });
        }
    }
}
