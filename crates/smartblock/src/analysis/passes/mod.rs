//! The staged analysis passes.
//!
//! Each pass is a free `run` function that reads the shared [`Model`] and
//! appends [`AnalysisIssue`]s. The driver in [`crate::analysis::analyze`]
//! runs them in a fixed order (wiring, cycle, contract, cadence, fault);
//! script-level passes (starvation, partition-plan, transport, wire-cost)
//! live in [`crate::analysis::script`] because they need launch-script
//! directives that a programmatic [`Workflow`](crate::Workflow) does not
//! carry.
//!
//! [`Model`]: super::model::Model
//! [`AnalysisIssue`]: super::diagnostics::AnalysisIssue

pub(crate) mod cadence;
pub(crate) mod contract;
pub(crate) mod cycle;
pub(crate) mod fault;
pub(crate) mod wiring;
