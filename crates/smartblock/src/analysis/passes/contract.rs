//! Contract pass: SB006 contract-violation, SB007 degenerate-bins,
//! SB008 over-decomposition.
//!
//! The violations themselves are discovered during spec propagation in
//! [`Model::build`] (they are properties of the spec flow, not of the
//! finished model); this pass reports what propagation recorded.

use crate::analysis::diagnostics::AnalysisIssue;
use crate::analysis::model::Model;

pub(crate) fn run(model: &Model<'_>, issues: &mut Vec<AnalysisIssue>) {
    issues.extend(model.propagation_issues.iter().cloned());
}
