//! Fault-policy soundness pass: SB011 restart-unsound, SB012
//! degrade-terminal, SB013 zero-restart-budget, SB014
//! unknown-policy-target.
//!
//! The supervisor restarts a component by rewinding its stream
//! attachments to the last *uncommitted* step — upstream queues do not
//! replay steps the component already committed. For a stateless
//! transform that is exactly right; for a stateful component (a
//! Temporal-Mean window, say) the restarted instance recomputes from a
//! silently truncated history. Likewise, degrading a terminal sink makes
//! the workflow "succeed" with its final results cut short, and a restart
//! budget of zero is just Abort spelled confusingly.

use std::collections::BTreeMap;

use crate::analysis::diagnostics::AnalysisIssue;
use crate::analysis::model::Model;
use crate::supervisor::{FailureAction, FaultPolicy};

pub(crate) fn run(
    model: &Model<'_>,
    policies: &BTreeMap<String, FaultPolicy>,
    issues: &mut Vec<AnalysisIssue>,
) {
    let known: Vec<String> = model.entries.iter().map(|e| e.label.to_string()).collect();
    for (label, policy) in policies {
        let Some(entry) = model.entries.iter().find(|e| e.label == label) else {
            issues.push(AnalysisIssue::UnknownPolicyTarget {
                label: label.clone(),
                known: known.clone(),
            });
            continue;
        };
        match policy.action {
            FailureAction::Abort => {}
            FailureAction::Restart => {
                if policy.max_restarts == 0 {
                    issues.push(AnalysisIssue::ZeroRestartBudget {
                        component: label.clone(),
                    });
                } else if entry.component.signature().stateful {
                    issues.push(AnalysisIssue::RestartUnsound {
                        component: label.clone(),
                    });
                }
            }
            FailureAction::Degrade => {
                if entry.component.output_streams().is_empty() {
                    issues.push(AnalysisIssue::DegradeTerminal {
                        component: label.clone(),
                    });
                }
            }
        }
    }
}
