//! Wiring pass: SB001 no-writer, SB002 no-reader, SB003 multiple-writers,
//! SB004 duplicate-subscription.

use crate::analysis::diagnostics::AnalysisIssue;
use crate::analysis::model::Model;
use crate::runtime::WiringIssue;

pub(crate) fn run(model: &Model<'_>, issues: &mut Vec<AnalysisIssue>) {
    for (stream, consumers) in &model.readers {
        if !model.writers.contains_key(stream) {
            issues.push(AnalysisIssue::Wiring(WiringIssue::NoWriter {
                stream: stream.clone(),
                readers: model.labels_of(consumers),
            }));
        }
    }
    for (stream, producers) in &model.writers {
        if !model.readers.contains_key(stream) {
            issues.push(AnalysisIssue::Wiring(WiringIssue::NoReader {
                stream: stream.clone(),
                writers: model.labels_of(producers),
            }));
        }
        if producers.len() > 1 {
            issues.push(AnalysisIssue::Wiring(WiringIssue::MultipleWriters {
                stream: stream.clone(),
                writers: model.labels_of(producers),
            }));
        }
    }
    for ((stream, group), labels) in &model.subscriptions {
        if labels.len() > 1 {
            issues.push(AnalysisIssue::Wiring(WiringIssue::DuplicateSubscription {
                stream: stream.clone(),
                group: group.clone(),
                readers: labels.clone(),
            }));
        }
    }
}
