//! The TemporalMean component: a moving average over timesteps.
//!
//! The paper's components are stateless per step; managing "the execution
//! of workflows over longer periods of time" (§VI) needs components that
//! carry state *across* steps. TemporalMean is the canonical example: it
//! emits, for every step, the element-wise mean of the last `window`
//! steps of its input — the standard smoothing stage in front of a
//! monitoring endpoint. Each rank keeps only its own partition's history,
//! so the memory cost is `window / nranks` of the global array per rank.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::default_partition;
use sb_data::{Buffer, Chunk, DType, VariableMeta};
use sb_stream::{StepStatus, StreamHub, WriterOptions};

use crate::component::{
    fault_gate, stash_partial_stats, stream_err, Component, StepFault, StreamArray,
};
use crate::error::{ComponentError, ComponentResult, StepResult};
use crate::metrics::ComponentStats;

/// Per-rank moving-average state: ring of past partitions plus a running
/// sum, so each step costs one add and one subtract per element.
pub struct MovingMean {
    window: usize,
    history: VecDeque<Vec<f64>>,
    sum: Vec<f64>,
}

impl MovingMean {
    /// A moving mean over the last `window` inputs.
    pub fn new(window: usize) -> MovingMean {
        assert!(window >= 1, "window must be at least 1");
        MovingMean {
            window,
            history: VecDeque::new(),
            sum: Vec::new(),
        }
    }

    /// Pushes one step's values and returns the current mean.
    ///
    /// Panics if the input length changes between steps (the stream's
    /// shape contract is per-variable constant).
    pub fn push(&mut self, values: Vec<f64>) -> Vec<f64> {
        if self.sum.is_empty() {
            self.sum = vec![0.0; values.len()];
        }
        assert_eq!(
            self.sum.len(),
            values.len(),
            "temporal-mean: input length changed between steps"
        );
        if self.history.len() == self.window {
            let old = self.history.pop_front().expect("non-empty at capacity");
            for (s, o) in self.sum.iter_mut().zip(&old) {
                *s -= o;
            }
        }
        for (s, v) in self.sum.iter_mut().zip(&values) {
            *s += v;
        }
        self.history.push_back(values);
        let n = self.history.len() as f64;
        self.sum.iter().map(|&s| s / n).collect()
    }

    /// Steps currently held (≤ window).
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

/// The TemporalMean workflow component.
#[derive(Debug, Clone)]
pub struct TemporalMean {
    /// Input stream/array names (any rank).
    pub input: StreamArray,
    /// Steps to average over.
    pub window: usize,
    /// Output stream/array names.
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
    /// Publish one output step per `stride` input steps (1 = every step).
    /// The mean still updates on every consumed step; only publishing
    /// decimates, so `stride=n` smooths at full rate but reports at 1/n.
    ///
    /// Shared and atomic so a reactive trigger
    /// ([`crate::triggers::ControlAction::SetOutputStride`]) can retarget
    /// the decimation mid-run; clones share the same cell.
    stride: Arc<AtomicUsize>,
}

impl TemporalMean {
    /// Builds a TemporalMean over `window` steps.
    pub fn new<I: Into<StreamArray>, O: Into<StreamArray>>(
        input: I,
        window: usize,
        output: O,
    ) -> TemporalMean {
        assert!(window >= 1, "window must be at least 1");
        TemporalMean {
            input: input.into(),
            window,
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
            stride: Arc::new(AtomicUsize::new(1)),
        }
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> TemporalMean {
        self.reader_group = group.into();
        self
    }

    /// Publishes one output step per `stride` input steps (builder style).
    pub fn with_stride(self, stride: usize) -> TemporalMean {
        assert!(stride >= 1, "stride must be at least 1");
        self.stride.store(stride, Ordering::Relaxed);
        self
    }

    /// The current output decimation stride.
    pub fn stride(&self) -> usize {
        self.stride.load(Ordering::Relaxed)
    }
}

impl Component for TemporalMean {
    fn label(&self) -> String {
        "temporal-mean".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{
            unary_transfer, ArraySpec, PartitionRule, ReadSpec, Signature, StepContract,
        };
        Signature::with_boxed_transfer(
            vec![ReadSpec::new(
                &self.input.stream,
                &self.input.array,
                PartitionRule::Along(0),
            )],
            unary_transfer(
                self.input.array.clone(),
                self.output.array.clone(),
                |spec| {
                    let mut out = ArraySpec::new(spec.dims.clone(), sb_data::DType::F64);
                    out.labels = spec.labels.clone();
                    Ok(out)
                },
            ),
        )
        .with_steps(StepContract::Decimates(self.stride() as u64))
        .with_stateful(true)
    }

    fn apply_control(&self, action: &crate::triggers::ControlAction) -> bool {
        match action {
            crate::triggers::ControlAction::SetOutputStride(stride) if *stride >= 1 => {
                self.stride.store(*stride, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        let mut reader = hub.open_reader_grouped(
            &self.input.stream,
            &self.reader_group,
            comm.rank(),
            comm.size(),
        );
        let mut writer = hub.open_writer(
            &self.output.stream,
            comm.rank(),
            comm.size(),
            self.writer_options,
        );
        let mut stats = ComponentStats::default();
        let mut state = MovingMean::new(self.window);
        let mut consumed: usize = 0;
        let label = "temporal-mean";
        let rank = comm.rank();
        loop {
            let step = reader.current_step();
            let gate = match fault_gate(hub, label, rank, step) {
                Ok(StepFault::Stall) => {
                    writer.abandon();
                    return Ok(stats);
                }
                Ok(g) => g,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(e);
                }
            };
            let step_start = Instant::now();
            match reader.begin_step() {
                Ok(StepStatus::EndOfStream) => break,
                Ok(StepStatus::Ready(_)) => {}
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(stream_err(label, step, e));
                }
            }
            let wait = step_start.elapsed();
            let read = (|| -> StepResult<_> {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| sb_data::DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                let region = default_partition(&meta.shape, comm.size(), comm.rank());
                let var = reader.get(&self.input.array, &region)?;
                Ok((meta, region, var))
            })();
            let (meta, region, var) = match read {
                Ok(v) => v,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(ComponentError::from_step(label, step, e));
                }
            };
            reader.end_step();
            let step_in = var.byte_len() as u64;

            let kernel_start = Instant::now();
            let mean = state.push(var.data.into_f64_vec());
            let compute = kernel_start.elapsed();
            consumed += 1;

            // Decimating publish: the mean updates every consumed step,
            // but only every stride-th step is pushed downstream. The
            // stride is re-read each step so a trigger can retarget it.
            if consumed.is_multiple_of(self.stride().max(1)) {
                let mut out_meta =
                    VariableMeta::new(self.output.array.clone(), meta.shape.clone(), DType::F64);
                out_meta.labels = meta.labels.clone();
                out_meta.attrs = meta.attrs.clone();
                if let Err(e) = writer.begin_step() {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(stream_err(label, step, e));
                }
                if gate != StepFault::DropChunk {
                    let chunk = Chunk::new(out_meta, region, Buffer::F64(mean))
                        .expect("temporal-mean chunk is consistent");
                    stats.bytes_out += chunk.byte_len() as u64;
                    writer.put(chunk);
                }
                if let Err(e) = writer.end_step() {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(stream_err(label, step, e));
                }
            }
            stats.record_step(step_start.elapsed(), wait, compute, step_in);
        }
        writer.close();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_mean_ramps_up_then_slides() {
        let mut m = MovingMean::new(3);
        assert!(m.is_empty());
        assert_eq!(m.push(vec![3.0]), vec![3.0]);
        assert_eq!(m.push(vec![6.0]), vec![4.5]);
        assert_eq!(m.push(vec![9.0]), vec![6.0]);
        assert_eq!(m.len(), 3);
        // Window slides: (6 + 9 + 12) / 3.
        assert_eq!(m.push(vec![12.0]), vec![9.0]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn moving_mean_is_elementwise() {
        let mut m = MovingMean::new(2);
        m.push(vec![1.0, 10.0]);
        let out = m.push(vec![3.0, 30.0]);
        assert_eq!(out, vec![2.0, 20.0]);
    }

    #[test]
    fn window_of_one_is_identity() {
        let mut m = MovingMean::new(1);
        assert_eq!(m.push(vec![5.0, 7.0]), vec![5.0, 7.0]);
        assert_eq!(m.push(vec![1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length changed")]
    fn length_change_is_rejected() {
        let mut m = MovingMean::new(2);
        m.push(vec![1.0]);
        m.push(vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_rejected() {
        let _ = TemporalMean::new(("a", "x"), 0, ("b", "y"));
    }
}
