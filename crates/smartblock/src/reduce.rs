//! The Reduce component: collapse one dimension with an associative
//! operation (sum, mean, min, max).
//!
//! Part of "expanding the generic components library to include a variety
//! of other analytical operations" (paper §VI). Where Dim-Reduce only
//! re-arranges, Reduce actually aggregates: the output has one dimension
//! fewer and each element is the fold of the removed dimension's row.
//! Reducing a 1-d array produces a rank-0 (scalar) variable, computed with
//! a cross-rank reduction — the component works at any input rank.

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::{slab_partition, split_1d_part};
use sb_data::{Buffer, Chunk, DType, DataError, DataResult, Region, Variable, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_transform, Component, StepOutput, StreamArray, TransformSpec};
use crate::error::ComponentResult;

/// The aggregation applied along the reduced dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of the row.
    Sum,
    /// Arithmetic mean of the row.
    Mean,
    /// Minimum of the row.
    Min,
    /// Maximum of the row.
    Max,
}

impl ReduceOp {
    /// Parses a launch-script operation name.
    pub fn parse(name: &str) -> Option<ReduceOp> {
        Some(match name {
            "sum" => ReduceOp::Sum,
            "mean" | "avg" => ReduceOp::Mean,
            "min" => ReduceOp::Min,
            "max" => ReduceOp::Max,
            _ => return None,
        })
    }

    /// The canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Mean => "mean",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        }
    }

    fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => 0.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum | ReduceOp::Mean => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    fn finish(self, acc: f64, count: usize) -> f64 {
        match self {
            ReduceOp::Mean => {
                if count == 0 {
                    0.0
                } else {
                    acc / count as f64
                }
            }
            _ => acc,
        }
    }
}

/// Collapses dimension `dim` of `var` with `op`. The output is always
/// `F64` (aggregates of integer data are fractional for `mean`).
///
/// This is the pure kernel of the Reduce component.
pub fn reduce_axis(var: &Variable, dim: usize, op: ReduceOp) -> DataResult<Variable> {
    var.shape.check_dim(dim)?;
    let sizes = var.shape.sizes();
    let d = sizes[dim];
    let pre: usize = sizes[..dim].iter().product();
    let post: usize = sizes[dim + 1..].iter().product();
    let out_shape = var.shape.without_dim(dim);
    let mut out = vec![op.identity(); pre * post];
    for p in 0..pre {
        for k in 0..d {
            let base = (p * d + k) * post;
            for q in 0..post {
                let v = var.data.get_f64(base + q);
                let slot = &mut out[p * post + q];
                *slot = op.combine(*slot, v);
            }
        }
    }
    for slot in &mut out {
        *slot = op.finish(*slot, d);
    }
    let mut result = Variable::new(var.name.clone(), out_shape, Buffer::F64(out))?;
    // Labels on surviving dims shift past the removed dimension.
    for (&ld, names) in &var.labels {
        if ld == dim {
            continue;
        }
        let nd = if ld > dim { ld - 1 } else { ld };
        result
            .set_labels(nd, names.clone())
            .expect("extent unchanged");
    }
    result.attrs = var.attrs.clone();
    Ok(result)
}

/// The Reduce workflow component.
#[derive(Debug, Clone)]
pub struct Reduce {
    /// Input stream/array names.
    pub input: StreamArray,
    /// Dimension to collapse.
    pub dim: usize,
    /// Aggregation to apply.
    pub op: ReduceOp,
    /// Output stream/array names.
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
}

impl Reduce {
    /// Builds a Reduce collapsing `dim` with `op`.
    pub fn new<I: Into<StreamArray>, O: Into<StreamArray>>(
        input: I,
        dim: usize,
        op: ReduceOp,
        output: O,
    ) -> Reduce {
        Reduce {
            input: input.into(),
            dim,
            op,
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Reduce {
        self.reader_group = group.into();
        self
    }
}

impl Component for Reduce {
    fn label(&self) -> String {
        "reduce".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{unary_transfer, ArraySpec, PartitionRule, ReadSpec, Signature};
        use std::collections::BTreeMap;
        let dim = self.dim;
        Signature::with_boxed_transfer(
            vec![ReadSpec::new(
                &self.input.stream,
                &self.input.array,
                PartitionRule::FirstExcept(dim),
            )],
            unary_transfer(
                self.input.array.clone(),
                self.output.array.clone(),
                move |spec| {
                    spec.check_dim(dim)?;
                    let mut dims = spec.dims.clone();
                    dims.remove(dim);
                    let mut labels = BTreeMap::new();
                    for (&d, names) in &spec.labels {
                        if d == dim {
                            continue;
                        }
                        let nd = if d > dim { d - 1 } else { d };
                        labels.insert(nd, names.clone());
                    }
                    let mut out = ArraySpec::new(dims, sb_data::DType::F64);
                    out.labels = labels;
                    Ok(out)
                },
            ),
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_transform(
            TransformSpec {
                label: "reduce",
                input_stream: &self.input.stream,
                reader_group: &self.reader_group,
                output_stream: &self.output.stream,
                writer_options: self.writer_options,
            },
            comm,
            hub,
            |reader, comm| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                meta.shape.check_dim(self.dim)?;
                let out_shape_global = meta.shape.without_dim(self.dim);

                // Partition along the first non-reduced dim; 1-d inputs use
                // local partials + a cross-rank reduction instead.
                let pdim = (0..meta.shape.ndims()).find(|&d| d != self.dim);
                let (region, out_region) = match pdim {
                    Some(pdim) => {
                        let region = slab_partition(&meta.shape, pdim, comm.size(), comm.rank());
                        // The same block in the output, with `dim` dropped.
                        let out_pdim = if pdim > self.dim { pdim - 1 } else { pdim };
                        let out_region =
                            slab_partition(&out_shape_global, out_pdim, comm.size(), comm.rank());
                        (region, out_region)
                    }
                    None => {
                        // 1-d input: every rank reduces its share.
                        let (off, count) =
                            split_1d_part(meta.shape.size(0), comm.size(), comm.rank());
                        (
                            Region::new(vec![off], vec![count]),
                            Region::new(vec![], vec![]),
                        )
                    }
                };
                let var = reader.get(&self.input.array, &region)?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                let chunk: Option<Chunk> = if pdim.is_some() {
                    let mut local = reduce_axis(&var, self.dim, self.op)?;
                    local.name = self.output.array.clone();
                    let mut out_meta = VariableMeta::new(
                        self.output.array.clone(),
                        out_shape_global.clone(),
                        DType::F64,
                    );
                    for (&ld, names) in &meta.labels {
                        if ld == self.dim {
                            continue;
                        }
                        let nd = if ld > self.dim { ld - 1 } else { ld };
                        out_meta.labels.insert(nd, names.clone());
                    }
                    out_meta.attrs = meta.attrs.clone();
                    Some(Chunk::new(out_meta, out_region, local.data)?)
                } else {
                    // Scalar result: combine local partials across ranks.
                    let values = var.data.into_f64_vec();
                    let local = values
                        .iter()
                        .fold(self.op.identity(), |a, &b| self.op.combine(a, b));
                    let combined = comm.allreduce(local, |a, b| self.op.combine(a, b));
                    let n = meta.shape.total_len();
                    let value = self.op.finish(combined, n);
                    let out_meta = VariableMeta::new(
                        self.output.array.clone(),
                        out_shape_global.clone(),
                        DType::F64,
                    );
                    // Only rank 0 contributes the scalar; the others pace
                    // the stream with no chunk.
                    (comm.rank() == 0).then(|| {
                        Chunk::new(
                            out_meta,
                            Region::new(vec![], vec![]),
                            Buffer::F64(vec![value]),
                        )
                        .expect("scalar chunk is consistent")
                    })
                };
                let compute = kernel_start.elapsed();
                Ok(StepOutput {
                    chunk,
                    bytes_in,
                    compute,
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_data::Shape;

    fn cube() -> Variable {
        // 2 x 3 x 4, element = linear index.
        let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
        Variable::new(
            "t",
            Shape::of(&[("a", 2), ("b", 3), ("c", 4)]),
            Buffer::from(data),
        )
        .unwrap()
        .with_labels(1, &["p", "q", "r"])
        .unwrap()
    }

    #[test]
    fn op_parsing() {
        assert_eq!(ReduceOp::parse("sum"), Some(ReduceOp::Sum));
        assert_eq!(ReduceOp::parse("mean"), Some(ReduceOp::Mean));
        assert_eq!(ReduceOp::parse("avg"), Some(ReduceOp::Mean));
        assert_eq!(ReduceOp::parse("min"), Some(ReduceOp::Min));
        assert_eq!(ReduceOp::parse("max"), Some(ReduceOp::Max));
        assert_eq!(ReduceOp::parse("median"), None);
        assert_eq!(ReduceOp::Mean.name(), "mean");
    }

    #[test]
    fn sum_along_each_axis() {
        let v = cube();
        // Axis 2: row sums of consecutive 4-blocks.
        let r = reduce_axis(&v, 2, ReduceOp::Sum).unwrap();
        assert_eq!(r.shape.sizes(), vec![2, 3]);
        assert_eq!(r.get(&[0, 0]), 0.0 + 1.0 + 2.0 + 3.0);
        assert_eq!(r.get(&[1, 2]), (20..24).sum::<i32>() as f64);
        // Axis 0: pairs 12 apart.
        let r = reduce_axis(&v, 0, ReduceOp::Sum).unwrap();
        assert_eq!(r.shape.sizes(), vec![3, 4]);
        assert_eq!(r.get(&[0, 0]), 0.0 + 12.0);
        assert_eq!(r.get(&[2, 3]), 11.0 + 23.0);
    }

    #[test]
    fn mean_min_max() {
        let v = cube();
        let mean = reduce_axis(&v, 2, ReduceOp::Mean).unwrap();
        assert_eq!(mean.get(&[0, 0]), 1.5);
        let min = reduce_axis(&v, 0, ReduceOp::Min).unwrap();
        assert_eq!(min.get(&[0, 0]), 0.0);
        let max = reduce_axis(&v, 0, ReduceOp::Max).unwrap();
        assert_eq!(max.get(&[0, 0]), 12.0);
    }

    #[test]
    fn labels_shift_past_the_reduced_dim() {
        let v = cube();
        // Reduce dim 0: labels on dim 1 shift to dim 0.
        let r = reduce_axis(&v, 0, ReduceOp::Sum).unwrap();
        assert_eq!(
            r.header(0).unwrap(),
            &["p".to_string(), "q".into(), "r".into()]
        );
        // Reduce dim 1: its labels vanish.
        let r = reduce_axis(&v, 1, ReduceOp::Sum).unwrap();
        assert!(r.labels.is_empty());
    }

    #[test]
    fn reduce_1d_to_scalar_shape() {
        let v = Variable::new(
            "x",
            Shape::linear("n", 5),
            Buffer::F64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
        )
        .unwrap();
        let r = reduce_axis(&v, 0, ReduceOp::Sum).unwrap();
        assert_eq!(r.shape.ndims(), 0);
        assert_eq!(r.data.to_f64_vec(), vec![15.0]);
        let m = reduce_axis(&v, 0, ReduceOp::Mean).unwrap();
        assert_eq!(m.data.to_f64_vec(), vec![3.0]);
    }

    #[test]
    fn bad_dim_rejected() {
        assert!(reduce_axis(&cube(), 3, ReduceOp::Sum).is_err());
    }
}
