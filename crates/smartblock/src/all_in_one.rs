//! The all-in-one (AIO) baseline of the paper's §V-C comparison.
//!
//! To measure what fine-grained componentization costs, the paper writes "a
//! custom, all-in-one (AIO) component that performs the same analytical
//! procedure as all the components involved in the LAMMPS workflow":
//! select the velocity columns, compute magnitudes, histogram — fused into
//! one component with no intermediate streams. Table II compares its
//! start-to-end time against the componentized pipeline.
//!
//! The AIO component reuses the same kernels as the generic components, so
//! the comparison isolates exactly the cost of the extra stream hops.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sb_comm::Communicator;
use sb_data::decompose::split_1d_part;
use sb_data::{DataError, DataResult, Region};
use sb_stream::StreamHub;

use crate::component::{run_sink, Component, StreamArray};
use crate::error::ComponentResult;
use crate::histogram::{bin_counts, HistogramResult};
use crate::magnitude::vector_magnitudes;
use crate::select::select_rows;

/// The fused Select + Magnitude + Histogram baseline.
pub struct AllInOne {
    /// Input stream/array (2-d, labelled on dimension 1).
    pub input: StreamArray,
    /// Names of the vector-component columns to select.
    pub keep: Vec<String>,
    /// Number of histogram bins.
    pub num_bins: usize,
    /// Reader-group name on the input stream.
    pub reader_group: String,
    results: Arc<Mutex<Vec<HistogramResult>>>,
}

impl AllInOne {
    /// Builds the fused pipeline over the named columns.
    pub fn new<I, K>(input: I, keep: K, num_bins: usize) -> AllInOne
    where
        I: Into<StreamArray>,
        K: IntoIterator,
        K::Item: Into<String>,
    {
        assert!(num_bins > 0, "histogram needs at least one bin");
        AllInOne {
            input: input.into(),
            keep: keep.into_iter().map(Into::into).collect(),
            num_bins,
            reader_group: "default".into(),
            results: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle to rank 0's accumulated histograms.
    pub fn results_handle(&self) -> Arc<Mutex<Vec<HistogramResult>>> {
        Arc::clone(&self.results)
    }
}

impl Component for AllInOne {
    fn label(&self) -> String {
        "all-in-one".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{Extent, PartitionRule, ReadSpec, Signature, SpecError};
        let in_stream = self.input.stream.clone();
        let in_array = self.input.array.clone();
        let keep = self.keep.clone();
        let bins = self.num_bins;
        Signature::new(
            vec![ReadSpec::new(
                &in_stream,
                &in_array,
                PartitionRule::Along(0),
            )],
            move |ins| {
                let spec = match ins.first() {
                    Some(s) => s.array(&in_array)?,
                    None => None,
                };
                if let Some(spec) = spec {
                    if spec.ndims() != 2 {
                        return Err(SpecError::RankMismatch {
                            expected: 2,
                            got: spec.ndims(),
                        });
                    }
                    if let Some(available) = spec.labels.get(&1) {
                        for name in &keep {
                            if !available.contains(name) {
                                return Err(SpecError::UnknownLabel {
                                    dim: 1,
                                    label: name.clone(),
                                    available: available.clone(),
                                });
                            }
                        }
                    }
                    if let Extent::Fixed(elements) = spec.dims[0].extent {
                        if bins > elements {
                            return Err(SpecError::DegenerateBins { bins, elements });
                        }
                    }
                }
                Ok(Vec::new())
            },
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_sink(
            "all-in-one",
            comm,
            hub,
            &self.input.stream,
            &self.reader_group,
            |reader, comm, step| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?;
                if meta.shape.ndims() != 2 {
                    return Err(DataError::RegionOutOfBounds {
                        detail: format!(
                            "all-in-one expects 2-d input, stream carries rank {}",
                            meta.shape.ndims()
                        ),
                    }
                    .into());
                }
                let indices: Vec<usize> = self
                    .keep
                    .iter()
                    .map(|n| meta.resolve_label(1, n))
                    .collect::<DataResult<_>>()?;
                let n = meta.shape.size(0);
                let m = meta.shape.size(1);
                let (off, count) = split_1d_part(n, comm.size(), comm.rank());
                let var = reader.get(
                    &self.input.array,
                    &Region::new(vec![off, 0], vec![count, m]),
                )?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                let selected = select_rows(&var, 1, &indices)?;
                let mags = vector_magnitudes(&selected)?;
                let (lmin, lmax) = mags
                    .iter()
                    .filter(|v| v.is_finite())
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
                        (a.min(v), b.max(v))
                    });
                let min = comm.allreduce(lmin, f64::min);
                let max = comm.allreduce(lmax, f64::max);
                let (counts, nan) = bin_counts(&mags, min, max, self.num_bins);
                let total = comm.reduce(0, counts, |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                });
                let nan_total = comm.reduce(0, nan, |a, b| a + b);
                let compute = kernel_start.elapsed();

                if let Some(counts) = total {
                    self.results.lock().push(HistogramResult {
                        step,
                        min,
                        max,
                        counts,
                        nan_count: nan_total.unwrap_or(0),
                    });
                }
                Ok((bytes_in, compute))
            },
        )
    }
}

impl std::fmt::Debug for AllInOne {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllInOne")
            .field("input", &self.input)
            .field("keep", &self.keep)
            .field("num_bins", &self.num_bins)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_handles() {
        let aio = AllInOne::new(("dump.fp", "atoms"), ["vx", "vy", "vz"], 16);
        assert_eq!(aio.keep, vec!["vx", "vy", "vz"]);
        let h = aio.results_handle();
        assert!(h.lock().is_empty());
        assert_eq!(aio.label(), "all-in-one");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = AllInOne::new(("a", "x"), ["vx"], 0);
    }
}
