//! The Stats component: five summary statistics of any-rank data.
//!
//! A small, reusable reduction block in the SmartBlock mould ("expanding
//! the generic components library to include a variety of other analytical
//! operations", §VI): the ranks partition the input, combine local partial
//! sums with two reductions, and publish a labelled 1-d array
//! `{min, max, mean, std, count}` that any downstream component (or a file
//! endpoint) can consume.

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::default_partition;
use sb_data::{Buffer, Chunk, DataError, Region, Shape, Variable, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_transform, Component, StepOutput, StreamArray, TransformSpec};
use crate::error::ComponentResult;

/// Partial sums that combine associatively across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Sum of values.
    pub sum: f64,
    /// Sum of squared values.
    pub sum_sq: f64,
    /// Number of values.
    pub count: u64,
}

impl Moments {
    /// Partial sums of a slice.
    pub fn of(values: &[f64]) -> Moments {
        let mut m = Moments {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
            count: values.len() as u64,
        };
        for &v in values {
            m.min = m.min.min(v);
            m.max = m.max.max(v);
            m.sum += v;
            m.sum_sq += v * v;
        }
        m
    }

    /// Combines two partials.
    pub fn merge(a: Moments, b: Moments) -> Moments {
        Moments {
            min: a.min.min(b.min),
            max: a.max.max(b.max),
            sum: a.sum + b.sum,
            sum_sq: a.sum_sq + b.sum_sq,
            count: a.count + b.count,
        }
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn std(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }
}

/// The Stats workflow component.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Input stream/array names (any rank).
    pub input: StreamArray,
    /// Output stream/array names (a labelled 1-d array of 5 statistics).
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
}

impl Stats {
    /// Builds a Stats between the given endpoints.
    pub fn new<I: Into<StreamArray>, O: Into<StreamArray>>(input: I, output: O) -> Stats {
        Stats {
            input: input.into(),
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Stats {
        self.reader_group = group.into();
        self
    }
}

impl Component for Stats {
    fn label(&self) -> String {
        "stats".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{ArraySpec, DimSpec, Signature, StreamSpec};
        // Stats accepts any rank and tolerates more ranks than slices (the
        // reduction is global), so it declares no partitioned reads.
        let in_array = self.input.array.clone();
        let out_array = self.output.array.clone();
        Signature::new(Vec::new(), move |ins| {
            if let Some(stream) = ins.first() {
                stream.array(&in_array)?;
            }
            let out = ArraySpec::new(vec![DimSpec::fixed("stat", 5)], sb_data::DType::F64)
                .with_dim_labels(0, ["min", "max", "mean", "std", "count"]);
            Ok(vec![StreamSpec::known_one(out_array.clone(), out)])
        })
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_transform(
            TransformSpec {
                label: "stats",
                input_stream: &self.input.stream,
                reader_group: &self.reader_group,
                output_stream: &self.output.stream,
                writer_options: self.writer_options,
            },
            comm,
            hub,
            |reader, comm| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                let region = default_partition(&meta.shape, comm.size(), comm.rank());
                let var = reader.get(&self.input.array, &region)?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                let local = Moments::of(&var.data.into_f64_vec());
                let global = comm.allreduce(local, Moments::merge);
                let compute = kernel_start.elapsed();

                let mut out_meta = VariableMeta::new(
                    self.output.array.clone(),
                    Shape::linear("stat", 5),
                    sb_data::DType::F64,
                );
                out_meta.labels.insert(
                    0,
                    ["min", "max", "mean", "std", "count"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                );
                // Rank 0 publishes the whole result; other ranks just pace
                // the writer group.
                let chunk = (comm.rank() == 0).then(|| {
                    let values = vec![
                        global.min,
                        global.max,
                        global.mean(),
                        global.std(),
                        global.count as f64,
                    ];
                    Chunk::new(out_meta, Region::new(vec![0], vec![5]), Buffer::F64(values))
                        .expect("stats chunk is consistent")
                });
                Ok(StepOutput {
                    chunk,
                    bytes_in,
                    compute,
                })
            },
        )
    }
}

/// Reads a Stats output variable back into a [`Moments`]-like summary.
pub fn parse_stats_output(var: &Variable) -> Option<(f64, f64, f64, f64, u64)> {
    if var.shape.total_len() != 5 {
        return None;
    }
    let v = var.data.to_f64_vec();
    Some((v[0], v[1], v[2], v[3], v[4] as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_direct_computation() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let m = Moments::of(&values);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
        assert_eq!(m.mean(), 2.5);
        assert!((m.std() - 1.118033988749895).abs() < 1e-12);
        assert_eq!(m.count, 4);
    }

    #[test]
    fn merge_is_equivalent_to_whole() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).cos()).collect();
        let whole = Moments::of(&all);
        let merged = Moments::merge(Moments::of(&all[..33]), Moments::of(&all[33..]));
        assert!((whole.mean() - merged.mean()).abs() < 1e-12);
        assert!((whole.std() - merged.std()).abs() < 1e-12);
        assert_eq!(whole.min, merged.min);
        assert_eq!(whole.max, merged.max);
        assert_eq!(whole.count, merged.count);
    }

    #[test]
    fn empty_moments_are_safe() {
        let m = Moments::of(&[]);
        assert_eq!(m.count, 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.std(), 0.0);
    }

    #[test]
    fn parse_rejects_wrong_size() {
        let v = Variable::new("s", Shape::linear("stat", 3), Buffer::F64(vec![0.0; 3])).unwrap();
        assert!(parse_stats_output(&v).is_none());
    }
}
