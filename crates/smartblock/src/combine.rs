//! The Combine component: element-wise join of two streams.
//!
//! Every paper component has exactly one input; real workflows also need
//! joins — "richer workflows described by directed acyclic graphs" (§VI).
//! Combine reads step *k* of two arrays (possibly produced by different
//! components at different process counts), checks that their global
//! shapes agree, and emits their element-wise combination. Steps are
//! aligned by transport step index, which FlexPath-style lockstep
//! guarantees matches producer timesteps.

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::default_partition;
use sb_data::{Buffer, Chunk, DType, VariableMeta};
use sb_stream::{StepStatus, StreamHub, WriterOptions};

use crate::component::{
    fault_gate, stash_partial_stats, stream_err, Component, StepFault, StreamArray,
};
use crate::error::{ComponentError, ComponentResult, StepResult};
use crate::metrics::ComponentStats;

/// The element-wise operation applied to the two inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `left + right`
    Add,
    /// `left - right`
    Sub,
    /// `left * right`
    Mul,
    /// `left / right` (0 where `right == 0`)
    Div,
}

impl BinaryOp {
    /// Parses a launch-script operation name.
    pub fn parse(name: &str) -> Option<BinaryOp> {
        Some(match name {
            "add" => BinaryOp::Add,
            "sub" => BinaryOp::Sub,
            "mul" => BinaryOp::Mul,
            "div" => BinaryOp::Div,
            _ => return None,
        })
    }

    /// Applies the operation.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
        }
    }
}

/// The Combine workflow component.
#[derive(Debug, Clone)]
pub struct Combine {
    /// Left input endpoint.
    pub left: StreamArray,
    /// Right input endpoint.
    pub right: StreamArray,
    /// Element-wise operation.
    pub op: BinaryOp,
    /// Output stream/array names.
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group override for the left input (defaults to
    /// `combine-left` when both inputs share a stream, else `default`).
    pub left_group: Option<String>,
    /// Reader-group override for the right input.
    pub right_group: Option<String>,
}

impl Combine {
    /// Builds a Combine of two endpoints.
    pub fn new<L, R, O>(left: L, op: BinaryOp, right: R, output: O) -> Combine
    where
        L: Into<StreamArray>,
        R: Into<StreamArray>,
        O: Into<StreamArray>,
    {
        let left = left.into();
        let right = right.into();
        Combine {
            left,
            right,
            op,
            output: output.into(),
            writer_options: WriterOptions::default(),
            left_group: None,
            right_group: None,
        }
    }

    /// Overrides the reader group of the *left* input (the script option
    /// `group=`); use [`Combine::with_right_group`] for the right side.
    pub fn with_reader_group(mut self, group: impl Into<String>) -> Combine {
        self.left_group = Some(group.into());
        self
    }

    /// Overrides the reader group of the right input.
    pub fn with_right_group(mut self, group: impl Into<String>) -> Combine {
        self.right_group = Some(group.into());
        self
    }

    fn reader_groups(&self) -> (String, String) {
        // Reading both sides of one stream needs distinct groups; distinct
        // streams can share the default group namespace per stream.
        let (dl, dr) = if self.left.stream == self.right.stream {
            ("combine-left", "combine-right")
        } else {
            ("default", "default")
        };
        (
            self.left_group.clone().unwrap_or_else(|| dl.to_string()),
            self.right_group.clone().unwrap_or_else(|| dr.to_string()),
        )
    }
}

impl Component for Combine {
    fn label(&self) -> String {
        "combine".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.left.stream.clone(), self.right.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        let (lg, rg) = self.reader_groups();
        vec![
            (self.left.stream.clone(), lg),
            (self.right.stream.clone(), rg),
        ]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{
            ArraySpec, Extent, PartitionRule, ReadSpec, Signature, SpecError, StreamSpec,
        };
        let left = self.left.clone();
        let right = self.right.clone();
        let out_array = self.output.array.clone();
        Signature::new(
            vec![
                ReadSpec::new(&self.left.stream, &self.left.array, PartitionRule::Along(0)),
                ReadSpec::new(
                    &self.right.stream,
                    &self.right.array,
                    PartitionRule::Along(0),
                ),
            ],
            move |ins| {
                let lspec = match ins.first() {
                    Some(s) => s.array(&left.array)?,
                    None => None,
                };
                let rspec = match ins.get(1) {
                    Some(s) => s.array(&right.array)?,
                    None => None,
                };
                let (Some(l), Some(r)) = (lspec, rspec) else {
                    return Ok(vec![StreamSpec::Opaque]);
                };
                // Dynamic extents are compatible with anything; two fixed
                // extents must agree exactly (the run-time assertion).
                let agree = l.ndims() == r.ndims()
                    && l.dims.iter().zip(&r.dims).all(|(a, b)| {
                        !matches!(
                            (a.extent, b.extent),
                            (Extent::Fixed(x), Extent::Fixed(y)) if x != y
                        )
                    });
                if !agree {
                    return Err(SpecError::ShapeMismatch {
                        left: l.to_string(),
                        right: r.to_string(),
                    });
                }
                let mut out = ArraySpec::new(l.dims.clone(), sb_data::DType::F64);
                out.labels = l.labels.clone();
                Ok(vec![StreamSpec::known_one(out_array.clone(), out)])
            },
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        let (lgroup, rgroup) = self.reader_groups();
        let mut left =
            hub.open_reader_grouped(&self.left.stream, &lgroup, comm.rank(), comm.size());
        let mut right =
            hub.open_reader_grouped(&self.right.stream, &rgroup, comm.rank(), comm.size());
        let mut writer = hub.open_writer(
            &self.output.stream,
            comm.rank(),
            comm.size(),
            self.writer_options,
        );
        let mut stats = ComponentStats::default();
        let label = "combine";
        let rank = comm.rank();
        loop {
            let step = left.current_step();
            let gate = match fault_gate(hub, label, rank, step) {
                Ok(StepFault::Stall) => {
                    writer.abandon();
                    return Ok(stats);
                }
                Ok(g) => g,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(e);
                }
            };
            let step_start = Instant::now();
            let l_status = match left.begin_step() {
                Ok(s) => s,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(stream_err(label, step, e));
                }
            };
            if l_status == StepStatus::EndOfStream {
                // Drain the other side so its producers can finish. A drain
                // error just stops the drain: our own inputs ended cleanly.
                while let Ok(StepStatus::Ready(_)) = right.begin_step() {
                    right.end_step();
                }
                break;
            }
            match right.begin_step() {
                Ok(StepStatus::EndOfStream) => {
                    left.end_step();
                    while let Ok(StepStatus::Ready(_)) = left.begin_step() {
                        left.end_step();
                    }
                    break;
                }
                Ok(StepStatus::Ready(_)) => {}
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(stream_err(label, step, e));
                }
            }
            let wait = step_start.elapsed();

            let read = (|| -> StepResult<_> {
                let lmeta = left
                    .meta(&self.left.array)
                    .ok_or_else(|| sb_data::DataError::Container {
                        detail: format!("no array {:?} in stream", self.left.array),
                    })?
                    .clone();
                let rmeta = right
                    .meta(&self.right.array)
                    .ok_or_else(|| sb_data::DataError::Container {
                        detail: format!("no array {:?} in stream", self.right.array),
                    })?
                    .clone();
                assert_eq!(
                    lmeta.shape.sizes(),
                    rmeta.shape.sizes(),
                    "combine: input shapes disagree ({} vs {})",
                    lmeta.shape,
                    rmeta.shape
                );
                let region = default_partition(&lmeta.shape, comm.size(), comm.rank());
                let lv = left.get(&self.left.array, &region)?;
                let rv = right.get(&self.right.array, &region)?;
                Ok((lmeta, region, lv, rv))
            })();
            let (lmeta, region, lv, rv) = match read {
                Ok(v) => v,
                Err(e) => {
                    writer.abandon();
                    stash_partial_stats(stats);
                    return Err(ComponentError::from_step(label, step, e));
                }
            };
            left.end_step();
            right.end_step();
            let step_in = (lv.byte_len() + rv.byte_len()) as u64;

            let kernel_start = Instant::now();
            let a = lv.data.into_f64_vec();
            let b = rv.data.into_f64_vec();
            let out: Vec<f64> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| self.op.apply(x, y))
                .collect();
            let compute = kernel_start.elapsed();

            let mut out_meta =
                VariableMeta::new(self.output.array.clone(), lmeta.shape.clone(), DType::F64);
            out_meta.labels = lmeta.labels.clone();
            if let Err(e) = writer.begin_step() {
                writer.abandon();
                stash_partial_stats(stats);
                return Err(stream_err(label, step, e));
            }
            if gate != StepFault::DropChunk {
                let chunk = Chunk::new(out_meta, region, Buffer::F64(out))
                    .expect("combine chunk is consistent");
                stats.bytes_out += chunk.byte_len() as u64;
                writer.put(chunk);
            }
            if let Err(e) = writer.end_step() {
                writer.abandon();
                stash_partial_stats(stats);
                return Err(stream_err(label, step, e));
            }
            stats.record_step(step_start.elapsed(), wait, compute, step_in);
        }
        writer.close();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_parsing_and_semantics() {
        assert_eq!(BinaryOp::parse("add"), Some(BinaryOp::Add));
        assert_eq!(BinaryOp::parse("sub"), Some(BinaryOp::Sub));
        assert_eq!(BinaryOp::parse("mul"), Some(BinaryOp::Mul));
        assert_eq!(BinaryOp::parse("div"), Some(BinaryOp::Div));
        assert_eq!(BinaryOp::parse("pow"), None);
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinaryOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinaryOp::Div.apply(6.0, 3.0), 2.0);
        assert_eq!(BinaryOp::Div.apply(6.0, 0.0), 0.0, "guarded division");
    }

    #[test]
    fn same_stream_inputs_use_distinct_groups() {
        let c = Combine::new(("s.fp", "a"), BinaryOp::Add, ("s.fp", "b"), ("o.fp", "sum"));
        assert_eq!(
            c.reader_groups(),
            ("combine-left".into(), "combine-right".into())
        );
        let c = Combine::new(("l.fp", "a"), BinaryOp::Add, ("r.fp", "b"), ("o.fp", "sum"));
        assert_eq!(c.reader_groups(), ("default".into(), "default".into()));
        assert_eq!(c.input_streams(), vec!["l.fp", "r.fp"]);
        let c = c.with_reader_group("mine").with_right_group("other");
        assert_eq!(c.reader_groups(), ("mine".into(), "other".into()));
    }
}
