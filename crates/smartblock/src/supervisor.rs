//! The workflow supervisor: per-component fault policies and the
//! restart/degrade/abort state machine behind [`crate::Workflow::run_with`].
//!
//! Each component gets one supervisor thread. The supervisor spawns the
//! component's rank group, reaps *every* rank (`LaunchHandle::join_all` —
//! no stale rank of a failed incarnation may outlive the attempt), and on
//! failure applies the component's [`FaultPolicy`]:
//!
//! - **Abort** (default): record the failure, set the workflow-wide abort
//!   flag, and poison every stream so blocked peers fail fast with
//!   [`sb_stream::StreamError::PeerGone`] instead of hanging.
//! - **Restart**: rewind the component's stream attachments
//!   ([`sb_stream::StreamHub::prepare_restart`]) — readers resume at their
//!   first not-fully-released step, writers re-produce their last
//!   incomplete step — wait a linear backoff, and respawn, up to
//!   `max_restarts` times; exhaustion escalates to abort.
//! - **Degrade**: force a clean end-of-stream on the component's outputs
//!   (downstream drains what exists, then finishes normally) and detach its
//!   input subscriptions (upstream stops retaining steps for it). The
//!   workflow completes without the component.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use sb_comm::{CommError, LaunchHandle};
use sb_stream::{EventKind, StreamHub, TraceConfig, TraceSite};

use crate::component::{take_partial_stats, Component};
use crate::error::{backoff_delay, ComponentError};
use crate::metrics::{ComponentOutcome, ComponentReport, ComponentStats};

/// What the supervisor does when a component fails (any rank returns an
/// error or panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureAction {
    /// Tear the whole workflow down and surface the error to the caller.
    #[default]
    Abort,
    /// Restart the component, resuming its streams where the last complete
    /// step left off.
    Restart,
    /// Close the component's outputs cleanly and let the rest of the
    /// workflow finish without it.
    Degrade,
}

/// Per-component failure-handling policy.
///
/// Marked `#[non_exhaustive]` so future knobs (restart budgets, jitter,
/// health probes) are not breaking changes: construct via
/// [`FaultPolicy::abort`], [`FaultPolicy::restart`], or
/// [`FaultPolicy::degrade`] and refine with the `with_*` setters.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPolicy {
    /// What to do when the component fails.
    pub action: FailureAction,
    /// Restarts allowed before escalating to abort (only meaningful with
    /// [`FailureAction::Restart`]).
    pub max_restarts: u32,
    /// Base delay between restart attempts; attempt `n` waits `n * backoff`
    /// (linear). Keep this well under the hub timeout or sibling components
    /// may time out while the restart is still pending.
    pub backoff: Duration,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy::abort()
    }
}

impl FaultPolicy {
    /// Fail the whole workflow on the first component failure (default).
    pub fn abort() -> FaultPolicy {
        FaultPolicy {
            action: FailureAction::Abort,
            max_restarts: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Restart the failed component up to `max_restarts` times.
    pub fn restart(max_restarts: u32) -> FaultPolicy {
        FaultPolicy {
            action: FailureAction::Restart,
            max_restarts,
            backoff: Duration::from_millis(10),
        }
    }

    /// Drop the failed component and let the workflow finish degraded.
    pub fn degrade() -> FaultPolicy {
        FaultPolicy {
            action: FailureAction::Degrade,
            max_restarts: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Sets the restart backoff base delay (builder style).
    pub fn with_backoff(mut self, backoff: Duration) -> FaultPolicy {
        self.backoff = backoff;
        self
    }

    /// Sets the restart budget (builder style).
    pub fn with_max_restarts(mut self, max_restarts: u32) -> FaultPolicy {
        self.max_restarts = max_restarts;
        self
    }
}

/// Whether [`crate::Workflow::run_with`] runs static validation first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Validation {
    /// Fail fast — without launching anything — on any
    /// [`crate::analysis::Severity::Error`] issue (default).
    #[default]
    FailFast,
    /// Launch without the gate: the escape hatch for workflows the static
    /// analysis cannot see through.
    Skip,
}

/// Options for [`crate::Workflow::run_with`] — the single entry point that
/// replaced `run()` / `run_unchecked()`.
///
/// Marked `#[non_exhaustive]`; construct via [`RunOptions::default`] (or
/// [`RunOptions::new`]) and refine with the `with_*` setters.
#[non_exhaustive]
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Static-validation policy (default: fail fast on fatal issues).
    pub validation: Validation,
    /// Fault policy for components without a per-component override
    /// (default: abort the workflow).
    pub fault_policy: FaultPolicy,
    /// Overrides the hub's blocking-operation timeout for this run.
    pub hub_timeout: Option<Duration>,
    /// Enables step-timeline tracing for this run; the drained
    /// [`sb_stream::Timeline`] lands on
    /// [`crate::WorkflowReport::timeline`]. `SB_TRACE=1` in the environment
    /// enables tracing with the default config even when this is `None`.
    pub trace: Option<TraceConfig>,
}

impl RunOptions {
    /// The default options: fail-fast validation, abort-on-failure, the
    /// hub's own timeout.
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Sets the validation policy (builder style).
    pub fn with_validation(mut self, validation: Validation) -> RunOptions {
        self.validation = validation;
        self
    }

    /// Sets the default fault policy (builder style).
    pub fn with_fault_policy(mut self, fault_policy: FaultPolicy) -> RunOptions {
        self.fault_policy = fault_policy;
        self
    }

    /// Overrides the hub timeout for this run (builder style).
    pub fn with_hub_timeout(mut self, hub_timeout: Duration) -> RunOptions {
        self.hub_timeout = Some(hub_timeout);
        self
    }

    /// Enables step-timeline tracing for this run (builder style).
    pub fn with_tracing(mut self, trace: TraceConfig) -> RunOptions {
        self.trace = Some(trace);
        self
    }
}

/// State shared by every component supervisor of one workflow run.
pub(crate) struct Supervision {
    pub(crate) hub: Arc<StreamHub>,
    /// Set by the first supervisor that escalates to abort.
    abort: AtomicBool,
    /// The failure that caused the abort (first writer wins).
    first_failure: Mutex<Option<(String, u32, ComponentError)>>,
}

impl Supervision {
    pub(crate) fn new(hub: Arc<StreamHub>) -> Supervision {
        Supervision {
            hub,
            abort: AtomicBool::new(false),
            first_failure: Mutex::new(None),
        }
    }

    pub(crate) fn aborting(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    pub(crate) fn take_first_failure(&self) -> Option<(String, u32, ComponentError)> {
        self.first_failure.lock().take()
    }

    fn escalate(&self, label: &str, attempts: u32, error: ComponentError) {
        {
            let mut first = self.first_failure.lock();
            if first.is_none() {
                *first = Some((label.to_string(), attempts, error.clone()));
            }
        }
        self.abort.store(true, Ordering::SeqCst);
        self.hub
            .poison_all(&format!("workflow aborted: {label} failed: {error}"));
    }
}

/// Picks the most informative error among the failed ranks: a root-cause
/// error (panic, injected fault, data error) over a secondary one (a rank
/// blocked on a peer that died).
fn primary_error(errors: Vec<ComponentError>) -> Option<ComponentError> {
    let mut secondary = None;
    for e in errors {
        if !e.is_secondary() {
            return Some(e);
        }
        secondary.get_or_insert(e);
    }
    secondary
}

/// Runs one component under supervision: spawn, reap all ranks, apply the
/// fault policy, repeat while restarting. Returns the component's report;
/// fatal failures are recorded on `sup` as a side effect.
///
/// The policy lives behind a shared slot rather than a plain reference so a
/// reactive trigger (`raise_fault_policy`) can replace it while the
/// component runs — the slot is re-read at each failure decision point.
pub(crate) fn supervise(
    label: &str,
    nranks: usize,
    component: Arc<dyn Component>,
    policy: &Mutex<FaultPolicy>,
    sup: &Supervision,
) -> ComponentReport {
    let mut attempts = 0u32;
    // Accounting carried across attempts, by rank: a restarted component
    // must report the union of everything its attempts did, not just the
    // final attempt (released steps are not re-produced, so dropping
    // earlier attempts undercounts steps and bytes).
    let mut carried: Vec<ComponentStats> = vec![ComponentStats::default(); nranks];
    loop {
        attempts += 1;
        let comp = Arc::clone(&component);
        let hub = Arc::clone(&sup.hub);
        // Each rank installs its trace ring (a no-op while tracing is
        // disabled), runs, then harvests any partial stats a failing run
        // loop stashed on this same thread.
        let handle = match LaunchHandle::spawn(label, nranks, move |comm| {
            let _ring = hub.tracer().install_thread_ring();
            let result = comp.run(&comm, &hub);
            let partial = take_partial_stats();
            (result, partial)
        }) {
            Ok(h) => h,
            Err(e) => {
                let error = ComponentError::Launch {
                    label: label.to_string(),
                    source: e,
                };
                sup.escalate(label, attempts, error.clone());
                return failed_report(label, nranks, attempts, error);
            }
        };

        // Reap every rank: no thread of this incarnation may survive into
        // a restart. `join_all` yields results in rank order, so the
        // enumeration index is the rank.
        let mut errors = Vec::new();
        for (rank, joined) in handle.join_all().into_iter().enumerate() {
            match joined {
                Ok((Ok(stats), _)) => carried[rank].absorb(stats),
                Ok((Err(e), partial)) => {
                    if let Some(stats) = partial {
                        carried[rank].absorb(stats);
                    }
                    errors.push(e);
                }
                Err(CommError::RankPanicked { rank, message }) => {
                    errors.push(ComponentError::Panicked {
                        label: label.to_string(),
                        rank,
                        message,
                    })
                }
                Err(other) => errors.push(ComponentError::Launch {
                    label: label.to_string(),
                    source: other,
                }),
            }
        }

        let Some(error) = primary_error(errors) else {
            return ComponentReport::from_ranks(label.to_string(), carried)
                .with_supervision(attempts, ComponentOutcome::Completed);
        };

        // Failures observed while the workflow is already tearing down are
        // collateral damage of the poisoned streams, not policy material.
        if sup.aborting() {
            return failed_report(label, nranks, attempts, error);
        }

        // Re-read the slot at the decision point: a trigger may have raised
        // the policy since the component was launched.
        let policy = policy.lock().clone();
        match policy.action {
            FailureAction::Restart if attempts <= policy.max_restarts => {
                supervisor_event(sup, label, EventKind::RestartAttempt, (attempts + 1) as u64);
                sup.hub.prepare_restart(
                    &component.input_subscriptions(),
                    &component.output_streams(),
                );
                std::thread::sleep(backoff_delay(policy.backoff, attempts));
                continue;
            }
            FailureAction::Degrade => {
                supervisor_event(sup, label, EventKind::Degraded, attempts as u64);
                for stream in component.output_streams() {
                    sup.hub.force_end_of_stream(&stream);
                }
                for (stream, group) in component.input_subscriptions() {
                    sup.hub.detach_reader_group(&stream, &group);
                }
                let mut report = ComponentReport::from_ranks(label.to_string(), carried)
                    .with_supervision(attempts, ComponentOutcome::Degraded { error });
                report.nranks = nranks;
                return report;
            }
            // Abort, or a restart budget that just ran out.
            _ => {
                sup.escalate(label, attempts, error.clone());
                return failed_report(label, nranks, attempts, error);
            }
        }
    }
}

/// Records a supervisor decision on the timeline (restart or degrade).
/// Supervisor threads have no event ring; these rare instants go straight
/// to the tracer sink.
fn supervisor_event(sup: &Supervision, label: &str, kind: EventKind, arg: u64) {
    let tracer = sup.hub.tracer();
    if tracer.enabled() {
        let site = TraceSite::component(tracer.intern(label), 0, 0);
        tracer.instant(kind, site, arg);
    }
}

fn failed_report(
    label: &str,
    nranks: usize,
    attempts: u32,
    error: ComponentError,
) -> ComponentReport {
    let mut report = ComponentReport::from_ranks(label.to_string(), Vec::new())
        .with_supervision(attempts, ComponentOutcome::Failed { error });
    report.nranks = nranks;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_builders_and_defaults() {
        assert_eq!(FaultPolicy::default(), FaultPolicy::abort());
        let p = FaultPolicy::restart(3).with_backoff(Duration::from_millis(1));
        assert_eq!(p.action, FailureAction::Restart);
        assert_eq!(p.max_restarts, 3);
        assert_eq!(p.backoff, Duration::from_millis(1));
        let d = FaultPolicy::degrade().with_max_restarts(7);
        assert_eq!(d.action, FailureAction::Degrade);
        assert_eq!(d.max_restarts, 7);
    }

    #[test]
    fn run_options_builders() {
        let o = RunOptions::new()
            .with_validation(Validation::Skip)
            .with_fault_policy(FaultPolicy::degrade())
            .with_hub_timeout(Duration::from_secs(1));
        assert_eq!(o.validation, Validation::Skip);
        assert_eq!(o.fault_policy.action, FailureAction::Degrade);
        assert_eq!(o.hub_timeout, Some(Duration::from_secs(1)));
    }

    #[test]
    fn primary_error_prefers_root_causes() {
        let secondary = ComponentError::Stream {
            label: "a".into(),
            step: 0,
            source: sb_stream::StreamError::PeerGone {
                stream: "s.fp".into(),
                reason: "poisoned".into(),
            },
        };
        let root = ComponentError::Panicked {
            label: "a".into(),
            rank: 1,
            message: "boom".into(),
        };
        let picked = primary_error(vec![secondary.clone(), root.clone()]).unwrap();
        assert_eq!(picked, root);
        assert_eq!(primary_error(vec![secondary.clone()]).unwrap(), secondary);
        assert_eq!(primary_error(Vec::new()), None);
    }
}
