//! The component abstraction and the shared transform run-loop.
//!
//! A SmartBlock component is launched with a process count and run-time
//! arguments only; it learns everything else (shapes, labels, types) from
//! the stream. The [`Component`] trait captures that contract; the
//! [`run_transform`] helper implements the step loop shared by every
//! one-input/one-output transform component.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sb_comm::Communicator;
use sb_data::Chunk;
use sb_stream::{
    EventKind, FaultOp, StepStatus, StreamError, StreamHub, StreamReader, StreamWriter, TraceSite,
    WriterOptions,
};

use crate::error::{ComponentError, ComponentResult, StepResult};
use crate::metrics::ComponentStats;

thread_local! {
    /// Stats a failing run loop accumulated before its error. A rank that
    /// dies mid-run returns `Err` — which carries no [`ComponentStats`] —
    /// so the loop stashes its partials here and the supervisor harvests
    /// them on the same thread, letting a restarted component report the
    /// union of all its attempts instead of only the final one.
    static PARTIAL_STATS: RefCell<Option<ComponentStats>> = const { RefCell::new(None) };
}

/// Stashes the stats a failing rank accumulated before its error, for the
/// supervisor to merge into the component's report. The shared run loops
/// ([`run_source`], [`run_transform`], [`run_sink`]) do this automatically;
/// custom `Component` impls with hand-rolled loops should too, or their
/// pre-restart accounting is lost.
pub fn stash_partial_stats(stats: ComponentStats) {
    PARTIAL_STATS.with(|cell| *cell.borrow_mut() = Some(stats));
}

/// Takes the stats the failing run loop stashed on this thread, if any.
/// Called by the supervisor's rank closure right after `Component::run`
/// returns, on the same thread the loop ran on.
pub(crate) fn take_partial_stats() -> Option<ComponentStats> {
    PARTIAL_STATS.with(|cell| cell.borrow_mut().take())
}

/// The per-step trace instrumentation of one run loop: the hub tracer plus
/// this component's interned label. Everything is a no-op (one relaxed
/// atomic load) while tracing is disabled.
struct LoopTrace {
    tracer: Arc<sb_stream::Tracer>,
    label: u32,
    rank: usize,
}

impl LoopTrace {
    fn new(hub: &StreamHub, label: &str, rank: usize) -> LoopTrace {
        let tracer = Arc::clone(hub.tracer());
        let label = if tracer.enabled() {
            tracer.intern_thread_label(label)
        } else {
            0
        };
        LoopTrace {
            tracer,
            label,
            rank,
        }
    }

    #[inline]
    fn now(&self) -> u64 {
        if self.tracer.enabled() {
            self.tracer.now_ns()
        } else {
            0
        }
    }

    #[inline]
    fn span(&self, kind: EventKind, step: u64, start_ns: u64) {
        self.tracer.span(
            kind,
            TraceSite::component(self.label, self.rank, step),
            start_ns,
        );
    }
}

/// A `(stream, array)` name pair — the unit of workflow wiring.
///
/// Launch scripts connect components by using one component's output pair
/// as another's input pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamArray {
    /// Stream name (e.g. `"lmpselect.fp"`).
    pub stream: String,
    /// Array name within the stream (e.g. `"lmpsel"`).
    pub array: String,
}

impl StreamArray {
    /// Builds a pair from anything string-like.
    pub fn new(stream: impl Into<String>, array: impl Into<String>) -> StreamArray {
        StreamArray {
            stream: stream.into(),
            array: array.into(),
        }
    }
}

impl<S: Into<String>, A: Into<String>> From<(S, A)> for StreamArray {
    fn from((stream, array): (S, A)) -> StreamArray {
        StreamArray::new(stream, array)
    }
}

impl std::fmt::Display for StreamArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.stream, self.array)
    }
}

/// A runnable workflow component.
///
/// `run` is called once per rank, on that rank's thread, with the
/// component's communicator and the workflow's stream hub. Implementations
/// must be pure configuration (shared immutably across ranks).
pub trait Component: Send + Sync + 'static {
    /// Display label (also the default thread-name prefix).
    fn label(&self) -> String;

    /// Executes one rank of the component until its input ends.
    ///
    /// Failure is a first-class outcome: a stalled peer, malformed input,
    /// or injected chaos fault returns a typed [`ComponentError`] instead
    /// of panicking, and the workflow supervisor applies the component's
    /// [`crate::FaultPolicy`] to it.
    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult;

    /// Streams this component reads (for workflow wiring validation).
    fn input_streams(&self) -> Vec<String> {
        Vec::new()
    }

    /// `(stream, reader-group)` subscriptions this component opens. Two
    /// components sharing a `(stream, group)` pair would corrupt each
    /// other's step accounting; [`crate::Workflow::validate`] flags it.
    fn input_subscriptions(&self) -> Vec<(String, String)> {
        self.input_streams()
            .into_iter()
            .map(|s| (s, "default".to_string()))
            .collect()
    }

    /// Streams this component writes (for workflow wiring validation).
    fn output_streams(&self) -> Vec<String> {
        Vec::new()
    }

    /// The component's static contract — declared reads plus a transfer
    /// function from input to output array specs — consumed by
    /// [`crate::Workflow::validate`]. The default is fully opaque: the
    /// component's reads are unchecked and its outputs propagate as
    /// [`crate::analysis::StreamSpec::Opaque`], silencing (never
    /// falsifying) downstream checks.
    fn signature(&self) -> crate::analysis::Signature {
        crate::analysis::Signature::opaque()
    }

    /// Applies a runtime control request from a reactive trigger (e.g.
    /// [`crate::triggers::ControlAction::SetOutputStride`]). Returns whether
    /// the component honoured it; the default ignores every action, so
    /// components opt in per action. Called from the triggering thread
    /// while the component is running — implementations must route the
    /// request through interior atomics/locks, not `&mut self`.
    fn apply_control(&self, action: &crate::triggers::ControlAction) -> bool {
        let _ = action;
        false
    }
}

/// What one rank produced for one step of a transform component.
pub struct StepOutput {
    /// This rank's chunk of the output array (may cover zero elements).
    /// `None` means this rank contributes nothing this step (e.g. non-root
    /// ranks of a scalar reduction) but still paces the output stream.
    pub chunk: Option<Chunk>,
    /// Bytes this rank read from the input stream this step.
    pub bytes_in: u64,
    /// Time spent in the compute kernel this step.
    pub compute: Duration,
}

impl StepOutput {
    /// An output contributing `chunk`.
    pub fn chunk(chunk: Chunk, bytes_in: u64, compute: Duration) -> StepOutput {
        StepOutput {
            chunk: Some(chunk),
            bytes_in,
            compute,
        }
    }
}

/// The endpoints and policies of one transform component run — the
/// argument bundle of [`run_transform`].
pub struct TransformSpec<'a> {
    /// Component label used in panics and thread names.
    pub label: &'a str,
    /// Input stream name.
    pub input_stream: &'a str,
    /// Reader-group name on the input stream.
    pub reader_group: &'a str,
    /// Output stream name.
    pub output_stream: &'a str,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
}

/// What a fault-injection directive asks the current step to do (beyond
/// killing the component, which [`fault_gate`] reports as an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepFault {
    /// No directive fired; run the step normally.
    Clean,
    /// Suppress this step's output payload (the step is still paced, so
    /// downstream sees a metadata-only step, not a hang).
    DropChunk,
    /// Go quiet: walk away from outputs without closing them and return
    /// early — the disappeared-peer scenario. The writer disconnects
    /// *noisily* (the rank is gone for good, no supervisor resurrects a
    /// stalled incarnation), so starved readers observe a prompt
    /// [`sb_stream::StreamError::PeerGone`] instead of waiting out the hub
    /// timeout.
    Stall,
}

/// Consults the hub's installed [`sb_stream::FaultPlan`] for
/// `(label, rank, step)`, sleeping any injected delay jitter in place.
///
/// Every component run loop calls this at the top of each step; custom
/// `Component` impls with hand-rolled loops should too, or chaos plans
/// cannot target them.
pub fn fault_gate(
    hub: &StreamHub,
    label: &str,
    rank: usize,
    step: u64,
) -> Result<StepFault, ComponentError> {
    let fault = hub.fault_for(label, rank, step);
    if !fault.delay.is_zero() {
        std::thread::sleep(fault.delay);
    }
    if let Some(op) = fault.op {
        let tracer = hub.tracer();
        if tracer.enabled() {
            let code = match op {
                FaultOp::Kill => 1,
                FaultOp::Stall => 2,
                FaultOp::DropChunk => 3,
            };
            tracer.instant(
                EventKind::FaultInjected,
                TraceSite::component(tracer.intern_thread_label(label), rank, step),
                code,
            );
        }
    }
    match fault.op {
        Some(FaultOp::Kill) => Err(ComponentError::Injected {
            label: label.to_string(),
            rank,
            step,
        }),
        Some(FaultOp::Stall) => Ok(StepFault::Stall),
        Some(FaultOp::DropChunk) => Ok(StepFault::DropChunk),
        None => Ok(StepFault::Clean),
    }
}

/// Publishes a run loop's per-step wait/compute ratio on the hub's signal
/// board (`<label>.wait_ratio`, in `[0, 1]`) for reactive triggers to
/// observe. Free (one relaxed atomic load) while no trigger engine is
/// armed.
fn publish_wait_ratio(hub: &StreamHub, label: &str, step: u64, wait: Duration, compute: Duration) {
    let signals = hub.signals();
    if !signals.armed() {
        return;
    }
    let total = wait.as_secs_f64() + compute.as_secs_f64();
    let ratio = if total > 0.0 {
        wait.as_secs_f64() / total
    } else {
        0.0
    };
    signals.publish(label, "wait_ratio", step, ratio);
}

pub(crate) fn stream_err(label: &str, step: u64, source: StreamError) -> ComponentError {
    ComponentError::Stream {
        label: label.to_string(),
        step,
        source,
    }
}

/// The step loop shared by every one-input/one-output transform component:
/// open both ends, then per timestep read → transform → publish, until the
/// upstream closes.
///
/// `per_step` receives the in-step reader and must return this rank's
/// output chunk; the loop handles step lifecycles, end-of-stream
/// propagation, fault-injection gating, timing and byte accounting. Any
/// failure — a `per_step` error, a stream timeout, a poisoned hub —
/// abandons the output stream (downstream must never mistake a crash for a
/// clean EOS) and returns a typed [`ComponentError`].
pub fn run_transform<F>(
    spec: TransformSpec<'_>,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    mut per_step: F,
) -> ComponentResult
where
    F: FnMut(&StreamReader, &Communicator) -> StepResult<StepOutput>,
{
    let mut reader = hub.open_reader_grouped(
        spec.input_stream,
        spec.reader_group,
        comm.rank(),
        comm.size(),
    );
    let mut writer = hub.open_writer(
        spec.output_stream,
        comm.rank(),
        comm.size(),
        spec.writer_options,
    );
    let mut stats = ComponentStats::default();
    match transform_loop(
        &spec,
        comm,
        hub,
        &mut reader,
        &mut writer,
        &mut stats,
        &mut per_step,
    ) {
        Ok(()) => Ok(stats),
        Err(e) => {
            stash_partial_stats(stats);
            Err(e)
        }
    }
}

fn transform_loop<F>(
    spec: &TransformSpec<'_>,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    reader: &mut StreamReader,
    writer: &mut StreamWriter,
    stats: &mut ComponentStats,
    per_step: &mut F,
) -> Result<(), ComponentError>
where
    F: FnMut(&StreamReader, &Communicator) -> StepResult<StepOutput>,
{
    let label = spec.label;
    let rank = comm.rank();
    let trace = LoopTrace::new(hub, label, rank);
    loop {
        let step = reader.current_step();
        let gate = match fault_gate(hub, label, rank, step) {
            Ok(g) => g,
            Err(e) => {
                writer.abandon();
                return Err(e);
            }
        };
        if gate == StepFault::Stall {
            // Noisy: a stalled rank never comes back, so readers starved by
            // it must get PeerGone promptly (error paths below abandon
            // *silently* instead, leaving the supervisor free to restart).
            writer.disconnect();
            return Ok(());
        }
        let step_start = Instant::now();
        let step_ns = trace.now();
        match reader.begin_step() {
            Ok(StepStatus::EndOfStream) => break,
            Ok(StepStatus::Ready(_)) => {}
            Err(e) => {
                writer.abandon();
                return Err(stream_err(label, step, e));
            }
        }
        let wait = step_start.elapsed();
        trace.span(EventKind::Wait, step, step_ns);
        let compute_ns = trace.now();
        let out = match per_step(reader, comm) {
            Ok(out) => out,
            Err(e) => {
                writer.abandon();
                return Err(ComponentError::from_step(label, step, e));
            }
        };
        trace.span(EventKind::Compute, step, compute_ns);
        reader.end_step();
        let publish_ns = trace.now();
        let block_start = Instant::now();
        if let Err(e) = writer.begin_step() {
            writer.abandon();
            return Err(stream_err(label, step, e));
        }
        let mut publish_wait = block_start.elapsed();
        if let Some(chunk) = out.chunk {
            if gate != StepFault::DropChunk {
                stats.bytes_out += chunk.byte_len() as u64;
                writer.put(chunk);
            }
        }
        let block_start = Instant::now();
        if let Err(e) = writer.end_step() {
            writer.abandon();
            return Err(stream_err(label, step, e));
        }
        publish_wait += block_start.elapsed();
        trace.span(EventKind::Publish, step, publish_ns);
        stats.record_step(
            step_start.elapsed(),
            wait + publish_wait,
            out.compute,
            out.bytes_in,
        );
        publish_wait_ratio(hub, label, step, wait + publish_wait, out.compute);
        trace.span(EventKind::Step, step, step_ns);
    }
    writer.close();
    Ok(())
}

/// The step loop for endpoint (sink) components: like [`run_transform`] but
/// with no output stream. `per_step` returns the bytes read and compute
/// time.
pub fn run_sink<F>(
    label: &str,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    input_stream: &str,
    reader_group: &str,
    mut per_step: F,
) -> ComponentResult
where
    F: FnMut(&StreamReader, &Communicator, u64) -> StepResult<(u64, Duration)>,
{
    let mut reader = hub.open_reader_grouped(input_stream, reader_group, comm.rank(), comm.size());
    let mut stats = ComponentStats::default();
    match sink_loop(label, comm, hub, &mut reader, &mut stats, &mut per_step) {
        Ok(()) => Ok(stats),
        Err(e) => {
            stash_partial_stats(stats);
            Err(e)
        }
    }
}

fn sink_loop<F>(
    label: &str,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    reader: &mut StreamReader,
    stats: &mut ComponentStats,
    per_step: &mut F,
) -> Result<(), ComponentError>
where
    F: FnMut(&StreamReader, &Communicator, u64) -> StepResult<(u64, Duration)>,
{
    let rank = comm.rank();
    let trace = LoopTrace::new(hub, label, rank);
    loop {
        let step = reader.current_step();
        // A sink has no outputs to drop or abandon: Stall just stops
        // consuming, which upstream eventually observes as backpressure.
        match fault_gate(hub, label, rank, step)? {
            StepFault::Stall => return Ok(()),
            StepFault::Clean | StepFault::DropChunk => {}
        }
        let step_start = Instant::now();
        let step_ns = trace.now();
        match reader.begin_step() {
            Ok(StepStatus::EndOfStream) => break,
            Ok(StepStatus::Ready(_)) => {}
            Err(e) => return Err(stream_err(label, step, e)),
        }
        let wait = step_start.elapsed();
        trace.span(EventKind::Wait, step, step_ns);
        let compute_ns = trace.now();
        // As in `source_loop`: the closure gets the stream step, so results
        // stay correctly labelled when a restarted reader resumes mid-stream.
        let (bytes_in, compute) =
            per_step(reader, comm, step).map_err(|e| ComponentError::from_step(label, step, e))?;
        trace.span(EventKind::Compute, step, compute_ns);
        reader.end_step();
        stats.record_step(step_start.elapsed(), wait, compute, bytes_in);
        publish_wait_ratio(hub, label, step, wait, compute);
        trace.span(EventKind::Step, step, step_ns);
    }
    Ok(())
}

/// Writes one chunk per step from a producing closure — the loop used by
/// source components ([`crate::FileRead`], ad-hoc test sources).
pub fn run_source<F>(
    label: &str,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    output_stream: &str,
    writer_options: WriterOptions,
    mut per_step: F,
) -> ComponentResult
where
    F: FnMut(&Communicator, u64) -> StepResult<Option<Chunk>>,
{
    let mut writer = hub.open_writer(output_stream, comm.rank(), comm.size(), writer_options);
    let mut stats = ComponentStats::default();
    match source_loop(label, comm, hub, &mut writer, &mut stats, &mut per_step) {
        Ok(()) => Ok(stats),
        Err(e) => {
            stash_partial_stats(stats);
            Err(e)
        }
    }
}

fn source_loop<F>(
    label: &str,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    writer: &mut StreamWriter,
    stats: &mut ComponentStats,
    per_step: &mut F,
) -> Result<(), ComponentError>
where
    F: FnMut(&Communicator, u64) -> StepResult<Option<Chunk>>,
{
    let rank = comm.rank();
    let trace = LoopTrace::new(hub, label, rank);
    loop {
        let step = writer.current_step();
        let gate = match fault_gate(hub, label, rank, step) {
            Ok(g) => g,
            Err(e) => {
                writer.abandon();
                return Err(e);
            }
        };
        if gate == StepFault::Stall {
            // Noisy: a stalled rank never comes back, so readers starved by
            // it must get PeerGone promptly (error paths below abandon
            // *silently* instead, leaving the supervisor free to restart).
            writer.disconnect();
            return Ok(());
        }
        let step_start = Instant::now();
        let step_ns = trace.now();
        // Hand the closure the *stream* step, not the per-incarnation count:
        // after a supervisor restart the writer resumes mid-stream, and the
        // closure must produce the step being replayed, not start over at 0.
        let chunk = match per_step(comm, step) {
            Ok(Some(c)) => Some(c),
            Ok(None) => break,
            Err(e) => {
                writer.abandon();
                return Err(ComponentError::from_step(label, step, e));
            }
        };
        let compute = step_start.elapsed();
        trace.span(EventKind::Compute, step, step_ns);
        // Publishing is where a source blocks (output backpressure, or a
        // rendezvous hand-off): charge it to wait_time, not compute, so all
        // three run paths attribute their stopwatch laps the same way.
        let publish_ns = trace.now();
        let block_start = Instant::now();
        if let Err(e) = writer.begin_step() {
            writer.abandon();
            return Err(stream_err(label, step, e));
        }
        let mut wait = block_start.elapsed();
        if let Some(chunk) = chunk {
            if gate != StepFault::DropChunk {
                stats.bytes_out += chunk.byte_len() as u64;
                writer.put(chunk);
            }
        }
        let block_start = Instant::now();
        if let Err(e) = writer.end_step() {
            writer.abandon();
            return Err(stream_err(label, step, e));
        }
        wait += block_start.elapsed();
        trace.span(EventKind::Publish, step, publish_ns);
        stats.record_step(step_start.elapsed(), wait, compute, 0);
        publish_wait_ratio(hub, label, step, wait, compute);
        trace.span(EventKind::Step, step, step_ns);
    }
    writer.close();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_array_construction_and_display() {
        let sa = StreamArray::new("velos.fp", "velocities");
        assert_eq!(sa.to_string(), "velos.fp:velocities");
        let from_tuple: StreamArray = ("a.fp", "x").into();
        assert_eq!(from_tuple, StreamArray::new("a.fp", "x"));
    }

    #[test]
    fn source_to_sink_round_trip() {
        use sb_data::{Buffer, Shape, Variable};

        let hub = StreamHub::new();
        let hub2 = Arc::clone(&hub);
        let producer = sb_comm::LaunchHandle::spawn("src", 1, move |comm| {
            run_source(
                "src",
                &comm,
                &hub2,
                "t.fp",
                WriterOptions::default(),
                |_c, step| {
                    Ok((step < 4).then(|| {
                        let v = Variable::new(
                            "x",
                            Shape::linear("n", 3),
                            Buffer::F64(vec![step as f64; 3]),
                        )
                        .unwrap();
                        Chunk::whole(v)
                    }))
                },
            )
        })
        .unwrap();

        let hub3 = Arc::clone(&hub);
        let consumer = sb_comm::LaunchHandle::spawn("sink", 1, move |comm| {
            run_sink(
                "sink",
                &comm,
                &hub3,
                "t.fp",
                "default",
                |reader, _c, step| {
                    let v = reader.get_whole("x")?;
                    assert_eq!(v.data.to_f64_vec(), vec![step as f64; 3]);
                    Ok((v.byte_len() as u64, Duration::ZERO))
                },
            )
        })
        .unwrap();

        let src_stats = producer.join().unwrap().remove(0).unwrap();
        let sink_stats = consumer.join().unwrap().remove(0).unwrap();
        assert_eq!(src_stats.steps, 4);
        assert_eq!(src_stats.bytes_out, 4 * 24);
        assert_eq!(sink_stats.steps, 4);
        assert_eq!(sink_stats.bytes_in, 4 * 24);
    }
}
