//! The component abstraction and the shared transform run-loop.
//!
//! A SmartBlock component is launched with a process count and run-time
//! arguments only; it learns everything else (shapes, labels, types) from
//! the stream. The [`Component`] trait captures that contract; the
//! [`run_transform`] helper implements the step loop shared by every
//! one-input/one-output transform component.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sb_comm::Communicator;
use sb_data::{Chunk, DataResult};
use sb_stream::{StepStatus, StreamHub, StreamReader, WriterOptions};

use crate::metrics::ComponentStats;

/// A `(stream, array)` name pair — the unit of workflow wiring.
///
/// Launch scripts connect components by using one component's output pair
/// as another's input pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamArray {
    /// Stream name (e.g. `"lmpselect.fp"`).
    pub stream: String,
    /// Array name within the stream (e.g. `"lmpsel"`).
    pub array: String,
}

impl StreamArray {
    /// Builds a pair from anything string-like.
    pub fn new(stream: impl Into<String>, array: impl Into<String>) -> StreamArray {
        StreamArray {
            stream: stream.into(),
            array: array.into(),
        }
    }
}

impl<S: Into<String>, A: Into<String>> From<(S, A)> for StreamArray {
    fn from((stream, array): (S, A)) -> StreamArray {
        StreamArray::new(stream, array)
    }
}

impl std::fmt::Display for StreamArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.stream, self.array)
    }
}

/// A runnable workflow component.
///
/// `run` is called once per rank, on that rank's thread, with the
/// component's communicator and the workflow's stream hub. Implementations
/// must be pure configuration (shared immutably across ranks).
pub trait Component: Send + Sync + 'static {
    /// Display label (also the default thread-name prefix).
    fn label(&self) -> String;

    /// Executes one rank of the component until its input ends.
    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentStats;

    /// Streams this component reads (for workflow wiring validation).
    fn input_streams(&self) -> Vec<String> {
        Vec::new()
    }

    /// `(stream, reader-group)` subscriptions this component opens. Two
    /// components sharing a `(stream, group)` pair would corrupt each
    /// other's step accounting; [`crate::Workflow::validate`] flags it.
    fn input_subscriptions(&self) -> Vec<(String, String)> {
        self.input_streams()
            .into_iter()
            .map(|s| (s, "default".to_string()))
            .collect()
    }

    /// Streams this component writes (for workflow wiring validation).
    fn output_streams(&self) -> Vec<String> {
        Vec::new()
    }

    /// The component's static contract — declared reads plus a transfer
    /// function from input to output array specs — consumed by
    /// [`crate::Workflow::validate`]. The default is fully opaque: the
    /// component's reads are unchecked and its outputs propagate as
    /// [`crate::analysis::StreamSpec::Opaque`], silencing (never
    /// falsifying) downstream checks.
    fn signature(&self) -> crate::analysis::Signature {
        crate::analysis::Signature::opaque()
    }
}

/// What one rank produced for one step of a transform component.
pub struct StepOutput {
    /// This rank's chunk of the output array (may cover zero elements).
    /// `None` means this rank contributes nothing this step (e.g. non-root
    /// ranks of a scalar reduction) but still paces the output stream.
    pub chunk: Option<Chunk>,
    /// Bytes this rank read from the input stream this step.
    pub bytes_in: u64,
    /// Time spent in the compute kernel this step.
    pub compute: Duration,
}

impl StepOutput {
    /// An output contributing `chunk`.
    pub fn chunk(chunk: Chunk, bytes_in: u64, compute: Duration) -> StepOutput {
        StepOutput {
            chunk: Some(chunk),
            bytes_in,
            compute,
        }
    }
}

/// The endpoints and policies of one transform component run — the
/// argument bundle of [`run_transform`].
pub struct TransformSpec<'a> {
    /// Component label used in panics and thread names.
    pub label: &'a str,
    /// Input stream name.
    pub input_stream: &'a str,
    /// Reader-group name on the input stream.
    pub reader_group: &'a str,
    /// Output stream name.
    pub output_stream: &'a str,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
}

/// The step loop shared by every one-input/one-output transform component:
/// open both ends, then per timestep read → transform → publish, until the
/// upstream closes.
///
/// `per_step` receives the in-step reader and must return this rank's
/// output chunk; the loop handles step lifecycles, end-of-stream
/// propagation, timing and byte accounting. Errors from `per_step` panic
/// with the component label — the moral equivalent of an MPI abort, and the
/// behaviour the paper's components exhibit on malformed input.
pub fn run_transform<F>(
    spec: TransformSpec<'_>,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    mut per_step: F,
) -> ComponentStats
where
    F: FnMut(&StreamReader, &Communicator) -> DataResult<StepOutput>,
{
    let label = spec.label;
    let mut reader = hub.open_reader_grouped(
        spec.input_stream,
        spec.reader_group,
        comm.rank(),
        comm.size(),
    );
    let mut writer = hub.open_writer(
        spec.output_stream,
        comm.rank(),
        comm.size(),
        spec.writer_options,
    );
    let mut stats = ComponentStats::default();
    loop {
        let step_start = Instant::now();
        match reader.begin_step() {
            StepStatus::EndOfStream => break,
            StepStatus::Ready(_) => {}
        }
        let wait = step_start.elapsed();
        let out = per_step(&reader, comm)
            .unwrap_or_else(|e| panic!("{label}: step {} failed: {e}", stats.steps));
        reader.end_step();
        stats.bytes_in += out.bytes_in;
        writer.begin_step();
        if let Some(chunk) = out.chunk {
            stats.bytes_out += chunk.byte_len() as u64;
            writer.put(chunk);
        }
        writer.end_step();
        stats.record_step(step_start.elapsed(), wait, out.compute);
    }
    writer.close();
    stats
}

/// The step loop for endpoint (sink) components: like [`run_transform`] but
/// with no output stream. `per_step` returns the bytes read and compute
/// time.
pub fn run_sink<F>(
    label: &str,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    input_stream: &str,
    reader_group: &str,
    mut per_step: F,
) -> ComponentStats
where
    F: FnMut(&StreamReader, &Communicator, u64) -> DataResult<(u64, Duration)>,
{
    let mut reader = hub.open_reader_grouped(input_stream, reader_group, comm.rank(), comm.size());
    let mut stats = ComponentStats::default();
    loop {
        let step_start = Instant::now();
        match reader.begin_step() {
            StepStatus::EndOfStream => break,
            StepStatus::Ready(_) => {}
        }
        let wait = step_start.elapsed();
        let (bytes_in, compute) = per_step(&reader, comm, stats.steps)
            .unwrap_or_else(|e| panic!("{label}: step {} failed: {e}", stats.steps));
        reader.end_step();
        stats.bytes_in += bytes_in;
        stats.record_step(step_start.elapsed(), wait, compute);
    }
    stats
}

/// Writes one chunk per step from a producing closure — the loop used by
/// source components ([`crate::FileRead`], ad-hoc test sources).
pub fn run_source<F>(
    label: &str,
    comm: &Communicator,
    hub: &Arc<StreamHub>,
    output_stream: &str,
    writer_options: WriterOptions,
    mut per_step: F,
) -> ComponentStats
where
    F: FnMut(&Communicator, u64) -> DataResult<Option<Chunk>>,
{
    let mut writer = hub.open_writer(output_stream, comm.rank(), comm.size(), writer_options);
    let mut stats = ComponentStats::default();
    loop {
        let step_start = Instant::now();
        let chunk = match per_step(comm, stats.steps)
            .unwrap_or_else(|e| panic!("{label}: step {} failed: {e}", stats.steps))
        {
            Some(c) => c,
            None => break,
        };
        let compute = step_start.elapsed();
        stats.bytes_out += chunk.byte_len() as u64;
        writer.begin_step();
        writer.put(chunk);
        writer.end_step();
        stats.record_step(step_start.elapsed(), Duration::ZERO, compute);
    }
    writer.close();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_array_construction_and_display() {
        let sa = StreamArray::new("velos.fp", "velocities");
        assert_eq!(sa.to_string(), "velos.fp:velocities");
        let from_tuple: StreamArray = ("a.fp", "x").into();
        assert_eq!(from_tuple, StreamArray::new("a.fp", "x"));
    }

    #[test]
    fn source_to_sink_round_trip() {
        use sb_data::{Buffer, Shape, Variable};

        let hub = StreamHub::new();
        let hub2 = Arc::clone(&hub);
        let producer = sb_comm::LaunchHandle::spawn("src", 1, move |comm| {
            run_source(
                "src",
                &comm,
                &hub2,
                "t.fp",
                WriterOptions::default(),
                |_c, step| {
                    Ok((step < 4).then(|| {
                        let v = Variable::new(
                            "x",
                            Shape::linear("n", 3),
                            Buffer::F64(vec![step as f64; 3]),
                        )
                        .unwrap();
                        Chunk::whole(v)
                    }))
                },
            )
        })
        .unwrap();

        let hub3 = Arc::clone(&hub);
        let consumer = sb_comm::LaunchHandle::spawn("sink", 1, move |comm| {
            run_sink(
                "sink",
                &comm,
                &hub3,
                "t.fp",
                "default",
                |reader, _c, step| {
                    let v = reader.get_whole("x")?;
                    assert_eq!(v.data.to_f64_vec(), vec![step as f64; 3]);
                    Ok((v.byte_len() as u64, Duration::ZERO))
                },
            )
        })
        .unwrap();

        let src_stats = producer.join().unwrap().remove(0);
        let sink_stats = consumer.join().unwrap().remove(0);
        assert_eq!(src_stats.steps, 4);
        assert_eq!(src_stats.bytes_out, 4 * 24);
        assert_eq!(sink_stats.steps, 4);
        assert_eq!(sink_stats.bytes_in, 4 * 24);
    }
}
