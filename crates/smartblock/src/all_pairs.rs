//! The All-Pairs component: a data-*increasing* analytic.
//!
//! All the paper's components shrink (or preserve) their input; its future
//! work singles out "analytical procedures that lead to an increase in data
//! size, such as all-pairs calculations" as the next thing the SmartBlock
//! approach should express (§VI). This component computes all pairwise
//! Euclidean distances of a 2-d `points × coords` input, emitting the
//! condensed upper-triangular distance vector of length `n·(n−1)/2` —
//! quadratically larger than the input.
//!
//! Each rank owns a contiguous range of `i` rows; because the condensed
//! vector is `i`-major, every rank's output is a contiguous region, so the
//! data-increasing analytic still composes with MxN redistribution.

use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::split_1d_part;
use sb_data::{Buffer, Chunk, DType, DataError, DataResult, Region, Shape, Variable, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_transform, Component, StepOutput, StreamArray, TransformSpec};
use crate::error::ComponentResult;

/// Offset of row `i`'s first pair in the condensed `i`-major distance
/// vector of an `n`-point set: pairs `(i, j)` with `j > i`.
pub fn condensed_offset(n: usize, i: usize) -> usize {
    // sum_{k < i} (n - 1 - k) = i*(2n - i - 1)/2
    if i == 0 {
        return 0;
    }
    i * (2 * n - i - 1) / 2
}

/// Total length of the condensed distance vector for `n` points.
pub fn condensed_len(n: usize) -> usize {
    n.saturating_sub(1) * n / 2
}

/// Distances from each point in `rows` (global indices `i0..i0+rows`) to
/// every later point, reading coordinates from the full `points` set.
///
/// This is the pure kernel of the All-Pairs component.
pub fn pairwise_distances(points: &Variable, i0: usize, rows: usize) -> DataResult<Vec<f64>> {
    if points.shape.ndims() != 2 {
        return Err(DataError::RegionOutOfBounds {
            detail: format!(
                "all-pairs expects a 2-d points array, got rank {}",
                points.shape.ndims()
            ),
        });
    }
    let n = points.shape.size(0);
    let d = points.shape.size(1);
    if i0 + rows > n {
        return Err(DataError::RegionOutOfBounds {
            detail: format!("row range {i0}+{rows} exceeds {n} points"),
        });
    }
    let data = points.data.to_f64_vec();
    let mut out = Vec::with_capacity(condensed_offset(n, i0 + rows) - condensed_offset(n, i0));
    for i in i0..i0 + rows {
        let pi = &data[i * d..(i + 1) * d];
        for j in i + 1..n {
            let pj = &data[j * d..(j + 1) * d];
            let dist2: f64 = pi.iter().zip(pj).map(|(a, b)| (a - b) * (a - b)).sum();
            out.push(dist2.sqrt());
        }
    }
    Ok(out)
}

/// The All-Pairs workflow component.
#[derive(Debug, Clone)]
pub struct AllPairs {
    /// Input stream/array names (2-d `points × coords`).
    pub input: StreamArray,
    /// Output stream/array names (1-d condensed distances).
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
}

impl AllPairs {
    /// Builds an All-Pairs between the given endpoints.
    pub fn new<I: Into<StreamArray>, O: Into<StreamArray>>(input: I, output: O) -> AllPairs {
        AllPairs {
            input: input.into(),
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> AllPairs {
        self.reader_group = group.into();
        self
    }
}

impl Component for AllPairs {
    fn label(&self) -> String {
        "all-pairs".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{unary_transfer, ArraySpec, DimSpec, Extent, Signature, SpecError};
        // Every rank reads the whole array (pair distances cross any
        // partition boundary), so there is no partitioned read to declare.
        Signature::with_boxed_transfer(
            Vec::new(),
            unary_transfer(
                self.input.array.clone(),
                self.output.array.clone(),
                |spec| {
                    if spec.ndims() != 2 {
                        return Err(SpecError::RankMismatch {
                            expected: 2,
                            got: spec.ndims(),
                        });
                    }
                    let pairs = match spec.dims[0].extent {
                        Extent::Fixed(n) => Extent::Fixed(n.saturating_sub(1) * n / 2),
                        Extent::Dynamic => Extent::Dynamic,
                    };
                    Ok(ArraySpec::new(
                        vec![DimSpec {
                            name: "pairs".into(),
                            extent: pairs,
                        }],
                        sb_data::DType::F64,
                    ))
                },
            ),
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_transform(
            TransformSpec {
                label: "all-pairs",
                input_stream: &self.input.stream,
                reader_group: &self.reader_group,
                output_stream: &self.output.stream,
                writer_options: self.writer_options,
            },
            comm,
            hub,
            |reader, comm| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                // Every rank needs all points to compute its pair rows.
                let var = reader.get(&self.input.array, &Region::whole(&meta.shape))?;
                let bytes_in = var.byte_len() as u64;
                let n = meta.shape.size(0);
                let (i0, rows) = split_1d_part(n, comm.size(), comm.rank());

                let kernel_start = Instant::now();
                let dists = pairwise_distances(&var, i0, rows)?;
                let compute = kernel_start.elapsed();

                let out_meta = VariableMeta::new(
                    self.output.array.clone(),
                    Shape::linear("pairs", condensed_len(n)),
                    DType::F64,
                );
                let off = condensed_offset(n, i0);
                let chunk = Chunk::new(
                    out_meta,
                    Region::new(vec![off], vec![dists.len()]),
                    Buffer::F64(dists),
                )?;
                Ok(StepOutput {
                    chunk: Some(chunk),
                    bytes_in,
                    compute,
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Variable {
        // Unit square corners.
        Variable::new(
            "pts",
            Shape::of(&[("points", 4), ("coords", 2)]),
            Buffer::F64(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]),
        )
        .unwrap()
    }

    #[test]
    fn condensed_indexing() {
        assert_eq!(condensed_len(4), 6);
        assert_eq!(condensed_offset(4, 0), 0);
        assert_eq!(condensed_offset(4, 1), 3);
        assert_eq!(condensed_offset(4, 2), 5);
        assert_eq!(condensed_offset(4, 3), 6);
        assert_eq!(condensed_len(0), 0);
        assert_eq!(condensed_len(1), 0);
    }

    #[test]
    fn distances_of_a_unit_square() {
        let v = square();
        let all = pairwise_distances(&v, 0, 4).unwrap();
        let r2 = std::f64::consts::SQRT_2;
        assert_eq!(all.len(), 6);
        let expect = [1.0, 1.0, r2, r2, 1.0, 1.0];
        for (a, b) in all.iter().zip(expect) {
            assert!((a - b).abs() < 1e-12, "{all:?}");
        }
    }

    #[test]
    fn row_ranges_compose_to_the_whole() {
        let v = square();
        let all = pairwise_distances(&v, 0, 4).unwrap();
        let mut stitched = Vec::new();
        stitched.extend(pairwise_distances(&v, 0, 2).unwrap());
        stitched.extend(pairwise_distances(&v, 2, 2).unwrap());
        assert_eq!(all, stitched);
    }

    #[test]
    fn kernel_rejects_bad_input() {
        let v = Variable::new("x", Shape::linear("n", 3), Buffer::F64(vec![0.0; 3])).unwrap();
        assert!(pairwise_distances(&v, 0, 1).is_err());
        assert!(pairwise_distances(&square(), 3, 2).is_err());
    }

    #[test]
    fn output_grows_quadratically() {
        // 100 points of 3 coords: input 300 values, output 4950 values.
        assert!(condensed_len(100) > 300 * 10);
    }
}
