//! Multi-process deployment: run a slice of a launch script in this
//! process, against a broker another process serves.
//!
//! The paper's deployment model is one OS process (group) per component,
//! wired only by stream names over the network. In process, the whole
//! script becomes one [`Workflow`]; across processes, every participant
//! parses the *same* script, and each runs only its assigned components:
//!
//! ```text
//! terminal 1:  sb-run --script wf.sb --serve 127.0.0.1:7654 --components lammps
//! terminal 2:  sb-run --script wf.sb --connect tcp://127.0.0.1:7654 \
//!                     --components select,magnitude,histogram
//! ```
//!
//! The shared script is the single source of truth for wiring, so
//! [`plan_script`] assigns every entry the *same* label in every process
//! (the dedup suffixes `-2`, `-3`, … mirror [`Workflow::add`]); component
//! assignment is then by label. [`partial_workflow`] materializes one
//! process's slice, and [`run_components`] runs it with static validation
//! skipped — this process sees only its slice of the wiring, so dangling
//! streams here are expected, not errors (lint the full script with
//! `sb-lint` instead).

use std::sync::Arc;
use std::time::Duration;

use sb_stream::{Compression, StreamHub, TraceConfig, WireProtocol};

use crate::error::WorkflowError;
use crate::launch::{parse_script_with_directives, LaunchEntry, LaunchError, ScriptDirectives};
use crate::metrics::WorkflowReport;
use crate::runtime::Workflow;
use crate::spec::WorkflowSpec;
use crate::supervisor::{RunOptions, Validation};
use crate::triggers::Trigger;
use crate::workflows::instantiate_entry;

/// One script entry with the label every process agrees on.
#[derive(Debug, Clone)]
pub struct PlannedComponent {
    /// Deduplicated component label (assignment key).
    pub label: String,
    /// Process count from the script line.
    pub nranks: usize,
    /// The parsed launch entry.
    pub entry: LaunchEntry,
}

/// Parses a script and assigns each entry its workflow label, plus the
/// script-level directives (`#@ transport …`).
///
/// Labels are derived exactly as [`Workflow::add`] derives them — base
/// label from the component, `-2`/`-3`/… suffixes on repeats — so every
/// process planning the same script computes the same assignment keys.
pub fn plan_script(text: &str) -> Result<(Vec<PlannedComponent>, ScriptDirectives), LaunchError> {
    let (entries, directives) = parse_script_with_directives(text)?;
    let mut plan: Vec<PlannedComponent> = Vec::with_capacity(entries.len());
    for entry in entries {
        let base = instantiate_entry(&entry).label();
        let mut label = base.clone();
        let mut n = 2;
        while plan.iter().any(|p| p.label == label) {
            label = format!("{base}-{n}");
            n += 1;
        }
        plan.push(PlannedComponent {
            label,
            nranks: entry.nranks,
            entry,
        });
    }
    Ok((plan, directives))
}

/// Which language a workflow source was written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// An aprun-style `.sb` launch script with `#@` directives.
    LaunchScript,
    /// A declarative `.sbw` workflow spec.
    Spec,
}

/// A workflow source resolved by [`load_workflow_source`]: the plan and
/// directives every process agrees on, plus everything only a `.sbw` spec
/// can carry (triggers, trace config, wire options). `sb-lint`, `sb-run`,
/// and the library all consume this one form, so neither binary reparses
/// directives on its own.
#[derive(Debug, Clone)]
pub struct LoadedScript {
    /// Which language the source was written in.
    pub kind: SourceKind,
    /// Planned components with the labels every process agrees on.
    pub plan: Vec<PlannedComponent>,
    /// Transport, policy, and process directives (a spec's tables compile
    /// to the same form).
    pub directives: ScriptDirectives,
    /// Reactive trigger clauses (always empty for a launch script).
    pub triggers: Vec<Trigger>,
    /// The spec's `[trace]` table, when present and enabled.
    pub trace: Option<TraceConfig>,
    /// The spec's `[transport] timeout_secs`, when declared.
    pub hub_timeout: Option<Duration>,
    /// The spec's `[transport] protocol`, when declared.
    pub protocol: Option<WireProtocol>,
    /// The spec's `[transport] compression`, when declared.
    pub compression: Option<Compression>,
}

impl LoadedScript {
    /// Builds this process's slice as a workflow: components selected by
    /// label (all of them when `select` is empty), with the source's
    /// policies, triggers, and run defaults applied.
    pub fn workflow(&self, hub: Arc<StreamHub>, select: &[String]) -> Result<Workflow, String> {
        let mut wf = partial_workflow(hub, &self.plan, select)?;
        apply_policy_directives(&mut wf, &self.directives);
        for trigger in &self.triggers {
            wf.add_trigger(trigger.clone());
        }
        wf.default_trace = self.trace.clone();
        wf.default_hub_timeout = self.hub_timeout;
        Ok(wf)
    }
}

/// Resolves workflow source text into one [`LoadedScript`], dispatching on
/// the source name: `*.sbw` parses as a declarative spec, anything else as
/// an aprun-style launch script. Spec-level deny issues (undeclared
/// trigger references, conflicting constructs) refuse the load with their
/// `.sbw` line.
pub fn load_workflow_source(name: &str, text: &str) -> Result<LoadedScript, LaunchError> {
    if name.ends_with(".sbw") {
        let spec = WorkflowSpec::parse(text).map_err(|e| LaunchError {
            line: e.line,
            detail: e.detail,
        })?;
        if let Some(issue) = spec.issues.iter().find(|i| i.is_deny()) {
            return Err(LaunchError {
                line: issue.line(),
                detail: issue.to_string(),
            });
        }
        let (plan, directives) = plan_script(&spec.script)?;
        Ok(LoadedScript {
            kind: SourceKind::Spec,
            plan,
            directives,
            triggers: spec.triggers,
            trace: spec.trace,
            hub_timeout: spec.hub_timeout,
            protocol: spec.protocol,
            compression: spec.compression,
        })
    } else {
        let (plan, directives) = plan_script(text)?;
        Ok(LoadedScript {
            kind: SourceKind::LaunchScript,
            plan,
            directives,
            triggers: Vec::new(),
            trace: None,
            hub_timeout: None,
            protocol: None,
            compression: None,
        })
    }
}

/// Builds the workflow containing only the components named in `select`
/// (all of them when `select` is empty), on the given hub.
///
/// Returns the unknown label when `select` names a component the plan does
/// not contain.
pub fn partial_workflow(
    hub: Arc<StreamHub>,
    plan: &[PlannedComponent],
    select: &[String],
) -> Result<Workflow, String> {
    for wanted in select {
        if !plan.iter().any(|p| &p.label == wanted) {
            let known: Vec<&str> = plan.iter().map(|p| p.label.as_str()).collect();
            return Err(format!(
                "unknown component {wanted:?}; script defines {known:?}"
            ));
        }
    }
    let mut wf = Workflow::with_hub(hub);
    for planned in plan {
        if select.is_empty() || select.iter().any(|s| s == &planned.label) {
            wf.add_labeled(
                planned.label.clone(),
                planned.nranks,
                instantiate_entry(&planned.entry),
            );
        }
    }
    Ok(wf)
}

/// Applies a script's `#@ policy` directives to `wf`, skipping labels the
/// workflow does not contain (a partial slice only supervises its own
/// components; `sb-lint` flags genuinely unknown targets as SB014).
pub fn apply_policy_directives(wf: &mut Workflow, directives: &ScriptDirectives) {
    let labels: Vec<String> = wf.labels().iter().map(|l| l.to_string()).collect();
    for p in &directives.policies {
        if labels.iter().any(|l| l == &p.label) {
            wf.set_fault_policy(p.label.clone(), p.policy.clone());
        }
    }
}

/// Runs this process's slice of the script on `hub`.
///
/// Static validation is forced to [`Validation::Skip`]: the slice's wiring
/// intentionally dangles into other processes, so the fail-fast analyzer
/// would reject every legitimate partial deployment. Everything else in
/// `options` (fault policy, hub timeout, tracing) applies unchanged.
#[allow(clippy::result_large_err)]
pub fn run_components(
    hub: Arc<StreamHub>,
    plan: &[PlannedComponent],
    select: &[String],
    options: RunOptions,
) -> Result<WorkflowReport, WorkflowError> {
    let wf = partial_workflow(hub, plan, select).map_err(|detail| WorkflowError::Invalid {
        issues: vec![detail],
    })?;
    wf.run_with(options.with_validation(Validation::Skip))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_stream::tcp::TcpBroker;

    const SCRIPT: &str = r#"
        #@ transport tcp://127.0.0.1:7654
        aprun -n 2 gromacs chains=4 len=4 steps=3 interval=2 &
        aprun -n 2 magnitude gromacs.fp coords m.fp r &
        aprun -n 1 histogram m.fp r 4 &
        wait
    "#;

    #[test]
    fn plan_labels_match_workflow_labels() {
        let script = r#"
            aprun -n 1 dim-reduce a.fp x 0 1 b.fp x &
            aprun -n 1 dim-reduce b.fp x 0 1 c.fp x &
            aprun -n 1 histogram c.fp x 4 &
        "#;
        let (plan, _) = plan_script(script).unwrap();
        let labels: Vec<&str> = plan.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["dim-reduce", "dim-reduce-2", "histogram"]);
        let wf = crate::workflows::script_to_workflow(script).unwrap();
        assert_eq!(wf.labels(), labels);
    }

    #[test]
    fn partial_workflow_selects_by_label() {
        let (plan, directives) = plan_script(SCRIPT).unwrap();
        assert_eq!(
            directives.transport.as_deref(),
            Some("tcp://127.0.0.1:7654")
        );
        let wf = partial_workflow(
            StreamHub::new(),
            &plan,
            &["magnitude".to_string(), "histogram".to_string()],
        )
        .unwrap();
        assert_eq!(wf.labels(), vec!["magnitude", "histogram"]);
        let all = partial_workflow(StreamHub::new(), &plan, &[]).unwrap();
        assert_eq!(all.labels(), vec!["gromacs", "magnitude", "histogram"]);
        let err = match partial_workflow(StreamHub::new(), &plan, &["nope".to_string()]) {
            Err(e) => e,
            Ok(_) => panic!("unknown label must be rejected"),
        };
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn loader_resolves_scripts_and_specs_to_the_same_plan() {
        const SPEC: &str = r#"
[transport]
url = "tcp://127.0.0.1:7654"
protocol = "v1"
timeout_secs = 9

[[component]]
program = "gromacs"
ranks = 2
args = ["chains=4", "len=4", "steps=3", "interval=2"]

[[component]]
program = "magnitude"
ranks = 2
args = ["gromacs.fp", "coords", "m.fp", "r"]

[[component]]
program = "histogram"
args = ["m.fp", "r", "4"]
"#;
        let script = load_workflow_source("wf.sb", SCRIPT).unwrap();
        let spec = load_workflow_source("wf.sbw", SPEC).unwrap();
        assert_eq!(script.kind, SourceKind::LaunchScript);
        assert_eq!(spec.kind, SourceKind::Spec);
        let labels =
            |l: &LoadedScript| -> Vec<String> { l.plan.iter().map(|p| p.label.clone()).collect() };
        assert_eq!(labels(&script), labels(&spec));
        assert_eq!(script.directives.transport, spec.directives.transport);
        assert_eq!(spec.protocol, Some(WireProtocol::V1));
        assert_eq!(spec.hub_timeout, Some(Duration::from_secs(9)));
        assert!(script.protocol.is_none(), "scripts carry no wire options");

        let wf = spec.workflow(StreamHub::new(), &[]).unwrap();
        assert_eq!(wf.labels(), vec!["gromacs", "magnitude", "histogram"]);
    }

    #[test]
    fn loader_refuses_deny_level_spec_issues() {
        let e = load_workflow_source(
            "bad.sbw",
            "[[component]]\nprogram = \"histogram\"\nargs = [\"a.fp\", \"x\", \"4\"]\n\n[[trigger]]\nwhen = \"ghost.max > 1\"\nthen = \"snapshot_stream a.fp /tmp/x\"\n",
        )
        .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.detail.contains("ghost"), "{e:?}");
    }

    #[test]
    fn script_splits_across_tcp_hubs() {
        let (plan, _) = plan_script(SCRIPT).unwrap();
        let broker = TcpBroker::bind("127.0.0.1:0").unwrap();
        let url = broker.url();

        // "Process" A: the simulation, over its own TCP connection.
        let plan_a = plan.clone();
        let url_a = url.clone();
        let sim = std::thread::spawn(move || {
            let hub = StreamHub::connect(&url_a).unwrap();
            run_components(hub, &plan_a, &["gromacs".to_string()], RunOptions::new())
                .expect("simulation side")
        });
        // "Process" B: the analysis chain, over another connection.
        let hub = StreamHub::connect(&url).unwrap();
        let analysis = run_components(
            hub,
            &plan,
            &["magnitude".to_string(), "histogram".to_string()],
            RunOptions::new(),
        )
        .unwrap();
        let sim = sim.join().unwrap();

        assert_eq!(sim.component("gromacs").unwrap().stats.steps, 3);
        assert_eq!(analysis.component("histogram").unwrap().stats.steps, 3);
    }
}
