//! Records a preset workflow's step timeline and exports it: a text
//! waterfall plus per-phase latency histograms on stdout, and a Chrome
//! trace-event JSON file (Perfetto / `chrome://tracing` loadable) on disk.
//!
//! The emitted JSON is validated before the process exits: a string-level
//! schema check mirroring `schemas/smartblock.trace.v1.json`, and a
//! completeness check that every `(component, rank, step)` of the run has
//! its phase spans on the timeline. CI runs `--smoke` so a regression in
//! either the instrumentation or the exporter fails the build.
//!
//! Run with: `cargo run --release -p smartblock --bin sb-trace`
//! Options: `--preset lammps|gtcp|gromacs` (default `lammps`),
//! `--sim-ranks N`, `--steps N`, `--out PATH` (default `TRACE_<preset>.json`),
//! `--smoke` (tiny problem sizes), `--check PATH` (validate an existing
//! export instead of running a workflow).

use smartblock::workflows::{gromacs_workflow, gtcp_workflow, lammps_workflow, PresetScale};
use smartblock::{EventKind, RunOptions, TraceConfig, WorkflowReport};

fn fail(msg: &str) -> ! {
    eprintln!("sb-trace: {msg}");
    std::process::exit(1);
}

/// String-level schema check on the emitted JSON, mirroring the checked-in
/// `schemas/smartblock.trace.v1.json` without a JSON dependency: the
/// header keys appear exactly once, the schema identifier matches, and
/// every event carries the required `ph`/`pid`/`tid`/`name` fields.
fn validate_export(text: &str) -> Result<(), String> {
    for key in ["\"traceEvents\"", "\"displayTimeUnit\"", "\"otherData\""] {
        if text.matches(key).count() != 1 {
            return Err(format!("header key {key} missing or repeated"));
        }
    }
    if !text.contains("\"schema\":\"smartblock.trace.v1\"") {
        return Err("schema identifier smartblock.trace.v1 missing".into());
    }
    if !text.contains("\"dropped_events\":") {
        return Err("otherData.dropped_events missing".into());
    }
    let events = text.matches("{\"ph\":\"").count();
    if events == 0 {
        return Err("no trace events in export".into());
    }
    let metadata = text.matches("{\"ph\":\"M\"").count();
    let spans = text.matches("{\"ph\":\"X\"").count();
    let instants = text.matches("{\"ph\":\"i\"").count();
    if metadata + spans + instants != events {
        return Err(format!(
            "{events} events but only {metadata} M + {spans} X + {instants} i phases"
        ));
    }
    if metadata == 0 || spans == 0 {
        return Err(format!(
            "want process_name metadata and span events, got {metadata} M / {spans} X"
        ));
    }
    for (key, want) in [
        ("\"pid\":", events),
        ("\"tid\":", events),
        // Metadata events carry `name` twice: the event name
        // ("process_name") and the process label in args.
        ("\"name\":", events + metadata),
        ("\"ts\":", spans + instants),
        ("\"dur\":", spans),
        ("\"s\":\"t\"", instants),
    ] {
        let n = text.matches(key).count();
        if n != want {
            return Err(format!("key {key} appears {n} times, want {want}"));
        }
    }
    Ok(())
}

/// The acceptance check behind the export: every `(component, rank, step)`
/// the report accounts for has exactly one `step` span, a nested `compute`
/// span, and — uniformly across the component's ranks and steps — `wait`
/// and/or `publish` spans matching its role (sources never wait on input,
/// sinks never publish).
fn validate_completeness(report: &WorkflowReport) -> Result<(), String> {
    use std::collections::BTreeMap;
    let tl = &report.timeline;
    // A label may name several component instances (GTCP wires two
    // Dim-Reduce stages), so expectations are counted per label: at
    // `(label, rank, step)` there must be one step span per instance that
    // has that rank and reached that step.
    let mut by_label: BTreeMap<&str, Vec<&smartblock::ComponentReport>> = BTreeMap::new();
    for comp in &report.components {
        by_label.entry(comp.label.as_str()).or_default().push(comp);
    }
    for (label, comps) in by_label {
        let max_ranks = comps.iter().map(|c| c.nranks).max().unwrap_or(0);
        let max_steps = comps.iter().map(|c| c.stats.steps).max().unwrap_or(0);
        let has_wait = tl
            .events
            .iter()
            .any(|e| e.kind == EventKind::Wait && e.component == label);
        let has_publish = tl
            .events
            .iter()
            .any(|e| e.kind == EventKind::Publish && e.component == label);
        for rank in 0..max_ranks as u32 {
            for step in 0..max_steps {
                let expected = comps
                    .iter()
                    .filter(|c| rank < c.nranks as u32 && step < c.stats.steps)
                    .count();
                let at = |kind: EventKind| {
                    tl.events
                        .iter()
                        .filter(|e| {
                            e.kind == kind
                                && e.component == label
                                && e.rank == rank
                                && e.step == step
                        })
                        .collect::<Vec<_>>()
                };
                let step_spans = at(EventKind::Step);
                if step_spans.len() != expected {
                    return Err(format!(
                        "{label}/{rank} step {step}: {} step spans, want {expected}",
                        step_spans.len()
                    ));
                }
                let mut required = vec![EventKind::Compute];
                if has_wait {
                    required.push(EventKind::Wait);
                }
                if has_publish {
                    required.push(EventKind::Publish);
                }
                for kind in required {
                    let inner = at(kind);
                    if expected > 0 && inner.is_empty() {
                        return Err(format!(
                            "{label}/{rank} step {step}: no {} span",
                            kind.name()
                        ));
                    }
                    // Every phase span must nest inside one of the step
                    // spans at this site.
                    for e in inner {
                        let nested = step_spans
                            .iter()
                            .any(|s| e.start >= s.start && e.end() <= s.end());
                        if !nested {
                            return Err(format!(
                                "{label}/{rank} step {step}: {} span not nested in a step span",
                                kind.name()
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn main() {
    let mut preset = String::from("lammps");
    let mut sim_ranks = 4usize;
    let mut steps = 4u64;
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--preset" => preset = args.next().unwrap_or_else(|| fail("--preset needs a name")),
            "--sim-ranks" => {
                sim_ranks = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--sim-ranks needs an integer"))
            }
            "--steps" => {
                steps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--steps needs an integer"))
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| fail("--out needs a path"))),
            "--smoke" => smoke = true,
            "--check" => check = Some(args.next().unwrap_or_else(|| fail("--check needs a path"))),
            other => fail(&format!(
                "unknown argument {other:?} (options: --preset NAME, --sim-ranks N, \
                 --steps N, --out PATH, --smoke, --check PATH)"
            )),
        }
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        match validate_export(&text) {
            Ok(()) => {
                println!("{path}: valid smartblock.trace.v1 export");
                return;
            }
            Err(e) => fail(&format!("{path}: {e}")),
        }
    }

    let mut scale = PresetScale {
        sim_ranks,
        io_steps: steps,
        ..PresetScale::default()
    };
    if smoke {
        scale.substeps = 2;
        scale = scale
            .size("nx", 8)
            .size("ny", 8)
            .size("slices", 6)
            .size("points", 8)
            .size("chains", 4)
            .size("len", 8);
    }
    let (workflow, _results) = match preset.as_str() {
        "lammps" => lammps_workflow(&scale),
        "gtcp" => gtcp_workflow(&scale),
        "gromacs" => gromacs_workflow(&scale),
        other => fail(&format!("unknown preset {other:?} (lammps|gtcp|gromacs)")),
    };
    eprintln!(
        "tracing {preset} preset: {} sim ranks, {steps} steps",
        scale.sim_ranks
    );
    let report = workflow
        .run_with(RunOptions::default().with_tracing(TraceConfig::new()))
        .unwrap_or_else(|e| fail(&format!("workflow failed: {e}")));

    println!("{}", report.timeline.waterfall());
    println!("phase latency histograms (log2-bucketed):");
    for h in report.timeline.latency_histograms() {
        println!("  {}", h.render());
    }

    if let Err(e) = validate_completeness(&report) {
        fail(&format!("timeline incomplete: {e}"));
    }

    let out_path = out_path.unwrap_or_else(|| format!("TRACE_{preset}.json"));
    let text = report.timeline.chrome_trace_json();
    std::fs::write(&out_path, &text)
        .unwrap_or_else(|e| fail(&format!("cannot write {out_path}: {e}")));
    let reread = std::fs::read_to_string(&out_path).expect("re-read emitted JSON");
    if let Err(e) = validate_export(&reread) {
        fail(&format!("emitted JSON failed schema validation: {e}"));
    }
    println!(
        "\nwrote {out_path} ({} events, {} dropped) — load it in Perfetto or chrome://tracing",
        report.timeline.len(),
        report.timeline.dropped
    );
}
