//! `sb-lint`: static analysis of SmartBlock launch scripts.
//!
//! Parses an aprun-style launch script (the paper's Fig. 8 deployment
//! format), assembles the workflow *without running it*, and reports every
//! issue the static analyzer finds: wiring mistakes, subscription cycles,
//! contract violations (unknown labels, bad axes, shape mismatches), and
//! over-decomposed reads.
//!
//! Exit status:
//! * `0` — script parses and analysis found no errors (warnings allowed);
//! * `1` — analysis found at least one error;
//! * `2` — the script could not be parsed or a component rejected its
//!   arguments outright (e.g. a zero-bin histogram).
//!
//! Usage: `sb-lint SCRIPT...` or `sb-lint -` to read standard input.

use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use smartblock::launch::parse_script;
use smartblock::prelude::{Severity, Workflow};
use smartblock::workflows::instantiate_entry;

fn lint_text(name: &str, text: &str) -> Result<usize, String> {
    let entries = parse_script(text).map_err(|e| e.to_string())?;
    // Component constructors assert on nonsensical arguments (zero bins,
    // empty fork); a lint tool must report those, not crash on them. The
    // panic hook is silenced so the diagnostic is the only output.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let wf = catch_unwind(AssertUnwindSafe(|| {
        let mut wf = Workflow::new();
        for entry in &entries {
            wf.add(entry.nranks, instantiate_entry(entry));
        }
        wf
    }));
    std::panic::set_hook(saved_hook);
    let wf = wf.map_err(|panic| {
        let detail = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "component constructor panicked".to_string());
        format!("invalid component arguments: {detail}")
    })?;
    let issues = wf.validate();
    let mut errors = 0;
    for issue in &issues {
        if issue.severity() == Severity::Error {
            errors += 1;
        }
        println!("{name}: {}: {issue}", issue.severity());
    }
    Ok(errors)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: sb-lint SCRIPT... (or `-` for stdin)");
        eprintln!("statically checks a SmartBlock launch script without running it");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut errors = 0usize;
    let mut failed = false;
    for arg in &args {
        let text = if arg == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("sb-lint: stdin: {e}");
                    failed = true;
                    continue;
                }
            }
        } else {
            match std::fs::read_to_string(arg) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("sb-lint: {arg}: {e}");
                    failed = true;
                    continue;
                }
            }
        };
        let name = if arg == "-" { "<stdin>" } else { arg.as_str() };
        match lint_text(name, &text) {
            Ok(n) => errors += n,
            Err(e) => {
                eprintln!("sb-lint: {name}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(2)
    } else if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
