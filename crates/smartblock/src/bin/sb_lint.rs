//! `sb-lint`: the SmartBlock lint engine CLI.
//!
//! Parses aprun-style launch scripts (the paper's Fig. 8 deployment
//! format) and declarative `.sbw` workflow specs, assembles each workflow
//! *without running it*, and reports every diagnostic the staged analyzer
//! finds — wiring mistakes, subscription cycles, contract violations,
//! over-decomposition, cadence mismatches, unsound fault policies, invalid
//! partition plans, transport problems, wire-amplification estimates, and
//! (for specs) spec-level issues — each under a stable `SBxxx` lint ID.
//! Inputs named `*.sbw` lint as specs; everything else as launch scripts.
//!
//! ```text
//! wf.sb:4: error[SB001] no-writer: stream "m.fp" has no writer; ...
//! ```
//!
//! `--format json` emits one `smartblock.lint.v1` document for all linted
//! scripts (see `schemas/smartblock.lint.v1.json`); `--check PATH`
//! validates such a document.

use std::io::Read;
use std::process::ExitCode;

use smartblock::analysis::{
    check_report, lint_script, lint_spec, render_report_json, Level, LintConfig, ScriptLint, LINTS,
};

const EX_USAGE: u8 = 64;
const EX_DATAERR: u8 = 65;
const EX_NOINPUT: u8 = 66;

fn usage() {
    eprintln!(
        "usage: sb-lint [OPTIONS] SCRIPT... (or `-` for stdin)\n\
         statically checks SmartBlock launch scripts (.sb) and workflow\n\
         specs (.sbw) without running them\n\
         \n\
         options:\n\
         \x20 --format text|json   rendering (default text; json follows\n\
         \x20                      schemas/smartblock.lint.v1.json)\n\
         \x20 --deny-warnings      exit 2 when only warnings were found\n\
         \x20 --allow LINT         suppress a lint (by SBxxx ID or name)\n\
         \x20 --deny LINT          promote a lint to an error\n\
         \x20 --check PATH         validate a JSON lint report instead of linting\n\
         \x20 --lints              list every registered lint and exit\n\
         \n\
         exit status:\n\
         \x20 0   no diagnostics, or warnings only (without --deny-warnings)\n\
         \x20 1   at least one error-level diagnostic\n\
         \x20 2   warnings only, with --deny-warnings\n\
         \x20 64  usage error (unknown flag, unknown lint, no scripts)\n\
         \x20 65  --check: the report is not valid smartblock.lint.v1\n\
         \x20 66  a script (or --check file) could not be read"
    );
}

struct Args {
    format_json: bool,
    deny_warnings: bool,
    check: Option<String>,
    scripts: Vec<String>,
    config: LintConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        format_json: false,
        deny_warnings: false,
        check: None,
        scripts: Vec::new(),
        config: LintConfig::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--format" | "-f" => match value("--format")?.as_str() {
                "json" => args.format_json = true,
                "text" => args.format_json = false,
                other => return Err(format!("unknown format {other:?} (text|json)")),
            },
            "--deny-warnings" => args.deny_warnings = true,
            "--allow" | "-A" => args.config.set(&value("--allow")?, Level::Allow)?,
            "--deny" | "-D" => args.config.set(&value("--deny")?, Level::Deny)?,
            "--check" => args.check = Some(value("--check")?),
            "--lints" => {
                for lint in LINTS {
                    println!(
                        "{} {:24} {:7} {}",
                        lint.id, lint.name, lint.default_level, lint.summary
                    );
                }
                std::process::exit(0);
            }
            "-h" | "--help" => {
                usage();
                std::process::exit(0);
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown argument {other:?}"));
            }
            script => args.scripts.push(script.to_string()),
        }
    }
    if args.check.is_none() && args.scripts.is_empty() {
        return Err("no scripts given".to_string());
    }
    Ok(args)
}

fn read_input(arg: &str) -> std::io::Result<String> {
    if arg == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(arg)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sb-lint: {e}");
            usage();
            return ExitCode::from(EX_USAGE);
        }
    };

    if let Some(path) = &args.check {
        let text = match read_input(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sb-lint: {path}: {e}");
                return ExitCode::from(EX_NOINPUT);
            }
        };
        return match check_report(&text) {
            Ok(()) => {
                println!("{path}: valid smartblock.lint.v1 report");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("sb-lint: {path}: invalid report: {e}");
                ExitCode::from(EX_DATAERR)
            }
        };
    }

    // Component constructors assert on nonsensical arguments (zero bins,
    // empty fork); `lint_script` traps those panics as SB000 diagnostics,
    // and the silenced hook keeps the diagnostic as the only output.
    std::panic::set_hook(Box::new(|_| {}));
    let mut reports: Vec<ScriptLint> = Vec::new();
    let mut unreadable = false;
    for script in &args.scripts {
        let name = if script == "-" { "<stdin>" } else { script };
        // `.sbw` inputs lint as declarative specs (with the spec-level
        // SB018–SB020 passes); everything else as launch scripts.
        let lint = if name.ends_with(".sbw") {
            lint_spec
        } else {
            lint_script
        };
        match read_input(script) {
            Ok(text) => reports.push(lint(name, &text, &args.config)),
            Err(e) => {
                eprintln!("sb-lint: {name}: {e}");
                unreadable = true;
            }
        }
    }
    let _ = std::panic::take_hook();

    if args.format_json {
        print!("{}", render_report_json(&reports));
    } else {
        for report in &reports {
            print!("{}", report.render_text());
        }
    }

    let errors: usize = reports.iter().map(|r| r.errors()).sum();
    let warnings: usize = reports.iter().map(|r| r.warnings()).sum();
    if unreadable {
        ExitCode::from(EX_NOINPUT)
    } else if errors > 0 {
        ExitCode::from(1)
    } else if warnings > 0 && args.deny_warnings {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
