//! `sb-run`: run a SmartBlock workflow — a `.sb` launch script or a
//! declarative `.sbw` spec — whole or as one process of a multi-process
//! deployment.
//!
//! Modes:
//!
//! * `sb-run --script wf.sbw`
//!   — run the whole workflow in process (the classic single-process mode).
//! * `sb-run --script wf.sbw --serve ADDR [--components a,b]`
//!   — serve a broker on `ADDR` (`HOST:PORT` binds TCP, `shm://DIR` opens a
//!   same-host shared-memory rendezvous), run the named components (default:
//!   none, broker only) on the broker's own hub, then keep serving until
//!   every remote connection has drained.
//! * `sb-run --script wf.sbw --connect tcp://HOST:PORT --components a,b`
//!   (or `--connect shm://DIR`) — connect to a broker another process
//!   serves and run only the named components there.
//!
//! All processes must be given the *same* source file: it is the single
//! source of truth for stream wiring and component labels (`--list` prints
//! them). A `#@ transport` directive (or a spec's `[transport]` table)
//! supplies the default for `--serve`/`--connect`; `#@ policy` directives
//! (or `[policy.*]` tables) set per-component fault policies. A spec may
//! also default the wire protocol, compression, hub timeout, and trace
//! config; explicit flags win over spec defaults.
//!
//! Before binding a broker or spawning any component, the source is run
//! through the full lint engine (`sb-lint`); any error-level `SBxxx`
//! diagnostic — an invalid partition plan, a subscription cycle, a contract
//! violation — refuses the launch with exit `1`. `--force` downgrades the
//! refusal to a stderr report and launches anyway. Exit status: `0` on
//! success, `1` on a lint refusal or workflow failure, `2` on usage or I/O
//! errors.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sb_stream::tcp::TcpBroker;
use sb_stream::{ShmBroker, StreamHub};
use smartblock::analysis::{lint_script, lint_spec, LintConfig, ScriptLint};
use smartblock::distributed::{load_workflow_source, LoadedScript};
use smartblock::launch::validate_transport_url;
use smartblock::supervisor::{RunOptions, Validation};

struct Args {
    script: Option<String>,
    serve: Option<String>,
    connect: Option<String>,
    components: Vec<String>,
    list: bool,
    force: bool,
    hub_timeout: Option<Duration>,
    protocol: Option<sb_stream::WireProtocol>,
    compression: Option<sb_stream::Compression>,
}

fn usage() {
    eprintln!(
        "usage: sb-run --script FILE [--serve ADDR | --connect URL]\n\
         \x20             [--components a,b,...] [--timeout SECONDS] [--list] [--force]\n\
         \x20             [--protocol v1|v2] [--compress none|lz]\n\
         runs a SmartBlock workflow — a .sb launch script or a .sbw\n\
         declarative spec — whole or as one process of a multi-process\n\
         deployment (every process gets the same file); sources with\n\
         error-level lint diagnostics are refused before any component\n\
         starts unless --force is given. --serve takes a TCP bind address\n\
         (HOST:PORT, optionally tcp://) or a same-host shared-memory\n\
         rendezvous (shm://DIR); --connect takes tcp://HOST:PORT or\n\
         shm://DIR. --protocol and --compress shape the wire frames of\n\
         this process's --connect sessions (v2 interns metadata; lz\n\
         compresses chunk payloads); a spec's [transport] table supplies\n\
         defaults for both, and explicit flags win"
    );
}

/// Either broker flavour behind one face: the serve branch's readiness and
/// quiet-drain loop is fabric-agnostic, so `sb-run` should be too.
enum Broker {
    Tcp(TcpBroker),
    Shm(ShmBroker),
}

impl Broker {
    fn bind(serve: &str) -> std::io::Result<Broker> {
        if serve.starts_with("shm://") {
            ShmBroker::bind(serve).map(Broker::Shm)
        } else {
            let bind = serve.strip_prefix("tcp://").unwrap_or(serve);
            TcpBroker::bind(bind).map(Broker::Tcp)
        }
    }

    fn url(&self) -> String {
        match self {
            Broker::Tcp(b) => b.url(),
            Broker::Shm(b) => b.url(),
        }
    }

    fn hub(&self) -> &Arc<StreamHub> {
        match self {
            Broker::Tcp(b) => b.hub(),
            Broker::Shm(b) => b.hub(),
        }
    }

    fn connections_seen(&self) -> usize {
        match self {
            Broker::Tcp(b) => b.connections_seen(),
            Broker::Shm(b) => b.connections_seen(),
        }
    }

    fn active_connections(&self) -> usize {
        match self {
            Broker::Tcp(b) => b.active_connections(),
            Broker::Shm(b) => b.active_connections(),
        }
    }

    fn shutdown(&mut self) {
        match self {
            Broker::Tcp(b) => b.shutdown(),
            Broker::Shm(b) => b.shutdown(),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        script: None,
        serve: None,
        connect: None,
        components: Vec::new(),
        list: false,
        force: false,
        hub_timeout: None,
        protocol: None,
        compression: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--script" | "-s" => args.script = Some(value("--script")?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--connect" => args.connect = Some(value("--connect")?),
            "--components" | "--component" | "-c" => {
                args.components.extend(
                    value("--components")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty()),
                );
            }
            "--timeout" => {
                let secs: u64 = value("--timeout")?
                    .parse()
                    .map_err(|_| "--timeout needs a number of seconds".to_string())?;
                args.hub_timeout = Some(Duration::from_secs(secs));
            }
            "--protocol" => {
                args.protocol = Some(match value("--protocol")?.as_str() {
                    "v1" => sb_stream::WireProtocol::V1,
                    "v2" => sb_stream::WireProtocol::V2,
                    other => return Err(format!("--protocol must be v1 or v2, got {other:?}")),
                });
            }
            "--compress" => {
                args.compression = Some(match value("--compress")?.as_str() {
                    "none" => sb_stream::Compression::None,
                    "lz" => sb_stream::Compression::Lz,
                    other => return Err(format!("--compress must be none or lz, got {other:?}")),
                });
            }
            "--list" => args.list = true,
            "--force" => args.force = true,
            "-h" | "--help" => {
                usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.script.is_none() {
        return Err("--script is required".to_string());
    }
    if args.serve.is_some() && args.connect.is_some() {
        return Err("--serve and --connect are mutually exclusive".to_string());
    }
    Ok(args)
}

fn run(
    hub: Arc<StreamHub>,
    loaded: &LoadedScript,
    select: &[String],
    hub_timeout: Option<Duration>,
) -> Result<(), ExitCode> {
    let mut options = RunOptions::new();
    if let Some(timeout) = hub_timeout {
        options = options.with_hub_timeout(timeout);
    }
    // The loaded source carries policies, triggers, and (for specs) trace
    // and timeout defaults; `workflow` applies them all.
    let wf = match loaded.workflow(hub, select) {
        Ok(wf) => wf,
        Err(detail) => {
            eprintln!("sb-run: {detail}");
            return Err(ExitCode::from(2));
        }
    };
    // This process sees only its slice of the wiring, so the fail-fast
    // validator would reject legitimate partial deployments; the full
    // script already passed the pre-launch lint gate.
    match wf.run_with(options.with_validation(Validation::Skip)) {
        Ok(report) => {
            println!("{}", report.summary());
            Ok(())
        }
        Err(e) => {
            eprintln!("sb-run: workflow failed: {e}");
            Err(ExitCode::from(1))
        }
    }
}

/// The pre-launch gate: lint the whole source (as a spec for `.sbw`) and
/// refuse to launch on any error-level diagnostic. Runs before a broker is
/// bound or a component is spawned, so a malformed plan never starts half
/// a deployment.
fn lint_gate(script_path: &str, text: &str, force: bool) -> Result<(), ExitCode> {
    // Constructor panics become SB000 diagnostics; silence the hook so the
    // diagnostic is the only output.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let lint = if script_path.ends_with(".sbw") {
        lint_spec
    } else {
        lint_script
    };
    let report: ScriptLint = lint(script_path, text, &LintConfig::new());
    std::panic::set_hook(saved_hook);
    if report.errors() > 0 {
        eprint!("{}", report.render_text());
        if force {
            eprintln!("sb-run: {script_path}: launching despite lint errors (--force)");
            return Ok(());
        }
        eprintln!(
            "sb-run: {}: refusing to launch: {} lint error(s) (--force to override)",
            script_path,
            report.errors()
        );
        return Err(ExitCode::from(1));
    }
    if report.warnings() > 0 {
        eprint!("{}", report.render_text());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sb-run: {e}");
            usage();
            return ExitCode::from(2);
        }
    };
    let script_path = args.script.expect("checked in parse_args");
    let text = match std::fs::read_to_string(&script_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sb-run: {script_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let loaded = match load_workflow_source(&script_path, &text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("sb-run: {script_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for p in &loaded.plan {
            println!("{}\t-n {}", p.label, p.nranks);
        }
        return ExitCode::SUCCESS;
    }
    if let Err(code) = lint_gate(&script_path, &text, args.force) {
        return code;
    }
    // A spec's [transport] table defaults the hub timeout and wire shape;
    // explicit flags win.
    let hub_timeout = args.hub_timeout.or(loaded.hub_timeout);
    let protocol = args.protocol.or(loaded.protocol).unwrap_or_default();
    let compression = args.compression.or(loaded.compression).unwrap_or_default();

    // The source's transport endpoint is the fallback; explicit flags win.
    // `--serve` wants a bare bind address, so strip the scheme.
    let connect = args
        .connect
        .or_else(|| loaded.directives.transport.clone())
        .filter(|_| args.serve.is_none());
    if let Some(url) = &connect {
        if let Err(e) = validate_transport_url(url) {
            eprintln!("sb-run: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(serve) = args.serve {
        let mut broker = match Broker::bind(&serve) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sb-run: cannot serve on {serve}: {e}");
                return ExitCode::from(2);
            }
        };
        eprintln!("sb-run: serving {}", broker.url());
        // Are parts of the script expected to arrive from other processes?
        let remotes_expected = args.components.is_empty()
            || loaded
                .plan
                .iter()
                .any(|p| !args.components.contains(&p.label));
        let result = if args.components.is_empty() {
            Ok(())
        } else {
            let hub = Arc::clone(broker.hub());
            run(hub, &loaded, &args.components, hub_timeout)
        };
        if remotes_expected {
            // Local components may finish before remotes even dial in (a
            // buffered source, or broker-only mode): wait for the first
            // connection ever accepted (the monotonic count — a fast remote
            // can connect and leave entirely between two polls of the
            // active gauge), then keep serving until the active count has
            // stayed at zero for a full second — endpoints of one remote
            // process overlap, so a sustained zero means they all left.
            eprintln!("sb-run: waiting for remote components");
            while broker.connections_seen() == 0 {
                std::thread::sleep(Duration::from_millis(100));
            }
            let mut quiet = 0;
            while quiet < 10 {
                quiet = if broker.active_connections() == 0 {
                    quiet + 1
                } else {
                    0
                };
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        broker.shutdown();
        match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(code) => code,
        }
    } else if let Some(url) = connect {
        if args.components.is_empty() {
            eprintln!("sb-run: --connect needs --components (which part of the script runs here?)");
            return ExitCode::from(2);
        }
        let options = sb_stream::TcpOptions::default()
            .with_protocol(protocol)
            .with_compression(compression);
        let hub = match StreamHub::connect_with(&url, options) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("sb-run: cannot connect to {url}: {e}");
                return ExitCode::from(2);
            }
        };
        match run(hub, &loaded, &args.components, hub_timeout) {
            Ok(()) => ExitCode::SUCCESS,
            Err(code) => code,
        }
    } else {
        // Single-process: the whole workflow on an in-proc hub.
        match run(StreamHub::new(), &loaded, &args.components, hub_timeout) {
            Ok(()) => ExitCode::SUCCESS,
            Err(code) => code,
        }
    }
}
