//! Per-component and per-workflow measurement, mirroring what the paper's
//! evaluation reports: per-timestep completion times averaged over a
//! component's communicator, per-process throughput in KB/s, and end-to-end
//! workflow times.

use std::time::Duration;

use sb_stream::{StreamMetrics, Timeline};

use crate::error::ComponentError;

/// How a supervised component finished.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ComponentOutcome {
    /// Every rank returned cleanly (possibly after restarts — see
    /// [`ComponentReport::attempts`]).
    #[default]
    Completed,
    /// The component failed and its policy degraded it: outputs were closed
    /// cleanly and the rest of the workflow finished without it.
    Degraded {
        /// The failure that triggered the degradation.
        error: ComponentError,
    },
    /// The component failed fatally (abort policy or exhausted restarts).
    Failed {
        /// The failure of the final attempt.
        error: ComponentError,
    },
}

impl ComponentOutcome {
    /// True for [`ComponentOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, ComponentOutcome::Completed)
    }
}

/// One rank's accounting over a component run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentStats {
    /// Timesteps processed.
    pub steps: u64,
    /// Bytes read from the input stream(s) by this rank.
    pub bytes_in: u64,
    /// Bytes written to the output stream(s) by this rank.
    pub bytes_out: u64,
    /// Wall-clock duration of each timestep (begin-input to end-output).
    pub step_times: Vec<Duration>,
    /// Bytes read from the input stream(s) in each timestep, paired with
    /// `step_times` so per-step throughput divides matched quantities
    /// (chunk sizes vary across steps for Threshold/Select outputs).
    pub step_bytes_in: Vec<u64>,
    /// Total time blocked waiting on stream operations: input `begin_step`
    /// plus output backpressure.
    pub wait_time: Duration,
    /// Total time in the component's compute kernel.
    pub compute_time: Duration,
}

impl ComponentStats {
    /// Records one completed step: its wall-clock duration, the portion
    /// spent blocked on streams, the portion in the compute kernel, and the
    /// bytes read from the input stream(s) during it (also accumulated into
    /// [`ComponentStats::bytes_in`]).
    pub fn record_step(
        &mut self,
        total: Duration,
        wait: Duration,
        compute: Duration,
        bytes_in: u64,
    ) {
        self.steps += 1;
        self.step_times.push(total);
        self.step_bytes_in.push(bytes_in);
        self.bytes_in += bytes_in;
        self.wait_time += wait;
        self.compute_time += compute;
    }

    /// Folds a later attempt's accounting into this one — the supervisor
    /// calls this so a restarted component reports the union of all its
    /// attempts, not just the final one.
    ///
    /// Exact for `Restart` after a kill fault (which fires at the step
    /// boundary, before any stream call of the step): released steps are
    /// never re-produced, so merged counts equal a clean run's. A component
    /// that died *mid*-step may re-read that step's input after restart and
    /// slightly overcount `bytes_in`.
    pub fn absorb(&mut self, later: ComponentStats) {
        self.steps += later.steps;
        self.bytes_in += later.bytes_in;
        self.bytes_out += later.bytes_out;
        self.step_times.extend(later.step_times);
        self.step_bytes_in.extend(later.step_bytes_in);
        self.wait_time += later.wait_time;
        self.compute_time += later.compute_time;
    }

    /// Mean step completion time.
    pub fn mean_step_time(&self) -> Duration {
        if self.step_times.is_empty() {
            return Duration::ZERO;
        }
        self.step_times.iter().sum::<Duration>() / self.step_times.len() as u32
    }
}

/// A component's aggregated results: per-rank stats plus communicator-wide
/// summaries (the paper averages per-timestep times over the communicator).
#[derive(Debug, Clone)]
pub struct ComponentReport {
    /// Label the component was launched under.
    pub label: String,
    /// Ranks the component ran with.
    pub nranks: usize,
    /// Per-rank stats, indexed by rank.
    pub per_rank: Vec<ComponentStats>,
    /// Communicator-wide aggregate (sums of bytes, rank-mean times).
    pub stats: ComponentStats,
    /// Times the supervisor attempted the component (1 = no restarts).
    pub attempts: u32,
    /// How the component finished under supervision.
    pub outcome: ComponentOutcome,
}

impl ComponentReport {
    /// Builds the aggregate from per-rank stats.
    pub fn from_ranks(label: String, per_rank: Vec<ComponentStats>) -> ComponentReport {
        let nranks = per_rank.len();
        let steps = per_rank.iter().map(|s| s.steps).max().unwrap_or(0);
        let mut agg = ComponentStats {
            steps,
            bytes_in: per_rank.iter().map(|s| s.bytes_in).sum(),
            bytes_out: per_rank.iter().map(|s| s.bytes_out).sum(),
            step_times: Vec::with_capacity(steps as usize),
            step_bytes_in: Vec::with_capacity(steps as usize),
            wait_time: per_rank.iter().map(|s| s.wait_time).sum::<Duration>()
                / nranks.max(1) as u32,
            compute_time: per_rank.iter().map(|s| s.compute_time).sum::<Duration>()
                / nranks.max(1) as u32,
        };
        // Per-timestep completion time, averaged over the communicator;
        // per-timestep bytes, summed over it (matched pairs for Fig. 9).
        // Stats recorded without per-step bytes (external drivers) keep the
        // aggregate vector empty so consumers fall back to the run average.
        let have_step_bytes = per_rank.iter().any(|s| !s.step_bytes_in.is_empty());
        for step in 0..steps as usize {
            let times: Vec<Duration> = per_rank
                .iter()
                .filter_map(|s| s.step_times.get(step).copied())
                .collect();
            if !times.is_empty() {
                agg.step_times
                    .push(times.iter().sum::<Duration>() / times.len() as u32);
                if have_step_bytes {
                    agg.step_bytes_in.push(
                        per_rank
                            .iter()
                            .filter_map(|s| s.step_bytes_in.get(step).copied())
                            .sum(),
                    );
                }
            }
        }
        ComponentReport {
            label,
            nranks,
            per_rank,
            stats: agg,
            attempts: 1,
            outcome: ComponentOutcome::Completed,
        }
    }

    /// Attaches the supervisor's accounting (builder style).
    pub fn with_supervision(mut self, attempts: u32, outcome: ComponentOutcome) -> ComponentReport {
        self.attempts = attempts;
        self.outcome = outcome;
        self
    }

    /// Restarts the supervisor performed (attempts beyond the first).
    pub fn restarts(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// Per-process input throughput for one step, in KB/s — the metric of
    /// the paper's Fig. 9.
    ///
    /// Divides the bytes *this step* moved by the time *this step* took;
    /// pairing the run-average bytes-per-step with one step's time
    /// misreports whenever chunk sizes vary across steps (Threshold and
    /// Select outputs do). Falls back to the run average only for stats
    /// recorded without per-step bytes (e.g. external `Simulation` drivers).
    pub fn per_process_throughput_kbs(&self, step: usize) -> Option<f64> {
        let t = self.stats.step_times.get(step)?.as_secs_f64();
        if t == 0.0 || self.stats.steps == 0 {
            return None;
        }
        let step_bytes = match self.stats.step_bytes_in.get(step) {
            Some(&b) => b as f64,
            None => self.stats.bytes_in as f64 / self.stats.steps as f64,
        };
        Some(step_bytes / 1024.0 / self.nranks as f64 / t)
    }
}

/// The result of running a whole workflow.
#[derive(Debug, Clone)]
pub struct WorkflowReport {
    /// Start-to-finish wall-clock time (all components launched together,
    /// measured to the last component's exit — the paper's end-to-end
    /// metric).
    pub elapsed: Duration,
    /// One report per component, in launch order.
    pub components: Vec<ComponentReport>,
    /// Final transfer counters of every stream in the workflow.
    pub streams: Vec<StreamMetrics>,
    /// The step timeline recorded during the run; empty unless tracing was
    /// enabled via `RunOptions::with_tracing` or `SB_TRACE=1`.
    pub timeline: Timeline,
    /// Reactive triggers that fired during the run, in firing order; empty
    /// unless the workflow declared [`crate::Trigger`]s.
    pub triggers: Vec<crate::triggers::TriggerFire>,
}

impl WorkflowReport {
    /// Looks a component up by label.
    pub fn component(&self, label: &str) -> Option<&ComponentReport> {
        self.components.iter().find(|c| c.label == label)
    }

    /// Total ranks across all components.
    pub fn total_ranks(&self) -> usize {
        self.components.iter().map(|c| c.nranks).sum()
    }

    /// Total restarts the supervisor performed across all components.
    pub fn restarts(&self) -> u32 {
        self.components.iter().map(|c| c.restarts()).sum()
    }

    /// Labels of components that finished degraded, in launch order.
    pub fn degraded(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|c| matches!(c.outcome, ComponentOutcome::Degraded { .. }))
            .map(|c| c.label.as_str())
            .collect()
    }

    /// End-to-end per-process throughput in KB/s: total bytes produced by
    /// the named source stream, divided by total workflow processes and
    /// elapsed time — the last column of the paper's Table I.
    pub fn end_to_end_throughput_kbs(&self, source_stream: &str) -> Option<f64> {
        let bytes = self
            .streams
            .iter()
            .find(|m| m.stream == source_stream)?
            .bytes_written as f64;
        let denom = self.total_ranks() as f64 * self.elapsed.as_secs_f64();
        (denom > 0.0).then(|| bytes / 1024.0 / denom)
    }

    /// A human-readable run summary: one table of components, one of
    /// streams — what the examples print after a run.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "workflow: {} components, {} ranks, {:.3}s end to end\n\n",
            self.components.len(),
            self.total_ranks(),
            self.elapsed.as_secs_f64()
        );
        let rows: Vec<Vec<String>> = self
            .components
            .iter()
            .map(|c| {
                vec![
                    c.label.clone(),
                    c.nranks.to_string(),
                    c.stats.steps.to_string(),
                    format!("{}", c.stats.bytes_in),
                    format!("{}", c.stats.bytes_out),
                    format!("{:.2}ms", c.stats.mean_step_time().as_secs_f64() * 1e3),
                    format!("{:.2}ms", c.stats.wait_time.as_secs_f64() * 1e3),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &[
                "component",
                "ranks",
                "steps",
                "in (B)",
                "out (B)",
                "step",
                "wait",
            ],
            &rows,
        ));
        out.push('\n');
        let restarts = self.restarts();
        let degraded = self.degraded();
        if restarts > 0 || !degraded.is_empty() {
            out.push_str(&format!(
                "supervision: {restarts} restart(s), degraded components: {degraded:?}\n\n"
            ));
        }
        let rows: Vec<Vec<String>> = self
            .streams
            .iter()
            .map(|s| {
                let codec = if s.wire_uncompressed_bytes == 0 {
                    "-".to_string()
                } else {
                    format!(
                        "{:.2}x",
                        s.wire_uncompressed_bytes as f64 / s.wire_compressed_bytes.max(1) as f64
                    )
                };
                vec![
                    s.stream.clone(),
                    s.steps_committed.to_string(),
                    format!("{}", s.bytes_written),
                    format!("{}", s.bytes_read),
                    format!("{}", s.wire_writer_bytes),
                    format!("{}", s.wire_reader_bytes),
                    codec,
                ]
            })
            .collect();
        out.push_str(&format_table(
            &[
                "stream",
                "steps",
                "written (B)",
                "read (B)",
                "wire w->b (B)",
                "wire b->r (B)",
                "codec",
            ],
            &rows,
        ));
        out
    }
}

/// Fixed-width table printer shared by the bench harness binaries.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_mean() {
        let mut s = ComponentStats::default();
        s.record_step(
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            100,
        );
        s.record_step(
            Duration::from_millis(20),
            Duration::from_millis(1),
            Duration::from_millis(9),
            300,
        );
        assert_eq!(s.steps, 2);
        assert_eq!(s.mean_step_time(), Duration::from_millis(15));
        assert_eq!(s.wait_time, Duration::from_millis(3));
        assert_eq!(s.compute_time, Duration::from_millis(14));
        assert_eq!(s.bytes_in, 400);
        assert_eq!(s.step_bytes_in, vec![100, 300]);
        assert_eq!(ComponentStats::default().mean_step_time(), Duration::ZERO);
    }

    #[test]
    fn absorb_merges_attempts() {
        let mut first = ComponentStats::default();
        first.record_step(
            Duration::from_millis(10),
            Duration::from_millis(1),
            Duration::from_millis(2),
            100,
        );
        first.bytes_out += 50;
        let mut second = ComponentStats::default();
        second.record_step(
            Duration::from_millis(30),
            Duration::from_millis(3),
            Duration::from_millis(4),
            300,
        );
        second.bytes_out += 150;
        first.absorb(second);
        assert_eq!(first.steps, 2);
        assert_eq!(first.bytes_in, 400);
        assert_eq!(first.bytes_out, 200);
        assert_eq!(first.step_bytes_in, vec![100, 300]);
        assert_eq!(first.step_times.len(), 2);
        assert_eq!(first.wait_time, Duration::from_millis(4));
        assert_eq!(first.compute_time, Duration::from_millis(6));
    }

    #[test]
    fn report_aggregates_over_ranks() {
        let mk = |bytes: u64, ms: u64| {
            let mut s = ComponentStats {
                bytes_out: bytes / 2,
                ..Default::default()
            };
            s.record_step(
                Duration::from_millis(ms),
                Duration::ZERO,
                Duration::ZERO,
                bytes / 2,
            );
            s.record_step(
                Duration::from_millis(ms * 2),
                Duration::ZERO,
                Duration::ZERO,
                bytes / 2,
            );
            s
        };
        let rep = ComponentReport::from_ranks("sel".into(), vec![mk(1000, 10), mk(3000, 30)]);
        assert_eq!(rep.nranks, 2);
        assert_eq!(rep.stats.steps, 2);
        assert_eq!(rep.stats.bytes_in, 4000);
        assert_eq!(rep.stats.bytes_out, 2000);
        // Step 0: mean(10, 30) = 20ms; step 1: mean(20, 60) = 40ms.
        assert_eq!(rep.stats.step_times[0], Duration::from_millis(20));
        assert_eq!(rep.stats.step_times[1], Duration::from_millis(40));
        // Both steps moved 2000 B across the communicator.
        assert_eq!(rep.stats.step_bytes_in, vec![2000, 2000]);
        // Throughput: step 0 moved 2000 B, per-proc = 1000, over 0.02s.
        let kbs = rep.per_process_throughput_kbs(0).unwrap();
        assert!((kbs - (1000.0 / 1024.0 / 0.02)).abs() < 1e-9);
    }

    #[test]
    fn throughput_pairs_each_step_with_its_own_bytes() {
        // Step 0 moves 4096 B in 10ms; step 1 moves 1024 B in 10ms. The
        // old average-based metric reported the same value for both.
        let mut s = ComponentStats::default();
        s.record_step(
            Duration::from_millis(10),
            Duration::ZERO,
            Duration::ZERO,
            4096,
        );
        s.record_step(
            Duration::from_millis(10),
            Duration::ZERO,
            Duration::ZERO,
            1024,
        );
        let rep = ComponentReport::from_ranks("thresh".into(), vec![s]);
        let kbs0 = rep.per_process_throughput_kbs(0).unwrap();
        let kbs1 = rep.per_process_throughput_kbs(1).unwrap();
        assert!((kbs0 - 4.0 / 0.01).abs() < 1e-9, "step 0: 4 KB in 10ms");
        assert!((kbs1 - 1.0 / 0.01).abs() < 1e-9, "step 1: 1 KB in 10ms");

        // Stats recorded without per-step bytes fall back to the average.
        let legacy = ComponentStats {
            steps: 2,
            bytes_in: 5120,
            step_times: vec![Duration::from_millis(10); 2],
            ..Default::default()
        };
        let rep = ComponentReport::from_ranks("sim".into(), vec![legacy]);
        let kbs = rep.per_process_throughput_kbs(0).unwrap();
        assert!((kbs - 2.5 / 0.01).abs() < 1e-9, "mean 2.5 KB in 10ms");
    }

    #[test]
    fn summary_renders_components_and_streams() {
        let rep = WorkflowReport {
            elapsed: Duration::from_millis(1234),
            components: vec![ComponentReport::from_ranks(
                "select".into(),
                vec![ComponentStats {
                    steps: 3,
                    bytes_in: 300,
                    bytes_out: 150,
                    ..Default::default()
                }],
            )],
            streams: vec![sb_stream::StreamMetrics {
                stream: "a.fp".into(),
                bytes_written: 300,
                bytes_read: 300,
                steps_committed: 3,
                steps_consumed: 3,
                writer_wait: Duration::ZERO,
                reader_wait: Duration::ZERO,
                bytes_copied: 300,
                copies_elided: 0,
                zero_fills_elided: 0,
                wire_writer_bytes: 0,
                wire_reader_bytes: 0,
                wire_shm_bytes: 0,
                wire_uncompressed_bytes: 0,
                wire_compressed_bytes: 0,
                bytes_on_wire: 0,
            }],
            timeline: Timeline::default(),
            triggers: Vec::new(),
        };
        let s = rep.summary();
        assert!(s.contains("1 components"));
        assert!(s.contains("select"));
        assert!(s.contains("a.fp"));
        assert!(s.contains("1.234s"));
    }

    #[test]
    fn table_formatting_aligns() {
        let t = format_table(
            &["Run", "Output (MB)", "Procs"],
            &[
                vec!["1".into(), "918.3".into(), "64".into()],
                vec!["5".into(), "12905.4".into(), "1024".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Output (MB)"));
        assert!(lines[3].contains("12905.4"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
