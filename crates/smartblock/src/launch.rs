//! The launch-script grammar (paper Figs. 1–3 and 8).
//!
//! The paper assembles workflows as job scripts: every line launches one
//! component with a process count and run-time arguments, all backgrounded
//! and `wait`ed together. This module parses that grammar:
//!
//! ```text
//! aprun -n 64  histogram velos.fp velocities 16 &
//! aprun -n 256 magnitude lmpselect.fp lmpsel velos.fp velocities &
//! aprun -n 256 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
//! aprun -n 1024 lammps < in.cracksm &
//! wait
//! ```
//!
//! `parse_script` turns such text into [`LaunchEntry`] values;
//! [`crate::workflows::script_to_workflow`] turns those into a runnable
//! [`crate::Workflow`].

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::combine::BinaryOp;
use crate::component::StreamArray;
use crate::reduce::ReduceOp;
use crate::supervisor::FaultPolicy;
use crate::threshold::Predicate;

/// A launch-script parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchError {
    /// 1-based script line.
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "launch script line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for LaunchError {}

/// Which simulation code a script line launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimCode {
    /// The mini-LAMMPS crack driver.
    Lammps,
    /// The mini-GTCP torus driver.
    Gtcp,
    /// The mini-GROMACS chain driver.
    Gromacs,
}

impl SimCode {
    /// The conventional output stream each code's ADIOS config names.
    pub fn default_stream(self) -> &'static str {
        match self {
            SimCode::Lammps => "dump.custom.fp",
            SimCode::Gtcp => "gtcp.fp",
            SimCode::Gromacs => "gromacs.fp",
        }
    }
}

/// One parsed program invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Program {
    /// `select in-stream in-array dim-index out-stream out-array names...`
    Select {
        /// Input endpoint.
        input: StreamArray,
        /// Dimension to filter.
        dim_index: usize,
        /// Output endpoint.
        output: StreamArray,
        /// Row names to keep.
        keep: Vec<String>,
    },
    /// `magnitude in-stream in-array out-stream out-array`
    Magnitude {
        /// Input endpoint.
        input: StreamArray,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `dim-reduce in-stream in-array remove grow out-stream out-array`
    DimReduce {
        /// Input endpoint.
        input: StreamArray,
        /// Dimension to remove.
        remove: usize,
        /// Dimension that absorbs it.
        grow: usize,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `histogram in-stream in-array num-bins [output-file]`
    Histogram {
        /// Input endpoint.
        input: StreamArray,
        /// Bin count.
        num_bins: usize,
        /// Optional file rank 0 appends results to.
        output_file: Option<String>,
    },
    /// `reduce in-stream in-array dim op out-stream out-array`
    Reduce {
        /// Input endpoint.
        input: StreamArray,
        /// Dimension to collapse.
        dim: usize,
        /// Aggregation (`sum`, `mean`, `min`, `max`).
        op: ReduceOp,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `threshold in-stream in-array mode value out-stream out-array`
    Threshold {
        /// Input endpoint.
        input: StreamArray,
        /// Predicate (`gt`, `lt`, `abs-gt` with a threshold value).
        predicate: Predicate,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `transpose in-stream in-array perm out-stream out-array`
    Transpose {
        /// Input endpoint.
        input: StreamArray,
        /// Axis permutation (comma-separated indices).
        perm: Vec<usize>,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `combine left-stream left-array op right-stream right-array out-stream out-array`
    Combine {
        /// Left input endpoint.
        left: StreamArray,
        /// Element-wise operation (`add`, `sub`, `mul`, `div`).
        op: BinaryOp,
        /// Right input endpoint.
        right: StreamArray,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `temporal-mean in-stream in-array window out-stream out-array`
    TemporalMean {
        /// Input endpoint.
        input: StreamArray,
        /// Steps to average over.
        window: usize,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `stats in-stream in-array out-stream out-array`
    Stats {
        /// Input endpoint.
        input: StreamArray,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `all-pairs in-stream in-array out-stream out-array`
    AllPairs {
        /// Input endpoint.
        input: StreamArray,
        /// Output endpoint.
        output: StreamArray,
    },
    /// `fork in-stream out-stream...`
    Fork {
        /// Input stream.
        input: String,
        /// Output streams.
        outputs: Vec<String>,
    },
    /// `aio in-stream in-array num-bins names...`
    AllInOne {
        /// Input endpoint.
        input: StreamArray,
        /// Bin count.
        num_bins: usize,
        /// Vector-component column names.
        keep: Vec<String>,
    },
    /// `file-write in-stream path`
    FileWrite {
        /// Input stream.
        input: String,
        /// Container path.
        path: String,
    },
    /// `file-read path out-stream`
    FileRead {
        /// Container path.
        path: String,
        /// Output stream.
        output: String,
    },
    /// `lammps|gtcp|gromacs [key=value ...] [< input-file]`
    Simulation {
        /// Which code.
        code: SimCode,
        /// `key=value` overrides (sizes, steps, seed, stream).
        params: BTreeMap<String, String>,
        /// The `< file` operand, if present (recorded, not read).
        stdin: Option<String>,
    },
}

/// One line of a parsed launch script.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchEntry {
    /// Process count from `-n`.
    pub nranks: usize,
    /// The program and its arguments.
    pub program: Program,
    /// Trailing `key=value` options on component lines: `group=` (reader
    /// group), `groups=N` (declared subscriber count on the output),
    /// `queue=N` (writer queue depth), `rendezvous=1` (synchronous
    /// hand-off). Simulation lines keep their `key=value` tokens as
    /// program parameters instead.
    pub options: BTreeMap<String, String>,
    /// 1-based script line this entry was parsed from (0 for entries built
    /// programmatically), threaded into lint diagnostics.
    pub line: usize,
}

/// A `#@ policy LABEL abort|degrade|restart:N[:BACKOFF_MS]` directive: the
/// fault policy the workflow applies to one component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDirective {
    /// The component label the policy targets.
    pub label: String,
    /// The parsed policy.
    pub policy: FaultPolicy,
    /// 1-based script line of the directive.
    pub line: usize,
}

/// A `#@ process NAME member[,member...]` directive: one process of a
/// distributed deployment and the component labels assigned to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessDirective {
    /// Process name (the `--only` selection key).
    pub name: String,
    /// Component labels assigned to this process.
    pub members: Vec<String>,
    /// 1-based script line of the directive.
    pub line: usize,
}

/// Script-level directives: `#@ key value` comment lines, invisible to the
/// per-line grammar (old parsers skip them as comments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScriptDirectives {
    /// `#@ transport tcp://host:port` — the broker endpoint a multi-process
    /// deployment of this script rendezvouses on. `sb-run` uses it as the
    /// default for `--serve`/`--connect`; `sb-lint` validates it. When a
    /// script declares several transports, this keeps the first.
    pub transport: Option<String>,
    /// Every `#@ transport` declaration with its script line, in order
    /// (the transport pass flags colliding endpoints).
    pub transports: Vec<(String, usize)>,
    /// `#@ policy` directives, in script order.
    pub policies: Vec<PolicyDirective>,
    /// `#@ process` directives, in script order.
    pub processes: Vec<ProcessDirective>,
}

/// Parses the policy spec of a `#@ policy` directive (also used by `.sbw`
/// policy tables and trigger clauses):
/// `abort`, `degrade`, or `restart:N[:BACKOFF_MS]`.
pub(crate) fn parse_policy_spec(spec: &str) -> Result<FaultPolicy, String> {
    match spec {
        "abort" => return Ok(FaultPolicy::abort()),
        "degrade" => return Ok(FaultPolicy::degrade()),
        _ => {}
    }
    let usage = || format!("bad policy {spec:?} (abort, degrade, or restart:N[:BACKOFF_MS])");
    let mut parts = spec.split(':');
    if parts.next() != Some("restart") {
        return Err(usage());
    }
    let n: u32 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(usage)?;
    let mut policy = FaultPolicy::restart(n);
    if let Some(ms) = parts.next() {
        let ms: u64 = ms.parse().map_err(|_| usage())?;
        policy = policy.with_backoff(Duration::from_millis(ms));
    }
    if parts.next().is_some() {
        return Err(usage());
    }
    Ok(policy)
}

/// Syntactic check of a transport URL — `tcp://host:port` or `shm://DIR`
/// (no DNS lookup or filesystem probe, so lint can run offline); returns
/// the reason when the URL is malformed. Actual resolution happens at
/// connect time in `sb_stream::tcp` / `sb_stream::shm`.
pub fn validate_transport_url(url: &str) -> Result<(), String> {
    if let Some(dir) = url.strip_prefix("shm://") {
        if dir.is_empty() {
            return Err(format!(
                "transport URL {url:?} needs a rendezvous directory after shm://"
            ));
        }
        return Ok(());
    }
    let rest = url
        .strip_prefix("tcp://")
        .ok_or_else(|| format!("transport URL {url:?} must start with tcp:// or shm://"))?;
    let (host, port) = rest
        .rsplit_once(':')
        .ok_or_else(|| format!("transport URL {url:?} needs a host:port"))?;
    if host.is_empty() {
        return Err(format!("transport URL {url:?} has an empty host"));
    }
    match port.parse::<u16>() {
        Ok(_) => Ok(()),
        Err(_) => Err(format!(
            "transport URL {url:?} has an invalid port {port:?}"
        )),
    }
}

fn err(line: usize, detail: impl Into<String>) -> LaunchError {
    LaunchError {
        line,
        detail: detail.into(),
    }
}

fn parse_usize(tok: &str, what: &str, line: usize) -> Result<usize, LaunchError> {
    tok.parse()
        .map_err(|_| err(line, format!("{what} must be an integer, got {tok:?}")))
}

/// Parses a launch script into entries; `wait`, comments and blank lines
/// are skipped (including `#@` directive lines — use
/// [`parse_script_with_directives`] to read those too).
pub fn parse_script(text: &str) -> Result<Vec<LaunchEntry>, LaunchError> {
    parse_script_with_directives(text).map(|(entries, _)| entries)
}

/// [`parse_script`] plus the script-level `#@` directives. A malformed
/// directive (unknown key, missing value, bad transport URL) is a parse
/// error, so linted scripts are deployable as written.
pub fn parse_script_with_directives(
    text: &str,
) -> Result<(Vec<LaunchEntry>, ScriptDirectives), LaunchError> {
    let mut entries = Vec::new();
    let mut directives = ScriptDirectives::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut s = raw.trim();
        if let Some(directive) = s.strip_prefix("#@") {
            let mut toks = directive.split_whitespace();
            match toks.next() {
                Some("transport") => {
                    let (Some(url), None) = (toks.next(), toks.next()) else {
                        return Err(err(line, "usage: #@ transport tcp://host:port | shm://DIR"));
                    };
                    validate_transport_url(url).map_err(|detail| err(line, detail))?;
                    if directives.transport.is_none() {
                        directives.transport = Some(url.to_string());
                    }
                    directives.transports.push((url.to_string(), line));
                }
                Some("policy") => {
                    let (Some(label), Some(spec), None) = (toks.next(), toks.next(), toks.next())
                    else {
                        return Err(err(
                            line,
                            "usage: #@ policy LABEL abort|degrade|restart:N[:BACKOFF_MS]",
                        ));
                    };
                    let policy = parse_policy_spec(spec).map_err(|detail| err(line, detail))?;
                    directives.policies.push(PolicyDirective {
                        label: label.to_string(),
                        policy,
                        line,
                    });
                }
                Some("process") => {
                    let Some(name) = toks.next() else {
                        return Err(err(line, "usage: #@ process NAME member[,member...]"));
                    };
                    let members: Vec<String> = toks
                        .collect::<Vec<&str>>()
                        .join(",")
                        .split(',')
                        .filter(|m| !m.is_empty())
                        .map(|m| m.to_string())
                        .collect();
                    if members.is_empty() {
                        return Err(err(line, "usage: #@ process NAME member[,member...]"));
                    }
                    directives.processes.push(ProcessDirective {
                        name: name.to_string(),
                        members,
                        line,
                    });
                }
                Some(other) => {
                    return Err(err(line, format!("unknown directive {other:?}")));
                }
                None => return Err(err(line, "empty #@ directive")),
            }
            continue;
        }
        if s.is_empty() || s.starts_with('#') || s == "wait" {
            continue;
        }
        if let Some(stripped) = s.strip_suffix('&') {
            s = stripped.trim_end();
        }
        let mut tokens: Vec<&str> = s.split_whitespace().collect();

        // Optional `aprun` prefix and mandatory-if-present `-n N`.
        if tokens.first() == Some(&"aprun") {
            tokens.remove(0);
        }
        let mut nranks = 1usize;
        if tokens.first() == Some(&"-n") {
            tokens.remove(0);
            if tokens.is_empty() {
                return Err(err(line, "-n needs a process count"));
            }
            nranks = parse_usize(tokens.remove(0), "process count", line)?;
            if nranks == 0 {
                return Err(err(line, "process count must be positive"));
            }
        }
        if tokens.is_empty() {
            return Err(err(line, "missing program name"));
        }
        let prog = tokens.remove(0);
        let is_sim = matches!(prog, "lammps" | "gtcp" | "gromacs");

        // Component lines may carry trailing key=value options; simulation
        // lines keep key=value tokens as their parameters.
        let mut options = BTreeMap::new();
        if !is_sim {
            tokens.retain(|t| {
                if let Some((k, v)) = t.split_once('=') {
                    options.insert(k.to_string(), v.to_string());
                    false
                } else {
                    true
                }
            });
        }

        // Extract a `< file` redirect anywhere in the remaining tokens.
        let mut stdin = None;
        if let Some(pos) = tokens.iter().position(|t| *t == "<") {
            if pos + 1 >= tokens.len() {
                return Err(err(line, "'<' needs a file operand"));
            }
            stdin = Some(tokens[pos + 1].to_string());
            tokens.drain(pos..pos + 2);
        }

        let need = |n: usize, usage: &str| -> Result<(), LaunchError> {
            if tokens.len() < n {
                Err(err(line, format!("usage: {usage}")))
            } else {
                Ok(())
            }
        };

        let program = match prog {
            "select" => {
                need(
                    5,
                    "select in-stream in-array dim-index out-stream out-array names...",
                )?;
                Program::Select {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    dim_index: parse_usize(tokens[2], "dimension index", line)?,
                    output: StreamArray::new(tokens[3], tokens[4]),
                    keep: tokens[5..].iter().map(|t| t.to_string()).collect(),
                }
            }
            "magnitude" => {
                need(4, "magnitude in-stream in-array out-stream out-array")?;
                Program::Magnitude {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    output: StreamArray::new(tokens[2], tokens[3]),
                }
            }
            "dim-reduce" => {
                need(
                    6,
                    "dim-reduce in-stream in-array remove grow out-stream out-array",
                )?;
                Program::DimReduce {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    remove: parse_usize(tokens[2], "dim-to-remove", line)?,
                    grow: parse_usize(tokens[3], "dim-to-grow", line)?,
                    output: StreamArray::new(tokens[4], tokens[5]),
                }
            }
            "histogram" => {
                need(3, "histogram in-stream in-array num-bins [output-file]")?;
                Program::Histogram {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    num_bins: parse_usize(tokens[2], "num-bins", line)?,
                    output_file: tokens.get(3).map(|t| t.to_string()),
                }
            }
            "reduce" => {
                need(6, "reduce in-stream in-array dim op out-stream out-array")?;
                let op = ReduceOp::parse(tokens[3]).ok_or_else(|| {
                    err(
                        line,
                        format!("unknown reduce op {:?} (sum|mean|min|max)", tokens[3]),
                    )
                })?;
                Program::Reduce {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    dim: parse_usize(tokens[2], "dimension", line)?,
                    op,
                    output: StreamArray::new(tokens[4], tokens[5]),
                }
            }
            "threshold" => {
                need(
                    6,
                    "threshold in-stream in-array mode value out-stream out-array",
                )?;
                let value: f64 = tokens[3].parse().map_err(|_| {
                    err(
                        line,
                        format!("threshold value must be a number, got {:?}", tokens[3]),
                    )
                })?;
                let predicate = Predicate::parse(tokens[2], value).ok_or_else(|| {
                    err(
                        line,
                        format!("unknown threshold mode {:?} (gt|lt|abs-gt)", tokens[2]),
                    )
                })?;
                Program::Threshold {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    predicate,
                    output: StreamArray::new(tokens[4], tokens[5]),
                }
            }
            "transpose" => {
                need(5, "transpose in-stream in-array perm out-stream out-array")?;
                let perm: Vec<usize> = tokens[2]
                    .split(',')
                    .map(|t| parse_usize(t.trim(), "permutation index", line))
                    .collect::<Result<_, _>>()?;
                Program::Transpose {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    perm,
                    output: StreamArray::new(tokens[3], tokens[4]),
                }
            }
            "combine" => {
                need(7, "combine left-stream left-array op right-stream right-array out-stream out-array")?;
                let op = BinaryOp::parse(tokens[2]).ok_or_else(|| {
                    err(
                        line,
                        format!("unknown combine op {:?} (add|sub|mul|div)", tokens[2]),
                    )
                })?;
                Program::Combine {
                    left: StreamArray::new(tokens[0], tokens[1]),
                    op,
                    right: StreamArray::new(tokens[3], tokens[4]),
                    output: StreamArray::new(tokens[5], tokens[6]),
                }
            }
            "temporal-mean" => {
                need(
                    5,
                    "temporal-mean in-stream in-array window out-stream out-array",
                )?;
                Program::TemporalMean {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    window: parse_usize(tokens[2], "window", line)?,
                    output: StreamArray::new(tokens[3], tokens[4]),
                }
            }
            "stats" => {
                need(4, "stats in-stream in-array out-stream out-array")?;
                Program::Stats {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    output: StreamArray::new(tokens[2], tokens[3]),
                }
            }
            "all-pairs" => {
                need(4, "all-pairs in-stream in-array out-stream out-array")?;
                Program::AllPairs {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    output: StreamArray::new(tokens[2], tokens[3]),
                }
            }
            "fork" => {
                need(2, "fork in-stream out-stream...")?;
                Program::Fork {
                    input: tokens[0].to_string(),
                    outputs: tokens[1..].iter().map(|t| t.to_string()).collect(),
                }
            }
            "aio" => {
                need(4, "aio in-stream in-array num-bins names...")?;
                Program::AllInOne {
                    input: StreamArray::new(tokens[0], tokens[1]),
                    num_bins: parse_usize(tokens[2], "num-bins", line)?,
                    keep: tokens[3..].iter().map(|t| t.to_string()).collect(),
                }
            }
            "file-write" => {
                need(2, "file-write in-stream path")?;
                Program::FileWrite {
                    input: tokens[0].to_string(),
                    path: tokens[1].to_string(),
                }
            }
            "file-read" => {
                need(2, "file-read path out-stream")?;
                Program::FileRead {
                    path: tokens[0].to_string(),
                    output: tokens[1].to_string(),
                }
            }
            "lammps" | "gtcp" | "gromacs" => {
                let code = match prog {
                    "lammps" => SimCode::Lammps,
                    "gtcp" => SimCode::Gtcp,
                    _ => SimCode::Gromacs,
                };
                let mut params = BTreeMap::new();
                for t in &tokens {
                    let (k, v) = t.split_once('=').ok_or_else(|| {
                        err(
                            line,
                            format!("simulation arguments must be key=value, got {t:?}"),
                        )
                    })?;
                    params.insert(k.to_string(), v.to_string());
                }
                Program::Simulation {
                    code,
                    params,
                    stdin,
                }
            }
            other => return Err(err(line, format!("unknown program {other:?}"))),
        };
        entries.push(LaunchEntry {
            nranks,
            program,
            options,
            line,
        });
    }
    Ok((entries, directives))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 8 script, verbatim in structure.
    const FIG8: &str = r#"
        aprun -n 64 histogram velos.fp velocities 16 &
        aprun -n 256 magnitude lmpselect.fp lmpsel velos.fp velocities &
        aprun -n 256 select dump.custom.fp atoms 1 lmpselect.fp lmpsel vx vy vz &
        aprun -n 1024 lammps < in.cracksm &
        wait
    "#;

    #[test]
    fn parses_the_papers_fig8_script() {
        let entries = parse_script(FIG8).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].nranks, 64);
        assert_eq!(
            entries[0].program,
            Program::Histogram {
                input: StreamArray::new("velos.fp", "velocities"),
                num_bins: 16,
                output_file: None,
            }
        );
        assert_eq!(entries[1].nranks, 256);
        assert_eq!(
            entries[1].program,
            Program::Magnitude {
                input: StreamArray::new("lmpselect.fp", "lmpsel"),
                output: StreamArray::new("velos.fp", "velocities"),
            }
        );
        assert_eq!(
            entries[2].program,
            Program::Select {
                input: StreamArray::new("dump.custom.fp", "atoms"),
                dim_index: 1,
                output: StreamArray::new("lmpselect.fp", "lmpsel"),
                keep: vec!["vx".into(), "vy".into(), "vz".into()],
            }
        );
        assert_eq!(entries[3].nranks, 1024);
        assert_eq!(
            entries[3].program,
            Program::Simulation {
                code: SimCode::Lammps,
                params: BTreeMap::new(),
                stdin: Some("in.cracksm".into()),
            }
        );
    }

    #[test]
    fn parses_the_gtcp_pipeline() {
        let script = r#"
            # GTCP pressure histogram, Fig. 6
            aprun -n 4 gtcp slices=16 points=32 steps=3 &
            aprun -n 3 select gtcp.fp plasma 2 psel.fp pperp P_perp &
            aprun -n 2 dim-reduce psel.fp pperp 2 1 dr1.fp flat2 &
            aprun -n 2 dim-reduce dr1.fp flat2 0 1 dr2.fp flat1 &
            aprun -n 1 histogram dr2.fp flat1 20 /tmp/h.txt &
            wait
        "#;
        let entries = parse_script(script).unwrap();
        assert_eq!(entries.len(), 5);
        match &entries[0].program {
            Program::Simulation {
                code,
                params,
                stdin,
            } => {
                assert_eq!(*code, SimCode::Gtcp);
                assert_eq!(params["slices"], "16");
                assert_eq!(params["steps"], "3");
                assert!(stdin.is_none());
            }
            other => panic!("expected simulation, got {other:?}"),
        }
        match &entries[4].program {
            Program::Histogram { output_file, .. } => {
                assert_eq!(output_file.as_deref(), Some("/tmp/h.txt"));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn parses_extension_components() {
        let script = r#"
            fork in.fp a.fp b.fp
            stats a.fp x st.fp summary
            all-pairs b.fp x ap.fp dists
            file-write ap.fp /tmp/out.sbc
            file-read /tmp/out.sbc replay.fp
            aio dump.fp atoms 16 vx vy vz
        "#;
        let entries = parse_script(script).unwrap();
        assert_eq!(entries.len(), 6);
        // Bare lines default to one rank.
        assert!(entries.iter().all(|e| e.nranks == 1));
        assert!(matches!(entries[0].program, Program::Fork { .. }));
        assert!(matches!(entries[5].program, Program::AllInOne { .. }));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (script, what) in [
            ("aprun -n x select a b 1 c d vx", "bad nranks"),
            ("aprun -n 0 magnitude a b c d", "zero ranks"),
            ("aprun -n 2 bogus a b", "unknown program"),
            ("select a b", "too few args"),
            ("dim-reduce a b one 1 c d", "non-integer dim"),
            ("lammps foo", "non key=value sim arg"),
            ("aprun -n", "missing count"),
            ("lammps <", "dangling redirect"),
            ("aprun -n 2", "missing program"),
        ] {
            assert!(parse_script(script).is_err(), "should reject: {what}");
        }
    }

    #[test]
    fn transport_directive_round_trips() {
        let script = r#"
            #@ transport tcp://127.0.0.1:7654
            # an ordinary comment
            aprun -n 1 histogram a.fp x 4 &
            wait
        "#;
        let (entries, directives) = parse_script_with_directives(script).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            directives.transport.as_deref(),
            Some("tcp://127.0.0.1:7654")
        );
        // Directive lines stay invisible to the plain parser.
        assert_eq!(parse_script(script).unwrap().len(), 1);
        // Scripts without directives parse to the default.
        let (_, none) = parse_script_with_directives("histogram a.fp x 4").unwrap();
        assert_eq!(none, ScriptDirectives::default());
    }

    #[test]
    fn policy_and_process_directives_parse_with_lines() {
        let script = r#"
            #@ policy histogram restart:2:50
            #@ policy gromacs abort
            #@ process sim gromacs
            #@ process viz magnitude,histogram
            aprun -n 1 gromacs steps=2 &
            aprun -n 1 magnitude gromacs.fp coords m.fp r &
            aprun -n 1 histogram m.fp r 4 &
            wait
        "#;
        let (entries, directives) = parse_script_with_directives(script).unwrap();
        assert_eq!(entries.len(), 3);
        // Entries record their 1-based script line.
        assert_eq!(entries[0].line, 6);
        assert_eq!(entries[2].line, 8);
        assert_eq!(directives.policies.len(), 2);
        assert_eq!(directives.policies[0].label, "histogram");
        assert_eq!(
            directives.policies[0].policy,
            FaultPolicy::restart(2).with_backoff(Duration::from_millis(50))
        );
        assert_eq!(directives.policies[0].line, 2);
        assert_eq!(directives.policies[1].policy, FaultPolicy::abort());
        assert_eq!(directives.processes.len(), 2);
        assert_eq!(directives.processes[1].name, "viz");
        assert_eq!(directives.processes[1].members, ["magnitude", "histogram"]);
        assert_eq!(directives.processes[1].line, 5);
    }

    #[test]
    fn repeated_transports_keep_the_first_and_record_all() {
        let script = "#@ transport tcp://a:1\n#@ transport tcp://b:2\nhistogram a.fp x 4";
        let (_, directives) = parse_script_with_directives(script).unwrap();
        assert_eq!(directives.transport.as_deref(), Some("tcp://a:1"));
        assert_eq!(
            directives.transports,
            vec![("tcp://a:1".into(), 1), ("tcp://b:2".into(), 2)]
        );
    }

    #[test]
    fn malformed_directives_are_parse_errors() {
        for (script, what) in [
            ("#@ transport", "missing URL"),
            ("#@ transport udp://1.2.3.4:5", "wrong scheme"),
            ("#@ transport tcp://host", "missing port"),
            ("#@ transport tcp://:99", "empty host"),
            ("#@ transport tcp://h:notaport", "bad port"),
            ("#@ transport tcp://h:1 extra", "trailing token"),
            ("#@ teleport tcp://h:1", "unknown key"),
            ("#@", "empty directive"),
            ("#@ policy histogram", "missing policy spec"),
            ("#@ policy histogram retry", "unknown policy"),
            ("#@ policy histogram restart", "restart without budget"),
            ("#@ policy histogram restart:x", "non-integer budget"),
            ("#@ policy histogram restart:1:2:3", "too many fields"),
            ("#@ policy a abort extra", "trailing token on policy"),
            ("#@ process viz", "process without members"),
            ("#@ process", "process without name"),
        ] {
            assert!(
                parse_script_with_directives(script).is_err(),
                "should reject: {what}"
            );
        }
    }

    #[test]
    fn transport_url_validation() {
        assert!(validate_transport_url("tcp://localhost:9000").is_ok());
        assert!(validate_transport_url("tcp://10.0.0.1:1").is_ok());
        assert!(validate_transport_url("tcp://[::1]:9000").is_ok());
        assert!(validate_transport_url("localhost:9000").is_err());
        assert!(validate_transport_url("tcp://x:70000").is_err());
        assert!(validate_transport_url("shm:///tmp/sb-rendezvous").is_ok());
        assert!(validate_transport_url("shm://rings").is_ok());
        assert!(validate_transport_url("shm://").is_err());
    }

    #[test]
    fn default_streams_per_code() {
        assert_eq!(SimCode::Lammps.default_stream(), "dump.custom.fp");
        assert_eq!(SimCode::Gtcp.default_stream(), "gtcp.fp");
        assert_eq!(SimCode::Gromacs.default_stream(), "gromacs.fp");
    }
}
