//! The Dim-Reduce component: absorb one dimension into another without
//! changing the total data size (paper §III-F).
//!
//! Certain analytical components expect data of a particular rank —
//! Histogram wants 1-d input, but GTCP emits `toroidal × gridpoints × 7`.
//! Dim-Reduce removes one dimension by absorbing it into another: the
//! output has one dimension fewer, the absorbed ("grow") dimension's extent
//! is multiplied by the removed dimension's, and the data is re-arranged in
//! memory so that the removed index becomes the *slower-varying* component
//! of the grown index:
//!
//! ```text
//! new_grow_index = old_remove_index * size(grow) + old_grow_index
//! ```
//!
//! When the removed dimension immediately precedes the grown one in
//! row-major order, that re-arrangement is the identity — the fast path.
//! Any other pairing genuinely permutes memory, which is exactly why the
//! paper argues the component must exist ("data must be presented to the
//! components in a format that they expect", §III).
//!
//! Usage (paper Fig. 3):
//!
//! ```text
//! aprun dim-reduce input-stream-name input-array-name
//!       dim-to-remove dim-to-grow output-stream-name output-array-name
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use sb_comm::Communicator;
use sb_data::decompose::slab_partition;
use sb_data::{Buffer, Chunk, DataError, DataResult, Dim, Region, Shape, Variable, VariableMeta};
use sb_stream::{StreamHub, WriterOptions};

use crate::component::{run_transform, Component, StepOutput, StreamArray, TransformSpec};
use crate::error::ComponentResult;

/// Computes the output shape of a dim-reduce: `remove` dropped, `grow`
/// multiplied by `remove`'s extent. Returns the shape and the index of the
/// grown dimension in the output.
pub fn reduced_shape(shape: &Shape, remove: usize, grow: usize) -> DataResult<(Shape, usize)> {
    shape.check_dim(remove)?;
    shape.check_dim(grow)?;
    if remove == grow {
        return Err(DataError::RegionOutOfBounds {
            detail: "dim-reduce: remove and grow must differ".into(),
        });
    }
    let r = shape.size(remove);
    let g = shape.size(grow);
    let grow_out = if remove < grow { grow - 1 } else { grow };
    let mut dims: Vec<Dim> = shape
        .dims()
        .iter()
        .enumerate()
        .filter(|(d, _)| *d != remove)
        .map(|(_, dim)| dim.clone())
        .collect();
    dims[grow_out] = Dim::new(
        format!("{}*{}", shape.dim_name(remove), shape.dim_name(grow)),
        r * g,
    );
    Ok((Shape::new(dims), grow_out))
}

/// The pure kernel: re-arranges `var`'s data per the dim-reduce mapping.
///
/// Size-preserving by construction; a permutation of the input elements.
pub fn dim_reduce(var: &Variable, remove: usize, grow: usize) -> DataResult<Variable> {
    let (out_shape, _grow_out) = reduced_shape(&var.shape, remove, grow)?;
    let ndims = var.shape.ndims();

    // Fast path: removed dim immediately precedes the grown dim, so the
    // combined index order matches the existing memory order.
    if remove + 1 == grow {
        let mut out = Variable::new(var.name.clone(), out_shape, var.data.clone())?;
        out.attrs = var.attrs.clone();
        carry_labels(var, remove, grow, &mut out);
        return Ok(out);
    }

    // General path: for each input dimension, its contribution (stride) to
    // the output linear offset under the mapping. Surviving dims keep their
    // output stride; the grown dim's index contributes its output stride;
    // the removed dim contributes `size(grow)` grown-dim strides per unit.
    let out_strides = out_shape.strides();
    let g = var.shape.size(grow);
    let grow_out = if remove < grow { grow - 1 } else { grow };
    let mut out_index_of_input = vec![usize::MAX; ndims];
    let mut next_out = 0;
    for (d, slot) in out_index_of_input.iter_mut().enumerate() {
        if d != remove {
            *slot = next_out;
            next_out += 1;
        }
    }
    let mut contrib = vec![0usize; ndims];
    for d in 0..ndims {
        contrib[d] = if d == remove {
            g * out_strides[grow_out]
        } else if d == grow {
            out_strides[grow_out]
        } else {
            out_strides[out_index_of_input[d]]
        };
    }

    let sizes = var.shape.sizes();
    let total = var.shape.total_len();
    let mut out = Buffer::zeros(var.dtype(), total);
    if total > 0 {
        // Odometer over all dims but the last; the last dim is copied as a
        // contiguous run when its output stride is 1, elementwise otherwise.
        let last = ndims - 1;
        let run = sizes[last];
        let run_contiguous = contrib[last] == 1;
        let mut idx = vec![0usize; last];
        let mut in_off = 0usize;
        loop {
            let out_base: usize = idx.iter().zip(&contrib[..last]).map(|(&i, &c)| i * c).sum();
            if run_contiguous {
                out.copy_from(out_base, &var.data, in_off, run)?;
            } else {
                for k in 0..run {
                    out.copy_from(out_base + k * contrib[last], &var.data, in_off + k, 1)?;
                }
            }
            in_off += run;
            // Advance the odometer.
            let mut d = last;
            loop {
                if d == 0 {
                    debug_assert_eq!(in_off, total);
                    let mut result = Variable::new(var.name.clone(), out_shape, out)?;
                    result.attrs = var.attrs.clone();
                    carry_labels(var, remove, grow, &mut result);
                    return Ok(result);
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < sizes[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
    let mut result = Variable::new(var.name.clone(), out_shape, out)?;
    result.attrs = var.attrs.clone();
    carry_labels(var, remove, grow, &mut result);
    Ok(result)
}

/// Labels on dimensions other than `remove`/`grow` survive, with their dim
/// indices shifted past the removed dimension. Headers on the removed and
/// grown dims are dropped: their rows no longer exist as such.
fn carry_labels(var: &Variable, remove: usize, grow: usize, out: &mut Variable) {
    let mut labels = BTreeMap::new();
    for (&d, names) in &var.labels {
        if d == remove || d == grow {
            continue;
        }
        let nd = if d > remove { d - 1 } else { d };
        labels.insert(nd, names.clone());
    }
    out.labels = labels;
}

/// The Dim-Reduce workflow component.
#[derive(Debug, Clone)]
pub struct DimReduce {
    /// Input stream/array names.
    pub input: StreamArray,
    /// Dimension to remove.
    pub remove: usize,
    /// Dimension that absorbs the removed one.
    pub grow: usize,
    /// Output stream/array names.
    pub output: StreamArray,
    /// Output buffering policy.
    pub writer_options: WriterOptions,
    /// Reader-group name on the input stream.
    pub reader_group: String,
}

impl DimReduce {
    /// Builds a Dim-Reduce absorbing dimension `remove` into `grow`.
    pub fn new<I: Into<StreamArray>, O: Into<StreamArray>>(
        input: I,
        remove: usize,
        grow: usize,
        output: O,
    ) -> DimReduce {
        DimReduce {
            input: input.into(),
            remove,
            grow,
            output: output.into(),
            writer_options: WriterOptions::default(),
            reader_group: "default".into(),
        }
    }

    /// Overrides the output buffering policy.
    pub fn with_writer_options(mut self, options: WriterOptions) -> DimReduce {
        self.writer_options = options;
        self
    }

    /// Subscribes under a named reader group (multi-subscriber streams).
    pub fn with_reader_group(mut self, group: impl Into<String>) -> DimReduce {
        self.reader_group = group.into();
        self
    }
}

impl Component for DimReduce {
    fn label(&self) -> String {
        "dim-reduce".into()
    }

    fn input_streams(&self) -> Vec<String> {
        vec![self.input.stream.clone()]
    }

    fn input_subscriptions(&self) -> Vec<(String, String)> {
        vec![(self.input.stream.clone(), self.reader_group.clone())]
    }

    fn output_streams(&self) -> Vec<String> {
        vec![self.output.stream.clone()]
    }

    fn signature(&self) -> crate::analysis::Signature {
        use crate::analysis::{
            unary_transfer, ArraySpec, DimSpec, PartitionRule, ReadSpec, Signature, SpecError,
        };
        use std::collections::BTreeMap;
        let (remove, grow) = (self.remove, self.grow);
        Signature::with_boxed_transfer(
            vec![ReadSpec::new(
                &self.input.stream,
                &self.input.array,
                PartitionRule::Along(remove),
            )],
            unary_transfer(
                self.input.array.clone(),
                self.output.array.clone(),
                move |spec| {
                    spec.check_dim(remove)?;
                    spec.check_dim(grow)?;
                    if remove == grow {
                        return Err(SpecError::InvalidAxes {
                            detail: format!("cannot fold dimension {remove} into itself"),
                        });
                    }
                    // Mirrors `reduced_shape`: the removed dimension's
                    // extent multiplies into the grown one.
                    let grown = DimSpec {
                        name: format!("{}*{}", spec.dims[remove].name, spec.dims[grow].name),
                        extent: spec.dims[remove].extent.times(spec.dims[grow].extent),
                    };
                    let mut dims = spec.dims.clone();
                    dims.remove(remove);
                    let grow_out = if remove < grow { grow - 1 } else { grow };
                    dims[grow_out] = grown;
                    let mut labels = BTreeMap::new();
                    for (&d, names) in &spec.labels {
                        if d == remove || d == grow {
                            continue;
                        }
                        let nd = if d > remove { d - 1 } else { d };
                        labels.insert(nd, names.clone());
                    }
                    let mut out = ArraySpec::new(dims, spec.dtype);
                    out.labels = labels;
                    Ok(out)
                },
            ),
        )
    }

    fn run(&self, comm: &Communicator, hub: &Arc<StreamHub>) -> ComponentResult {
        run_transform(
            TransformSpec {
                label: "dim-reduce",
                input_stream: &self.input.stream,
                reader_group: &self.reader_group,
                output_stream: &self.output.stream,
                writer_options: self.writer_options,
            },
            comm,
            hub,
            |reader, comm| {
                let meta = reader
                    .meta(&self.input.array)
                    .ok_or_else(|| DataError::Container {
                        detail: format!("no array {:?} in stream", self.input.array),
                    })?
                    .clone();
                let (global_out_shape, grow_out) =
                    reduced_shape(&meta.shape, self.remove, self.grow)?;

                // Partition along the removed dimension: each rank's output
                // then occupies a contiguous range of the grown dimension.
                let g = meta.shape.size(self.grow);
                let region = slab_partition(&meta.shape, self.remove, comm.size(), comm.rank());
                let (off, count) = (region.offset()[self.remove], region.count()[self.remove]);
                let var = reader.get(&self.input.array, &region)?;
                let bytes_in = var.byte_len() as u64;

                let kernel_start = Instant::now();
                let mut local = dim_reduce(&var, self.remove, self.grow)?;
                local.name = self.output.array.clone();
                let compute = kernel_start.elapsed();

                let mut out_meta = VariableMeta::new(
                    self.output.array.clone(),
                    global_out_shape.clone(),
                    meta.dtype,
                );
                // Global labels for surviving dims, from the global header.
                for (&d, names) in &meta.labels {
                    if d == self.remove || d == self.grow {
                        continue;
                    }
                    let nd = if d > self.remove { d - 1 } else { d };
                    out_meta.labels.insert(nd, names.clone());
                }
                out_meta.attrs = meta.attrs.clone();

                let mut out_offset = vec![0; global_out_shape.ndims()];
                let mut out_counts = global_out_shape.sizes();
                out_offset[grow_out] = off * g;
                out_counts[grow_out] = count * g;
                let chunk = Chunk::new(out_meta, Region::new(out_offset, out_counts), local.data)?;
                Ok(StepOutput {
                    chunk: Some(chunk),
                    bytes_in,
                    compute,
                })
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var3d() -> Variable {
        // 2 x 3 x 4, element = 100a + 10b + c.
        let mut data = Vec::new();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    data.push((100 * a + 10 * b + c) as f64);
                }
            }
        }
        Variable::new(
            "t",
            Shape::of(&[("a", 2), ("b", 3), ("c", 4)]),
            Buffer::from(data),
        )
        .unwrap()
    }

    #[test]
    fn reduced_shape_drops_and_grows() {
        let (s, grow_out) = reduced_shape(&var3d().shape, 0, 1).unwrap();
        assert_eq!(s.sizes(), vec![6, 4]);
        assert_eq!(grow_out, 0);
        assert_eq!(s.dim_name(0), "a*b");

        let (s, grow_out) = reduced_shape(&var3d().shape, 2, 0).unwrap();
        assert_eq!(s.sizes(), vec![8, 3]);
        assert_eq!(grow_out, 0);
        assert!(reduced_shape(&var3d().shape, 1, 1).is_err());
        assert!(reduced_shape(&var3d().shape, 3, 0).is_err());
    }

    #[test]
    fn fast_path_is_identity_layout() {
        // remove=0 grows into dim 1 (adjacent): memory order is unchanged.
        let v = var3d();
        let out = dim_reduce(&v, 0, 1).unwrap();
        assert_eq!(out.shape.sizes(), vec![6, 4]);
        assert_eq!(out.data, v.data);
        // Element check: (a=1, b=2, c=3) -> grown index 1*3+2 = 5.
        assert_eq!(out.get(&[5, 3]), 123.0);
    }

    #[test]
    fn general_path_permutes_correctly() {
        // remove=2 (the last dim) into grow=0: new index over dim 0 is
        // c*2 + a; output shape (8, 3).
        let v = var3d();
        let out = dim_reduce(&v, 2, 0).unwrap();
        assert_eq!(out.shape.sizes(), vec![8, 3]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    let expect = (100 * a + 10 * b + c) as f64;
                    assert_eq!(out.get(&[c * 2 + a, b]), expect, "a={a} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn remove_after_grow_permutes() {
        // remove=1 into grow=0: new dim-0 index = b*2 + a, shape (6, 4).
        let v = var3d();
        let out = dim_reduce(&v, 1, 0).unwrap();
        assert_eq!(out.shape.sizes(), vec![6, 4]);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    let expect = (100 * a + 10 * b + c) as f64;
                    assert_eq!(out.get(&[b * 2 + a, c]), expect);
                }
            }
        }
    }

    #[test]
    fn reduction_is_a_permutation() {
        let v = var3d();
        for (remove, grow) in [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)] {
            let out = dim_reduce(&v, remove, grow).unwrap();
            assert_eq!(out.data.len(), v.data.len(), "size preserved");
            let mut a = v.data.to_f64_vec();
            let mut b = out.data.to_f64_vec();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            assert_eq!(a, b, "multiset preserved for ({remove},{grow})");
        }
    }

    #[test]
    fn gtcp_two_stage_flattening() {
        // The paper's GTCP flow: [T, G, 1] --(remove 2, grow 1)--> [T, G]
        // --(remove 0, grow 1)--> [T*G], ending in slice-major order.
        let mut data = Vec::new();
        for t in 0..3 {
            for g in 0..4 {
                data.push((10 * t + g) as f64);
            }
        }
        let v = Variable::new(
            "p",
            Shape::of(&[("toroidal", 3), ("grid", 4), ("prop", 1)]),
            Buffer::from(data.clone()),
        )
        .unwrap();
        let stage1 = dim_reduce(&v, 2, 1).unwrap();
        assert_eq!(stage1.shape.sizes(), vec![3, 4]);
        let stage2 = dim_reduce(&stage1, 0, 1).unwrap();
        assert_eq!(stage2.shape.sizes(), vec![12]);
        assert_eq!(stage2.data.to_f64_vec(), data);
    }

    #[test]
    fn labels_survive_on_untouched_dims() {
        let v = var3d()
            .with_labels(1, &["p", "q", "r"])
            .unwrap()
            .with_labels(2, &["w", "x", "y", "z"])
            .unwrap();
        // Remove dim 2 into dim 0: dim-1 labels survive at index 1 after
        // the removal shift (dim 1 < remove 2 keeps its index... the
        // removed dim is 2, so dim 1 stays dim 1); dim-2 labels vanish.
        let out = dim_reduce(&v, 2, 0).unwrap();
        assert_eq!(out.header(1).unwrap().len(), 3);
        assert!(out.header(0).is_none());

        // Remove dim 0 into dim 2: dim-1 labels shift to dim 0.
        let out = dim_reduce(&v, 0, 2).unwrap();
        assert_eq!(
            out.header(0).unwrap(),
            &["p".to_string(), "q".into(), "r".into()]
        );
    }

    #[test]
    fn empty_input_round_trips() {
        let v = Variable::new("e", Shape::of(&[("a", 0), ("b", 3)]), Buffer::F64(vec![])).unwrap();
        let out = dim_reduce(&v, 0, 1).unwrap();
        assert_eq!(out.shape.sizes(), vec![0]);
        assert!(out.data.is_empty());
    }
}
