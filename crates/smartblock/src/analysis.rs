//! Static dataflow analysis over assembled workflows.
//!
//! The paper's components discover shapes, labels and types from the
//! stream *at run time*; a mis-wired workflow therefore fails minutes into
//! a batch allocation instead of seconds after submission. This module
//! closes that gap: every [`Component`](crate::Component) can declare a
//! [`Signature`] — which `(stream, array)` pairs it reads, how it
//! partitions them, and a *transfer function* mapping input
//! [`ArraySpec`]s to output specs. [`Workflow::validate`]
//! (crate::Workflow::validate) builds the component/stream graph,
//! topologically sorts it (a subscription cycle is a guaranteed deadlock
//! under blocking connects), propagates specs from source declarations,
//! and reports every contract violation as a typed [`AnalysisIssue`]
//! *before* any rank is launched.
//!
//! The analysis is necessarily partial: ad-hoc closure components and
//! file replays are opaque (their streams carry [`StreamSpec::Opaque`]),
//! and dimensions whose extents are data-dependent are
//! [`Extent::Dynamic`]. Opaque or dynamic facts silence the checks that
//! need them — the analyzer never guesses, so a clean report on a fully
//! declared workflow is meaningful and a clean report on an opaque one is
//! merely "nothing provably wrong".

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use sb_data::{DType, Shape};

use crate::component::Component;
use crate::runtime::WiringIssue;

/// A statically known or data-dependent dimension length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extent {
    /// The extent is fixed by configuration (e.g. a simulation grid size).
    Fixed(usize),
    /// The extent depends on the data (e.g. atoms surviving a threshold).
    Dynamic,
}

impl Extent {
    /// The product of two extents; dynamic absorbs everything.
    pub fn times(self, other: Extent) -> Extent {
        match (self, other) {
            (Extent::Fixed(a), Extent::Fixed(b)) => Extent::Fixed(a * b),
            _ => Extent::Dynamic,
        }
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Extent::Fixed(n) => write!(f, "{n}"),
            Extent::Dynamic => write!(f, "?"),
        }
    }
}

/// One dimension of an [`ArraySpec`]: a name and an extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimSpec {
    /// Dimension name (mirrors `sb_data::Dim`).
    pub name: String,
    /// Statically known or dynamic length.
    pub extent: Extent,
}

impl DimSpec {
    /// A dimension with a configuration-fixed extent.
    pub fn fixed(name: impl Into<String>, extent: usize) -> DimSpec {
        DimSpec {
            name: name.into(),
            extent: Extent::Fixed(extent),
        }
    }

    /// A dimension whose extent only the data determines.
    pub fn dynamic(name: impl Into<String>) -> DimSpec {
        DimSpec {
            name: name.into(),
            extent: Extent::Dynamic,
        }
    }
}

impl fmt::Display for DimSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.extent)
    }
}

/// The static description of one array: dimensions, element type and
/// per-dimension quantity labels — the analysis-time mirror of
/// `sb_data::VariableMeta`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpec {
    /// Dimensions, outermost first.
    pub dims: Vec<DimSpec>,
    /// Element type.
    pub dtype: DType,
    /// Per-dimension labels (dimension index → names along it).
    pub labels: BTreeMap<usize, Vec<String>>,
}

impl ArraySpec {
    /// A spec with the given dimensions and no labels.
    pub fn new(dims: Vec<DimSpec>, dtype: DType) -> ArraySpec {
        ArraySpec {
            dims,
            dtype,
            labels: BTreeMap::new(),
        }
    }

    /// A fully fixed spec copied from a concrete shape.
    pub fn from_shape(shape: &Shape, dtype: DType) -> ArraySpec {
        ArraySpec::new(
            shape
                .dims()
                .iter()
                .map(|d| DimSpec::fixed(d.name.clone(), d.size))
                .collect(),
            dtype,
        )
    }

    /// Attaches labels along `dim` (builder style).
    pub fn with_dim_labels<S: Into<String>>(
        mut self,
        dim: usize,
        labels: impl IntoIterator<Item = S>,
    ) -> ArraySpec {
        self.labels
            .insert(dim, labels.into_iter().map(Into::into).collect());
        self
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Errors with [`SpecError::AxisOutOfBounds`] unless `dim` exists.
    pub fn check_dim(&self, dim: usize) -> Result<(), SpecError> {
        if dim < self.dims.len() {
            Ok(())
        } else {
            Err(SpecError::AxisOutOfBounds {
                axis: dim,
                ndims: self.dims.len(),
            })
        }
    }

    /// Total element count, if every extent is fixed.
    pub fn total_elements(&self) -> Option<usize> {
        self.dims.iter().try_fold(1usize, |acc, d| match d.extent {
            Extent::Fixed(n) => Some(acc * n),
            Extent::Dynamic => None,
        })
    }
}

impl fmt::Display for ArraySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "] {}", self.dtype.name())
    }
}

/// What the analysis knows about one stream's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamSpec {
    /// Nothing is declared (closure components, file replays, multi-writer
    /// streams): downstream checks that need facts stay silent.
    Opaque,
    /// The full array map the writer declares (array name → spec).
    Known(BTreeMap<String, ArraySpec>),
}

impl StreamSpec {
    /// A known stream carrying exactly one array.
    pub fn known_one(array: impl Into<String>, spec: ArraySpec) -> StreamSpec {
        let mut map = BTreeMap::new();
        map.insert(array.into(), spec);
        StreamSpec::Known(map)
    }

    /// Looks up `name`: `Ok(None)` on an opaque stream, an
    /// [`SpecError::UnknownArray`] when the stream is known but lacks it.
    pub fn array(&self, name: &str) -> Result<Option<&ArraySpec>, SpecError> {
        match self {
            StreamSpec::Opaque => Ok(None),
            StreamSpec::Known(map) => match map.get(name) {
                Some(spec) => Ok(Some(spec)),
                None => Err(SpecError::UnknownArray {
                    array: name.to_string(),
                    available: map.keys().cloned().collect(),
                }),
            },
        }
    }
}

/// A contract violation a transfer function can detect statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The stream is declared but does not carry the requested array.
    UnknownArray {
        /// The missing array name.
        array: String,
        /// Arrays the stream does carry.
        available: Vec<String>,
    },
    /// A label (quantity name) is not present along the dimension.
    UnknownLabel {
        /// The labelled dimension.
        dim: usize,
        /// The missing label.
        label: String,
        /// Labels the dimension does carry.
        available: Vec<String>,
    },
    /// A dimension index exceeds the array's rank.
    AxisOutOfBounds {
        /// The out-of-range axis.
        axis: usize,
        /// The array's rank.
        ndims: usize,
    },
    /// The array's rank does not match the component's contract.
    RankMismatch {
        /// Rank the component requires.
        expected: usize,
        /// Rank the array has.
        got: usize,
    },
    /// Two inputs that must agree element-wise provably disagree.
    ShapeMismatch {
        /// Rendered left spec.
        left: String,
        /// Rendered right spec.
        right: String,
    },
    /// An axis list is malformed (bad permutation, self-referential
    /// dim-reduce, ...).
    InvalidAxes {
        /// What is wrong with it.
        detail: String,
    },
    /// More histogram bins than the input can ever have elements: most
    /// bins are guaranteed empty.
    DegenerateBins {
        /// Requested bin count.
        bins: usize,
        /// Statically known element count.
        elements: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownArray { array, available } => {
                write!(
                    f,
                    "array {array:?} is not produced on this stream (available: {available:?})"
                )
            }
            SpecError::UnknownLabel {
                dim,
                label,
                available,
            } => write!(
                f,
                "dimension {dim} carries no quantity named {label:?} (available: {available:?})"
            ),
            SpecError::AxisOutOfBounds { axis, ndims } => {
                write!(f, "axis {axis} is out of bounds for a {ndims}-d array")
            }
            SpecError::RankMismatch { expected, got } => {
                write!(f, "expected a {expected}-d array, got {got}-d")
            }
            SpecError::ShapeMismatch { left, right } => {
                write!(f, "input shapes disagree: {left} vs {right}")
            }
            SpecError::InvalidAxes { detail } => write!(f, "{detail}"),
            SpecError::DegenerateBins { bins, elements } => write!(
                f,
                "{bins} bins over at most {elements} elements leaves most bins empty"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// How a component partitions one input array among its ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionRule {
    /// Slab decomposition along a fixed dimension.
    Along(usize),
    /// The first dimension that is *not* the given one (the rule Select
    /// and Reduce use so the operated-on dimension stays whole per rank).
    FirstExcept(usize),
}

impl PartitionRule {
    /// The concrete dimension for an array of rank `ndims`, if any.
    pub fn resolve(&self, ndims: usize) -> Option<usize> {
        match *self {
            PartitionRule::Along(d) => (d < ndims).then_some(d),
            PartitionRule::FirstExcept(x) => (0..ndims).find(|&d| d != x),
        }
    }
}

/// One `(stream, array)` pair a component reads, with its partition rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadSpec {
    /// Stream the array arrives on.
    pub stream: String,
    /// Array name within the stream.
    pub array: String,
    /// How the array is split among the component's ranks.
    pub partition: PartitionRule,
}

impl ReadSpec {
    /// Builds a read declaration.
    pub fn new(
        stream: impl Into<String>,
        array: impl Into<String>,
        partition: PartitionRule,
    ) -> ReadSpec {
        ReadSpec {
            stream: stream.into(),
            array: array.into(),
            partition,
        }
    }
}

/// Maps input stream specs (parallel to
/// [`Component::input_streams`](crate::Component::input_streams)) to
/// output stream specs (parallel to
/// [`Component::output_streams`](crate::Component::output_streams)).
pub type TransferFn =
    Box<dyn Fn(&[StreamSpec]) -> Result<Vec<StreamSpec>, SpecError> + Send + Sync>;

/// A component's static contract: what it reads and how specs flow
/// through it.
pub struct Signature {
    /// Declared input reads (used for over-decomposition checks).
    pub reads: Vec<ReadSpec>,
    /// Spec transfer function; `None` means the component is opaque and
    /// its outputs propagate as [`StreamSpec::Opaque`].
    pub transfer: Option<TransferFn>,
}

impl Signature {
    /// The default signature: nothing declared, outputs opaque.
    pub fn opaque() -> Signature {
        Signature {
            reads: Vec::new(),
            transfer: None,
        }
    }

    /// A signature from reads and a transfer closure.
    pub fn new<F>(reads: Vec<ReadSpec>, transfer: F) -> Signature
    where
        F: Fn(&[StreamSpec]) -> Result<Vec<StreamSpec>, SpecError> + Send + Sync + 'static,
    {
        Signature {
            reads,
            transfer: Some(Box::new(transfer)),
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature")
            .field("reads", &self.reads)
            .field("transfer", &self.transfer.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// A transfer function for the common one-input/one-output transform:
/// looks up `input_array` on the first input stream, applies `f` to its
/// spec, and publishes the result as `output_array`. Opaque inputs
/// propagate as opaque outputs.
pub fn unary_transfer<F>(input_array: String, output_array: String, f: F) -> TransferFn
where
    F: Fn(&ArraySpec) -> Result<ArraySpec, SpecError> + Send + Sync + 'static,
{
    Box::new(move |ins| match ins.first() {
        Some(stream) => match stream.array(&input_array)? {
            Some(spec) => Ok(vec![StreamSpec::known_one(output_array.clone(), f(spec)?)]),
            None => Ok(vec![StreamSpec::Opaque]),
        },
        None => Ok(vec![StreamSpec::Opaque]),
    })
}

/// How bad an [`AnalysisIssue`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable (an unread stream, interleaved step
    /// accounting, mostly-empty histogram bins).
    Warning,
    /// The workflow provably deadlocks or a component provably panics.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A problem found by static analysis ([`crate::Workflow::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisIssue {
    /// A stream-level wiring problem (dangling reader/writer, contested
    /// stream or reader group).
    Wiring(WiringIssue),
    /// Components whose subscriptions form a cycle: under blocking
    /// connects every member waits for another's first step, forever.
    Cycle {
        /// Labels of the components on the cycle, in launch order.
        components: Vec<String>,
    },
    /// A component's declared contract provably fails on its input.
    Contract {
        /// The violating component's label.
        component: String,
        /// Its input stream(s).
        stream: String,
        /// What the transfer function rejected.
        error: SpecError,
    },
    /// More ranks than the partitioned dimension has slices: the surplus
    /// ranks receive empty partitions every step.
    OverDecomposed {
        /// The over-provisioned component's label.
        component: String,
        /// The stream it reads.
        stream: String,
        /// The array it partitions.
        array: String,
        /// The partitioned dimension's name.
        dim: String,
        /// That dimension's fixed extent.
        extent: usize,
        /// The component's rank count.
        nranks: usize,
    },
}

impl AnalysisIssue {
    /// Whether the issue is fatal ([`Workflow::run`](crate::Workflow::run)
    /// refuses) or advisory.
    pub fn severity(&self) -> Severity {
        match self {
            AnalysisIssue::Wiring(WiringIssue::NoReader { .. })
            | AnalysisIssue::Wiring(WiringIssue::DuplicateSubscription { .. }) => Severity::Warning,
            AnalysisIssue::Contract {
                error: SpecError::DegenerateBins { .. },
                ..
            } => Severity::Warning,
            AnalysisIssue::Wiring(_)
            | AnalysisIssue::Cycle { .. }
            | AnalysisIssue::Contract { .. }
            | AnalysisIssue::OverDecomposed { .. } => Severity::Error,
        }
    }
}

impl fmt::Display for AnalysisIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisIssue::Wiring(w) => w.fmt(f),
            AnalysisIssue::Cycle { components } => write!(
                f,
                "components {components:?} subscribe to each other in a cycle; every member \
                 blocks on another's first step, so the workflow deadlocks"
            ),
            AnalysisIssue::Contract {
                component,
                stream,
                error,
            } => write!(f, "component {component:?} (input {stream:?}): {error}"),
            AnalysisIssue::OverDecomposed {
                component,
                stream,
                array,
                dim,
                extent,
                nranks,
            } => write!(
                f,
                "component {component:?} runs {nranks} ranks but partitions {stream}:{array} \
                 along dimension {dim:?} of extent {extent}; at most {extent} ranks can \
                 receive data"
            ),
        }
    }
}

/// One workflow entry as the analyzer sees it.
pub(crate) struct EntryView<'a> {
    pub(crate) label: &'a str,
    pub(crate) nranks: usize,
    pub(crate) component: &'a dyn Component,
}

/// Runs the full static analysis: wiring checks, cycle detection, spec
/// propagation in topological order, and per-read over-decomposition
/// checks. The driver behind [`crate::Workflow::validate`].
pub(crate) fn analyze(entries: &[EntryView<'_>]) -> Vec<AnalysisIssue> {
    let mut issues = Vec::new();

    // --- Stream-level wiring --------------------------------------------
    let mut writers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut subscriptions: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (i, e) in entries.iter().enumerate() {
        for s in e.component.output_streams() {
            writers.entry(s).or_default().push(i);
        }
        for s in e.component.input_streams() {
            readers.entry(s).or_default().push(i);
        }
        for sub in e.component.input_subscriptions() {
            subscriptions
                .entry(sub)
                .or_default()
                .push(e.label.to_string());
        }
    }
    let labels_of = |ids: &[usize]| -> Vec<String> {
        ids.iter().map(|&i| entries[i].label.to_string()).collect()
    };
    for (stream, consumers) in &readers {
        if !writers.contains_key(stream) {
            issues.push(AnalysisIssue::Wiring(WiringIssue::NoWriter {
                stream: stream.clone(),
                readers: labels_of(consumers),
            }));
        }
    }
    for (stream, producers) in &writers {
        if !readers.contains_key(stream) {
            issues.push(AnalysisIssue::Wiring(WiringIssue::NoReader {
                stream: stream.clone(),
                writers: labels_of(producers),
            }));
        }
        if producers.len() > 1 {
            issues.push(AnalysisIssue::Wiring(WiringIssue::MultipleWriters {
                stream: stream.clone(),
                writers: labels_of(producers),
            }));
        }
    }
    for ((stream, group), labels) in &subscriptions {
        if labels.len() > 1 {
            issues.push(AnalysisIssue::Wiring(WiringIssue::DuplicateSubscription {
                stream: stream.clone(),
                group: group.clone(),
                readers: labels.clone(),
            }));
        }
    }

    // --- Component graph and cycle detection -----------------------------
    // Edge writer -> reader for every stream both ends declare.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (stream, producers) in &writers {
        if let Some(consumers) = readers.get(stream) {
            for &w in producers {
                for &r in consumers {
                    edges.insert((w, r));
                }
            }
        }
    }
    let n = entries.len();
    let topo_order = kahn_order(n, &edges);
    if topo_order.len() < n {
        let in_order: BTreeSet<usize> = topo_order.iter().copied().collect();
        let forward_stuck: BTreeSet<usize> = (0..n).filter(|i| !in_order.contains(i)).collect();
        // Nodes merely downstream of a cycle are also stuck forward; the
        // ones stuck in *both* directions are the cycle itself.
        let reversed: BTreeSet<(usize, usize)> = edges.iter().map(|&(a, b)| (b, a)).collect();
        let backward_done: BTreeSet<usize> = kahn_order(n, &reversed).into_iter().collect();
        let on_cycle: Vec<String> = (0..n)
            .filter(|i| forward_stuck.contains(i) && !backward_done.contains(i))
            .map(|i| entries[i].label.to_string())
            .collect();
        issues.push(AnalysisIssue::Cycle {
            components: on_cycle,
        });
    }

    // --- Spec propagation in topological order ---------------------------
    // Streams with several writers carry no single declaration; keep them
    // opaque rather than trusting either writer.
    let contested: BTreeSet<&String> = writers
        .iter()
        .filter(|(_, p)| p.len() > 1)
        .map(|(s, _)| s)
        .collect();
    let mut specs: BTreeMap<String, StreamSpec> = BTreeMap::new();
    for &idx in &topo_order {
        let e = &entries[idx];
        let sig = e.component.signature();

        // Over-decomposition: more ranks than the partitioned dimension
        // has slices. Extent-1 dimensions are exempt — they are inherently
        // serial (the paper's GTCP pipeline runs multi-rank Dim-Reduce on
        // a selected, extent-1 property dimension) and empty slab parts
        // are supported at run time.
        for read in &sig.reads {
            let Some(StreamSpec::Known(arrays)) = specs.get(&read.stream) else {
                continue;
            };
            let Some(spec) = arrays.get(&read.array) else {
                continue;
            };
            let Some(d) = read.partition.resolve(spec.ndims()) else {
                continue;
            };
            if let Extent::Fixed(extent) = spec.dims[d].extent {
                if extent > 1 && e.nranks > extent {
                    issues.push(AnalysisIssue::OverDecomposed {
                        component: e.label.to_string(),
                        stream: read.stream.clone(),
                        array: read.array.clone(),
                        dim: spec.dims[d].name.clone(),
                        extent,
                        nranks: e.nranks,
                    });
                }
            }
        }

        let input_streams = e.component.input_streams();
        let ins: Vec<StreamSpec> = input_streams
            .iter()
            .map(|s| specs.get(s).cloned().unwrap_or(StreamSpec::Opaque))
            .collect();
        let outs = e.component.output_streams();
        let out_specs = match &sig.transfer {
            None => vec![StreamSpec::Opaque; outs.len()],
            Some(transfer) => match transfer(&ins) {
                Ok(v) if v.len() == outs.len() => v,
                Ok(_) => vec![StreamSpec::Opaque; outs.len()],
                Err(error) => {
                    issues.push(AnalysisIssue::Contract {
                        component: e.label.to_string(),
                        stream: input_streams.join(", "),
                        error,
                    });
                    vec![StreamSpec::Opaque; outs.len()]
                }
            },
        };
        for (stream, spec) in outs.iter().zip(out_specs) {
            if contested.contains(stream) {
                continue;
            }
            specs.insert(stream.clone(), spec);
        }
    }

    issues
}

/// Kahn's algorithm over `n` nodes; returns the topological order of every
/// node reachable without entering a cycle, lowest index first among ready
/// nodes (i.e. launch order is preserved where the graph allows).
fn kahn_order(n: usize, edges: &BTreeSet<(usize, usize)>) -> Vec<usize> {
    let mut indegree = vec![0usize; n];
    for &(_, b) in edges {
        indegree[b] += 1;
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        order.push(i);
        for &(a, b) in edges.range((i, 0)..(i + 1, 0)) {
            debug_assert_eq!(a, i);
            indegree[b] -= 1;
            if indegree[b] == 0 {
                ready.insert(b);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_multiply_with_dynamic_absorbing() {
        assert_eq!(Extent::Fixed(3).times(Extent::Fixed(4)), Extent::Fixed(12));
        assert_eq!(Extent::Fixed(3).times(Extent::Dynamic), Extent::Dynamic);
        assert_eq!(Extent::Dynamic.times(Extent::Fixed(4)), Extent::Dynamic);
    }

    #[test]
    fn array_spec_renders_readably() {
        let spec = ArraySpec::new(
            vec![DimSpec::dynamic("particles"), DimSpec::fixed("props", 5)],
            DType::F64,
        );
        assert_eq!(spec.to_string(), "[particles=?, props=5] f64");
        assert_eq!(spec.total_elements(), None);
        let fixed = ArraySpec::new(vec![DimSpec::fixed("n", 6)], DType::U64);
        assert_eq!(fixed.total_elements(), Some(6));
    }

    #[test]
    fn stream_spec_lookup_distinguishes_opaque_from_missing() {
        assert_eq!(StreamSpec::Opaque.array("x"), Ok(None));
        let known = StreamSpec::known_one("x", ArraySpec::new(vec![], DType::F64));
        assert!(known.array("x").unwrap().is_some());
        assert!(matches!(
            known.array("y"),
            Err(SpecError::UnknownArray { array, available })
                if array == "y" && available == vec!["x".to_string()]
        ));
    }

    #[test]
    fn partition_rules_resolve_against_rank() {
        assert_eq!(PartitionRule::Along(1).resolve(3), Some(1));
        assert_eq!(PartitionRule::Along(3).resolve(3), None);
        assert_eq!(PartitionRule::FirstExcept(0).resolve(3), Some(1));
        assert_eq!(PartitionRule::FirstExcept(2).resolve(3), Some(0));
        assert_eq!(PartitionRule::FirstExcept(0).resolve(1), None);
    }

    #[test]
    fn kahn_handles_chains_and_cycles() {
        // 0 -> 1 -> 2, plus 3 <-> 4 cycling.
        let edges: BTreeSet<(usize, usize)> =
            [(0, 1), (1, 2), (3, 4), (4, 3)].into_iter().collect();
        let order = kahn_order(5, &edges);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn severity_split_matches_the_documented_model() {
        let warning = AnalysisIssue::Wiring(WiringIssue::NoReader {
            stream: "s".into(),
            writers: vec![],
        });
        assert_eq!(warning.severity(), Severity::Warning);
        let error = AnalysisIssue::Cycle { components: vec![] };
        assert_eq!(error.severity(), Severity::Error);
        let degenerate = AnalysisIssue::Contract {
            component: "h".into(),
            stream: "s".into(),
            error: SpecError::DegenerateBins {
                bins: 100,
                elements: 5,
            },
        };
        assert_eq!(degenerate.severity(), Severity::Warning);
    }
}
