//! # smartblock — generic, reusable in situ workflow components
//!
//! This crate is the paper's contribution: a small set of generic
//! components — [`Select`], [`Magnitude`], [`DimReduce`], [`Histogram`] —
//! that can be composed, *without recompilation*, into complete in situ
//! scientific workflows. Every component is "an MPI executable" (here: a
//! thread-rank group over `sb-comm`) that
//!
//! 1. discovers the dimensions, sizes, names and quantity labels of its
//!    input from the self-describing stream (no hard-coded formats),
//! 2. partitions the incoming global array evenly among its ranks,
//! 3. applies one small transformation per timestep, and
//! 4. publishes its output under user-chosen stream/array names so that any
//!    downstream component can consume it.
//!
//! Workflows are assembled exactly as in the paper: a launch script names
//! each component, its process count, and its input/output stream and array
//! names ([`launch`] parses the `aprun`-style grammar of Figs. 1–3 and 8);
//! the [`runtime`] launches every component of the workflow simultaneously
//! and FlexPath-style blocking connects them in any order.
//!
//! Beyond the paper's four components, the crate includes the §V-C
//! all-in-one baseline ([`AllInOne`]) used to measure the cost of
//! componentization, and the §VI future-work components: [`Fork`] (DAG
//! fan-out), [`AllPairs`] (a data-*increasing* analytic), [`Stats`], and
//! [`FileWrite`]/[`FileRead`] (storage-decoupled workflows).
//!
//! ## Quick example
//!
//! ```
//! use smartblock::prelude::*;
//! use sb_data::{Buffer, Shape, Variable};
//!
//! // A tiny source that emits particles x {ID, vx, vy, vz} then a pipeline
//! // select -> magnitude -> histogram, wired purely by stream names.
//! let mut wf = Workflow::new();
//! wf.add_source("source", 1, "dump.fp", |step| {
//!     (step < 3).then(|| {
//!         let data: Vec<f64> = (0..32).map(|i| (i + step as usize) as f64).collect();
//!         Variable::new("atoms", Shape::of(&[("particles", 8), ("props", 4)]), Buffer::from(data))
//!             .unwrap()
//!             .with_labels(1, &["ID", "vx", "vy", "vz"])
//!             .unwrap()
//!     })
//! });
//! wf.add(2, Select::new(("dump.fp", "atoms"), 1, ["vx", "vy", "vz"], ("sel.fp", "vel")));
//! wf.add(2, Magnitude::new(("sel.fp", "vel"), ("mag.fp", "speed")));
//! wf.add(1, Histogram::new(("mag.fp", "speed"), 8).with_output_stream("hist.fp"));
//! wf.add_sink("check", 1, "hist.fp", |step, vars| {
//!     let counts = &vars["counts"];
//!     assert_eq!(counts.data.to_f64_vec().iter().sum::<f64>(), 8.0, "step {step}");
//! });
//! let report = wf.run_with(RunOptions::default()).unwrap();
//! assert_eq!(report.component("histogram").unwrap().stats.steps, 3);
//! ```
//!
//! ## Failure semantics
//!
//! [`Component::run`] is fallible: a stalled peer or malformed input is a
//! typed [`ComponentError`], never a panic-on-timeout. The workflow
//! supervisor behind [`Workflow::run_with`] applies a per-component
//! [`FaultPolicy`] — abort the workflow, restart with backoff, or degrade
//! by closing the component's outputs so downstream sees a clean
//! end-of-stream. The [`sb_stream::faults`] module injects deterministic,
//! seeded faults for chaos testing.

pub mod all_in_one;
pub mod all_pairs;
pub mod analysis;
pub mod combine;
pub mod component;
pub mod dim_reduce;
pub mod distributed;
pub mod error;
pub mod file_io;
pub mod fork;
pub mod histogram;
pub mod launch;
pub mod magnitude;
pub mod metrics;
pub mod reduce;
pub mod runtime;
pub mod select;
pub mod spec;
pub mod stats;
pub mod supervisor;
pub mod temporal;
pub mod threshold;
pub mod transpose;
pub mod triggers;
pub mod workflows;

pub use all_in_one::AllInOne;
pub use all_pairs::AllPairs;
pub use analysis::{
    lint_script, lint_spec, AnalysisIssue, ArraySpec, Diagnostic, DimSpec, Extent, Level, Lint,
    LintConfig, PartitionRule, ReadSpec, ScriptLint, Severity, Signature, SpecError, StepContract,
    StreamSpec, LINTS,
};
pub use combine::{BinaryOp, Combine};
pub use component::{Component, StepFault, StreamArray};
pub use dim_reduce::DimReduce;
pub use distributed::{
    apply_policy_directives, load_workflow_source, partial_workflow, plan_script, run_components,
    LoadedScript, PlannedComponent, SourceKind,
};
pub use error::{ComponentError, ComponentResult, StepError, StepResult, WorkflowError};
pub use file_io::{FileRead, FileWrite};
pub use fork::Fork;
pub use histogram::{Histogram, HistogramResult};
pub use launch::{
    parse_script, parse_script_with_directives, LaunchEntry, Program, ScriptDirectives,
};
pub use magnitude::Magnitude;
pub use metrics::{ComponentOutcome, ComponentReport, ComponentStats, WorkflowReport};
pub use reduce::{Reduce, ReduceOp};
pub use runtime::{WiringIssue, Workflow};
pub use select::Select;
pub use spec::{ParsedSpec, SpecIssue, SpecLoadError, SpecOptions, SpecParseError, WorkflowSpec};
pub use stats::Stats;
pub use supervisor::{FailureAction, FaultPolicy, RunOptions, Validation};
pub use temporal::TemporalMean;
pub use threshold::{Predicate, Threshold};
pub use transpose::Transpose;
pub use triggers::{ControlAction, Trigger, TriggerAction, TriggerFire, TriggerOp};

/// Trace types re-exported from the stream layer: workflows configure
/// tracing through [`RunOptions`] and consume the drained timeline off the
/// [`WorkflowReport`], so the types live at the same level.
pub use sb_stream::{EventKind, PhaseHistogram, Timeline, TraceConfig, TraceEvent};

/// Everything needed to assemble, supervise, and run a workflow: the
/// workflow and component surfaces, the kernel components, the run options
/// and fault policies, the error taxonomy, and the stream-transport types
/// workflows touch directly.
pub mod prelude {
    pub use crate::analysis::{AnalysisIssue, Diagnostic, Level, LintConfig, Severity};
    pub use crate::component::{Component, StreamArray};
    pub use crate::runtime::{WiringIssue, Workflow};
    pub use crate::{
        AllInOne, AllPairs, BinaryOp, Combine, DimReduce, FileRead, FileWrite, Fork, Histogram,
        Magnitude, Predicate, Reduce, ReduceOp, Select, Stats, TemporalMean, Threshold, Transpose,
    };
    pub use crate::{
        ComponentError, ComponentOutcome, ComponentReport, ComponentResult, ComponentStats,
        FailureAction, FaultPolicy, HistogramResult, RunOptions, StepError, StepResult, Validation,
        WorkflowError, WorkflowReport,
    };
    pub use crate::{
        ParsedSpec, SpecIssue, SpecLoadError, SpecOptions, SpecParseError, Trigger, TriggerAction,
        TriggerFire, TriggerOp, WorkflowSpec,
    };
    pub use sb_stream::{
        EventKind, FaultKind, FaultPlan, StepStatus, StreamError, StreamHub, Timeline, TraceConfig,
        WriterOptions,
    };
}
