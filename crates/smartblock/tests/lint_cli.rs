//! End-to-end CLI tests of `sb-lint` (exit-code contract, JSON output) and
//! `sb-run`'s pre-launch lint gate (a malformed plan is refused before any
//! broker binds or component spawns).

use std::process::{Command, Output};

use smartblock::analysis::check_report;

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/lint/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn sb_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sb-lint"))
        .args(args)
        .output()
        .expect("run sb-lint")
}

fn sb_run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sb-run"))
        .args(args)
        .output()
        .expect("run sb-run")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn exit_zero_on_a_clean_script() {
    let out = sb_lint(&[&fixture("SB001-neg.sb")]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert!(out.stdout.is_empty(), "{out:?}");
}

#[test]
fn exit_one_on_errors() {
    let out = sb_lint(&[&fixture("SB001-pos.sb")]);
    assert_eq!(code(&out), 1);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("error[SB001]"), "{text}");
    // Diagnostics point at the offending script line.
    assert!(text.contains("SB001-pos.sb:2:"), "{text}");
}

#[test]
fn warnings_exit_zero_unless_denied() {
    let script = fixture("SB002-pos.sb");
    let out = sb_lint(&[&script]);
    assert_eq!(code(&out), 0, "warnings alone must not fail the lint");
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning[SB002]"));

    let out = sb_lint(&["--deny-warnings", &script]);
    assert_eq!(code(&out), 2, "--deny-warnings turns warnings into exit 2");
}

#[test]
fn allow_and_deny_reshape_the_exit_code() {
    let script = fixture("SB002-pos.sb");
    let out = sb_lint(&["--allow", "SB002", &script]);
    assert_eq!(code(&out), 0);
    assert!(out.stdout.is_empty(), "allowed lint must not render");

    let out = sb_lint(&["--deny", "no-reader", &script]);
    assert_eq!(code(&out), 1, "a denied lint is an error");
}

#[test]
fn usage_errors_exit_64() {
    assert_eq!(code(&sb_lint(&[])), 64, "no scripts");
    assert_eq!(code(&sb_lint(&["--bogus"])), 64, "unknown flag");
    let out = sb_lint(&["--allow", "SB999", "x.sb"]);
    assert_eq!(code(&out), 64, "unknown lint ID");
}

#[test]
fn unreadable_input_exits_66() {
    let out = sb_lint(&["/nonexistent/nope.sb"]);
    assert_eq!(code(&out), 66);
}

#[test]
fn json_report_validates_against_the_schema_checker() {
    let out = sb_lint(&["--format", "json", &fixture("SB001-pos.sb")]);
    assert_eq!(code(&out), 1, "format does not change the exit code");
    let json = String::from_utf8(out.stdout).unwrap();
    check_report(&json).unwrap();
    assert!(json.contains("\"id\":\"SB001\""), "{json}");

    // And --check accepts its own output.
    let path = std::env::temp_dir().join("sb_lint_cli_report.json");
    std::fs::write(&path, &json).unwrap();
    let out = sb_lint(&["--check", path.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");

    let out = sb_lint(&["--check", "/nonexistent/nope.json"]);
    assert_eq!(code(&out), 66);
    std::fs::write(&path, "not a report").unwrap();
    let out = sb_lint(&["--check", path.to_str().unwrap()]);
    assert_eq!(code(&out), 65);
}

/// The regression the lint engine exists for: `sb-run` must refuse an
/// invalid partition plan *before* spawning anything — no broker bound, no
/// component started, a stable SBxxx ID on stderr.
#[test]
fn sb_run_refuses_a_malformed_plan_before_launch() {
    let out = sb_run(&[
        "--script",
        &fixture("SB015-pos.sb"),
        "--serve",
        "127.0.0.1:0",
        "--components",
        "gromacs",
    ]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stderr = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(stderr.contains("error[SB015]"), "{stderr}");
    assert!(stderr.contains("refusing to launch"), "{stderr}");
    // The broker announces itself the moment it binds; the gate must fire
    // first, so no announcement and no waiting-for-remotes line.
    assert!(!stderr.contains("serving"), "broker was bound: {stderr}");
    assert!(out.stdout.is_empty(), "a component ran: {out:?}");
}

#[test]
fn sb_run_executes_a_clean_script() {
    let out = sb_run(&["--script", &fixture("SB000-neg.sb")]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("histogram"), "{stdout}");
}
