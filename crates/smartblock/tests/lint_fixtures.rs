//! Fixture-driven coverage of the lint registry: every lint ID has one
//! launch script that provably fires it and one near-identical script that
//! provably does not, plus golden snapshots of both renderings and
//! clean-bill-of-health checks for the paper workflows and the checked-in
//! example scripts.

use smartblock::analysis::{
    lint_script, lint_spec, render_report_json, Level, LintConfig, ScriptLint, LINTS,
};
use smartblock::workflows::{
    gromacs_workflow, gtcp_workflow, lammps_workflow, script_to_workflow, PresetScale,
};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/lint/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Lints the fixture `<stem>.sb` (launch script) or `<stem>.sbw` (workflow
/// spec), whichever is checked in — spec-level lints (SB018–SB020) can
/// only fire from a spec.
fn lint_fixture(stem: &str) -> ScriptLint {
    let dir = format!("{}/tests/fixtures/lint", env!("CARGO_MANIFEST_DIR"));
    let sb = format!("{stem}.sb");
    if std::path::Path::new(&format!("{dir}/{sb}")).exists() {
        lint_script(&sb, &fixture(&sb), &LintConfig::new())
    } else {
        let sbw = format!("{stem}.sbw");
        lint_spec(&sbw, &fixture(&sbw), &LintConfig::new())
    }
}

fn ids_fired(stem: &str) -> Vec<&'static str> {
    lint_fixture(stem)
        .diagnostics
        .iter()
        .map(|d| d.id())
        .collect()
}

/// Every lint has a positive fixture that fires it and a negative fixture
/// that stays silent on it — the registry's behavioral contract.
#[test]
fn every_lint_has_a_firing_and_a_silent_fixture() {
    // Component constructors may panic inside lint_script's catch_unwind.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failures = Vec::new();
    for lint in LINTS {
        let pos = ids_fired(&format!("{}-pos", lint.id));
        if !pos.contains(&lint.id) {
            failures.push(format!(
                "{}-pos did not fire {} (got {pos:?})",
                lint.id, lint.id
            ));
        }
        let neg = ids_fired(&format!("{}-neg", lint.id));
        if neg.contains(&lint.id) {
            failures.push(format!("{}-neg fired {} (got {neg:?})", lint.id, lint.id));
        }
    }
    std::panic::set_hook(hook);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// Positive fixtures carry a line attribution and render at the lint's
/// default level.
#[test]
fn fixture_diagnostics_carry_lines_and_default_levels() {
    for lint in LINTS {
        let stem = format!("{}-pos", lint.id);
        let report = lint_fixture(&stem);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.id() == lint.id)
            .unwrap_or_else(|| panic!("{stem} must fire {}", lint.id));
        assert_eq!(d.level, lint.default_level, "{stem}");
        assert!(
            d.line.is_some(),
            "{stem}: {} has no line attribution",
            lint.id
        );
    }
}

const GOLDEN: &str = "aprun -n 1 magnitude a.fp v b.fp w &\nwait\n";

/// The rustc-style text rendering, byte for byte.
#[test]
fn golden_text_rendering() {
    let report = lint_script("golden.sb", GOLDEN, &LintConfig::new());
    assert_eq!(
        report.render_text(),
        "golden.sb:1: error[SB001]: stream \"a.fp\" is read by [\"magnitude\"] but written by nothing\n\
         golden.sb:1: warning[SB002]: stream \"b.fp\" is written by [\"magnitude\"] but read by nothing\n"
    );
}

/// The smartblock.lint.v1 JSON rendering, byte for byte.
#[test]
fn golden_json_rendering() {
    let report = lint_script("golden.sb", GOLDEN, &LintConfig::new());
    assert_eq!(
        render_report_json(&[report]),
        "{\"schema\":\"smartblock.lint.v1\",\"scripts\":[{\"script\":\"golden.sb\",\"diagnostics\":[\
         {\"id\":\"SB001\",\"name\":\"no-writer\",\"level\":\"error\",\"line\":1,\
         \"message\":\"stream \\\"a.fp\\\" is read by [\\\"magnitude\\\"] but written by nothing\",\
         \"fields\":{\"stream\":\"a.fp\"}},\
         {\"id\":\"SB002\",\"name\":\"no-reader\",\"level\":\"warning\",\"line\":1,\
         \"message\":\"stream \\\"b.fp\\\" is written by [\\\"magnitude\\\"] but read by nothing\",\
         \"fields\":{\"stream\":\"b.fp\"}}],\
         \"errors\":1,\"warnings\":1}],\"errors\":1,\"warnings\":1}\n"
    );
}

/// `--allow`/`--deny` overrides reshape the report.
#[test]
fn config_overrides_filter_and_promote() {
    let mut config = LintConfig::new();
    config.set("SB002", Level::Allow).unwrap();
    let report = lint_script("golden.sb", GOLDEN, &config);
    assert_eq!(report.warnings(), 0, "allowed lint must be filtered out");
    assert_eq!(report.errors(), 1);

    let mut config = LintConfig::new();
    config.set("no-reader", Level::Deny).unwrap();
    let report = lint_script("golden.sb", GOLDEN, &config);
    assert_eq!(report.errors(), 2, "denied warning must count as an error");
}

/// The three paper workflows (Figs. 1-3, 6, 7) lint clean.
#[test]
fn paper_workflows_lint_clean() {
    let scale = PresetScale::default();
    for (label, (wf, _results)) in [
        ("lammps", lammps_workflow(&scale)),
        ("gtcp", gtcp_workflow(&scale)),
        ("gromacs", gromacs_workflow(&scale)),
    ] {
        let diagnostics = wf.lint(&LintConfig::new());
        assert!(diagnostics.is_empty(), "{label}: {diagnostics:?}");
    }
}

/// Every checked-in example launch script parses, converts to a workflow,
/// and lints clean — warnings included (CI runs them under
/// `--deny-warnings --allow prefer-spec`; the legacy scripts keep their
/// inline directives on purpose, as the directive-compatibility fixtures).
#[test]
fn example_scripts_lint_clean() {
    let dir = format!("{}/../../examples/scripts", env!("CARGO_MANIFEST_DIR"));
    let mut config = LintConfig::new();
    config.set("prefer-spec", Level::Allow).unwrap();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{dir}: {e}")) {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("sb") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let report = lint_script(&path.display().to_string(), &text, &config);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
        // Single-process scripts must also assemble (the multi-process one
        // does too: process directives do not affect assembly).
        script_to_workflow(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
    assert!(
        seen >= 4,
        "expected the checked-in example scripts, found {seen}"
    );
}
