//! A minimal, API-compatible stand-in for the `parking_lot` crate, layered
//! over `std::sync`, so the workspace builds without network access.
//!
//! Only the surface the workspace actually uses is provided: [`Mutex`]
//! (non-poisoning `lock()` returning the guard directly), the named
//! [`MutexGuard`] type, and [`Condvar`] with `wait` / `wait_until` /
//! `notify_one` / `notify_all`. Poisoning is swallowed (a panicking holder
//! does not wedge other threads), matching parking_lot semantics closely
//! enough for the deadlock-watchdog tests in `sb-stream`.

use std::ops::{Deref, DerefMut};
use std::time::Instant;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` between condvar waits; it exists so
/// [`Condvar`] can hand the std guard back and forth by value while callers
/// hold the wrapper by `&mut` (parking_lot's signature).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] / [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside wait");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok(pair) => pair,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let c = Condvar::new();
        let mut guard = m.lock();
        let result = c.wait_until(&mut guard, Instant::now() + Duration::from_millis(10));
        assert!(result.timed_out());
        assert!(!*guard);
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let other = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, c) = &*other;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*shared;
        let mut guard = m.lock();
        while !*guard {
            let r = c.wait_until(&mut guard, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out(), "notification should arrive well within 5s");
        }
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let other = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = other.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock still usable after a holder panicked");
    }
}
