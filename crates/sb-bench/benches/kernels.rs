//! Criterion micro-benchmarks of the pure component kernels: the per-step
//! compute cost each SmartBlock component adds to a pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sb_data::{Buffer, Shape, Variable};
use smartblock::all_pairs::pairwise_distances;
use smartblock::dim_reduce::dim_reduce;
use smartblock::histogram::bin_counts;
use smartblock::magnitude::vector_magnitudes;
use smartblock::reduce::{reduce_axis, ReduceOp};
use smartblock::select::select_rows;
use smartblock::threshold::{threshold_filter, Predicate};
use smartblock::transpose::permute_axes;
use std::hint::black_box;

fn particles_variable(n: usize, props: usize) -> Variable {
    let data: Vec<f64> = (0..n * props).map(|i| (i as f64 * 0.37).sin()).collect();
    Variable::new(
        "atoms",
        Shape::of(&[("particles", n), ("props", props)]),
        Buffer::from(data),
    )
    .unwrap()
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_rows");
    for &n in &[1_000usize, 10_000, 100_000] {
        let v = particles_variable(n, 5);
        group.throughput(Throughput::Bytes((n * 3 * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| select_rows(black_box(v), 1, &[2, 3, 4]).unwrap());
        });
    }
    group.finish();
}

fn bench_magnitude(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_magnitudes");
    for &n in &[1_000usize, 10_000, 100_000] {
        let v = particles_variable(n, 3);
        group.throughput(Throughput::Bytes((n * 3 * 8) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| vector_magnitudes(black_box(v)).unwrap());
        });
    }
    group.finish();
}

fn bench_dim_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("dim_reduce");
    // The GTCP shapes: [T, G, 1] fast-ish (remove last into middle) and
    // the fast path [T, G] remove-0-grow-1, plus a genuinely permuting
    // case (remove last into first).
    for &(t, g) in &[(64usize, 256usize), (128, 512)] {
        let cells = t * g;
        let v3 = Variable::new(
            "p",
            Shape::of(&[("t", t), ("g", g), ("q", 1)]),
            Buffer::F64((0..cells).map(|i| i as f64).collect()),
        )
        .unwrap();
        let v2 = Variable::new(
            "p",
            Shape::of(&[("t", t), ("g", g)]),
            Buffer::F64((0..cells).map(|i| i as f64).collect()),
        )
        .unwrap();
        group.throughput(Throughput::Bytes((cells * 8) as u64));
        group.bench_with_input(
            BenchmarkId::new("gtcp_stage1_remove2_grow1", cells),
            &v3,
            |b, v| b.iter(|| dim_reduce(black_box(v), 2, 1).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("fast_path_remove0_grow1", cells),
            &v2,
            |b, v| b.iter(|| dim_reduce(black_box(v), 0, 1).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("permuting_remove1_grow0", cells),
            &v2,
            |b, v| b.iter(|| dim_reduce(black_box(v), 1, 0).unwrap()),
        );
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("bin_counts");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.73).sin()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| bin_counts(black_box(v), -1.0, 1.0, 64));
        });
    }
    group.finish();
}

fn bench_all_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairwise_distances");
    for &n in &[100usize, 400, 1_000] {
        let v = particles_variable(n, 3);
        group.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| pairwise_distances(black_box(v), 0, v.shape.size(0)).unwrap());
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_axis");
    for &(t, g) in &[(64usize, 512usize), (256, 512)] {
        let cells = t * g;
        let v = Variable::new(
            "p",
            Shape::of(&[("t", t), ("g", g)]),
            Buffer::F64((0..cells).map(|i| (i as f64 * 0.1).sin()).collect()),
        )
        .unwrap();
        group.throughput(Throughput::Bytes((cells * 8) as u64));
        group.bench_with_input(BenchmarkId::new("sum_axis1", cells), &v, |b, v| {
            b.iter(|| reduce_axis(black_box(v), 1, ReduceOp::Sum).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("sum_axis0", cells), &v, |b, v| {
            b.iter(|| reduce_axis(black_box(v), 0, ReduceOp::Sum).unwrap());
        });
    }
    group.finish();
}

fn bench_transpose(c: &mut Criterion) {
    let mut group = c.benchmark_group("permute_axes");
    for &n in &[256usize, 512] {
        let v = Variable::new(
            "m",
            Shape::of(&[("r", n), ("c", n)]),
            Buffer::F64((0..n * n).map(|i| i as f64).collect()),
        )
        .unwrap();
        group.throughput(Throughput::Bytes((n * n * 8) as u64));
        group.bench_with_input(BenchmarkId::new("transpose_2d", n), &v, |b, v| {
            b.iter(|| permute_axes(black_box(v), &[1, 0]).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("identity", n), &v, |b, v| {
            b.iter(|| permute_axes(black_box(v), &[0, 1]).unwrap());
        });
    }
    group.finish();
}

fn bench_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_filter");
    for &n in &[100_000usize, 1_000_000] {
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| threshold_filter(black_box(v), Predicate::AbsGreaterThan(0.9), 0));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = kernels;
    config = configured();
    targets = bench_select, bench_magnitude, bench_dim_reduce, bench_histogram, bench_all_pairs,
        bench_reduce, bench_transpose, bench_threshold
}
criterion_main!(kernels);
