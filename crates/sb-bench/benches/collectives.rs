//! Collective-algorithm ablation: the flat shared-slot collectives of
//! `sb-comm` vs. binomial-tree reduce/broadcast over point-to-point
//! messages, at several rank counts and payload sizes.
//!
//! On a few thread-ranks sharing a node the flat rendezvous is hard to
//! beat (one lock, one fold); the tree's O(log n) rounds pay off as ranks
//! and payloads grow — the same trade real MPI implementations navigate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sb_comm::{launch, tree};
use std::hint::black_box;

const ROUNDS: u64 = 10;

fn vec_sum(mut a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    for (x, y) in a.iter_mut().zip(&b) {
        *x += y;
    }
    a
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for &nranks in &[2usize, 4, 8] {
        for &len in &[1_000usize, 100_000] {
            group.throughput(Throughput::Bytes(ROUNDS * (len * 8 * nranks) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("flat_{nranks}ranks"), len),
                &len,
                |b, &len| {
                    b.iter(|| {
                        launch(nranks, |comm| {
                            for _ in 0..ROUNDS {
                                let v = vec![comm.rank() as f64; len];
                                black_box(comm.allreduce(v, vec_sum));
                            }
                        })
                        .unwrap()
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("tree_{nranks}ranks"), len),
                &len,
                |b, &len| {
                    b.iter(|| {
                        launch(nranks, |comm| {
                            for _ in 0..ROUNDS {
                                let v = vec![comm.rank() as f64; len];
                                black_box(tree::tree_allreduce(&comm, v, vec_sum));
                            }
                        })
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = collectives;
    config = configured();
    targets = bench_allreduce
}
criterion_main!(collectives);
