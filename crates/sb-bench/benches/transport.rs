//! Transport ablations: what FlexPath-style buffering buys, what the MxN
//! exchange costs, and what a whole componentized pipeline hop adds.
//!
//! These benches back the DESIGN.md ablation table:
//! * `overlap/*` — writer-side async buffering (queue depth 1..8) vs the
//!   synchronous rendezvous hand-off;
//! * `mxn/*` — M-writer x N-reader redistribution cost at fixed volume;
//! * `pipeline/*` — one stream hop vs an in-process function call;
//! * `fanout_whole/*`, `fanout_slab/*` — the zero-copy data plane vs the
//!   copying plane (`set_force_copy`) at 1 writer x N readers. The
//!   machine-readable before/after record lives in `BENCH_transport.json`
//!   (regenerate with `cargo run --release -p sb-bench --bin
//!   bench_transport`);
//! * `tcp_vs_inproc/*` — the same pump over the in-proc backend and the
//!   framed TCP transport on loopback (record: `BENCH_tcp.json`, via
//!   `bench_transport -- --tcp`).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sb_bench::{run_fanout, FanoutConfig, FanoutShape};
use sb_comm::LaunchHandle;
use sb_data::decompose::default_partition;
use sb_data::{Buffer, Chunk, DType, Shape, Variable, VariableMeta};
use sb_stream::{StepStatus, StreamHub, WriterOptions};
use std::hint::black_box;

const STEPS: u64 = 8;

/// One writer group and one reader group pumping `steps` steps of an
/// `n x 3` array through a stream; the reader simulates `work` per step.
/// Returns when the stream is drained.
fn pump(
    writers: usize,
    readers: usize,
    n: usize,
    options: WriterOptions,
    writer_work: Duration,
    reader_work: Duration,
) {
    let hub = StreamHub::new();
    let shape = Shape::of(&[("rows", n), ("cols", 3)]);
    let hub_w = Arc::clone(&hub);
    let shape_w = shape.clone();
    let w = LaunchHandle::spawn("bw", writers, move |comm| {
        let mut writer = hub_w.open_writer("bench.fp", comm.rank(), comm.size(), options);
        let region = default_partition(&shape_w, comm.size(), comm.rank());
        let data = Buffer::F64(vec![1.0; region.len()]);
        let meta = VariableMeta::new("x", shape_w.clone(), DType::F64);
        for _ in 0..STEPS {
            if !writer_work.is_zero() {
                std::thread::sleep(writer_work); // the producer's compute
            }
            writer.begin_step().unwrap();
            writer.put(Chunk::new(meta.clone(), region.clone(), data.clone()).unwrap());
            writer.end_step().unwrap();
        }
        writer.close();
    })
    .unwrap();
    let hub_r = Arc::clone(&hub);
    let r = LaunchHandle::spawn("br", readers, move |comm| {
        let mut reader = hub_r.open_reader("bench.fp", comm.rank(), comm.size());
        let region = default_partition(&shape, comm.size(), comm.rank());
        while let StepStatus::Ready(_) = reader.begin_step().unwrap() {
            let v = reader.get("x", &region).unwrap();
            black_box(v.data.len());
            if !reader_work.is_zero() {
                std::thread::sleep(reader_work);
            }
            reader.end_step();
        }
    })
    .unwrap();
    w.join().unwrap();
    r.join().unwrap();
}

/// Overlap ablation: producer and consumer each "compute" for 1ms per
/// step. With writer-side buffering the phases overlap (~1ms/step end to
/// end); with the rendezvous hand-off they serialize (~2ms/step) — exactly
/// the FlexPath asynchrony benefit the paper invokes in §IV.
fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap");
    group.sample_size(10);
    let n = 20_000;
    let work = Duration::from_millis(1);
    for depth in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("buffered_depth", depth),
            &depth,
            |b, &depth| {
                b.iter(|| pump(1, 1, n, WriterOptions::buffered(depth), work, work));
            },
        );
    }
    group.bench_function("rendezvous", |b| {
        b.iter(|| pump(1, 1, n, WriterOptions::rendezvous(), work, work));
    });
    group.finish();
}

/// MxN exchange cost at a fixed data volume.
fn bench_mxn(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxn");
    group.sample_size(10);
    let n = 60_000;
    group.throughput(Throughput::Bytes(STEPS * (n as u64) * 3 * 8));
    for (m, r) in [(1usize, 1usize), (2, 2), (4, 2), (2, 4), (4, 4)] {
        group.bench_with_input(
            BenchmarkId::new("writers_x_readers", format!("{m}x{r}")),
            &(m, r),
            |b, &(m, r)| {
                b.iter(|| {
                    pump(
                        m,
                        r,
                        n,
                        WriterOptions::default(),
                        Duration::ZERO,
                        Duration::ZERO,
                    )
                });
            },
        );
    }
    group.finish();
}

/// Componentization cost in isolation: the same Magnitude kernel applied
/// (a) through a stream hop between two thread groups, and (b) as a plain
/// function call — an upper bound on what one SmartBlock stage adds.
fn bench_pipeline_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let n = 50_000;
    let var = Variable::new(
        "v",
        Shape::of(&[("rows", n), ("cols", 3)]),
        Buffer::F64((0..n * 3).map(|i| i as f64).collect()),
    )
    .unwrap();

    group.bench_function("fused_function_call", |b| {
        b.iter(|| {
            for _ in 0..STEPS {
                black_box(smartblock::magnitude::vector_magnitudes(black_box(&var)).unwrap());
            }
        })
    });

    group.bench_function("stream_hop", |b| {
        let var = var.clone();
        b.iter(|| {
            let hub = StreamHub::new();
            let hub_w = Arc::clone(&hub);
            let var_w = var.clone();
            let w = LaunchHandle::spawn("pw", 1, move |comm| {
                let mut writer =
                    hub_w.open_writer("p.fp", comm.rank(), comm.size(), WriterOptions::default());
                for _ in 0..STEPS {
                    writer.begin_step().unwrap();
                    writer.put(Chunk::whole(var_w.clone()));
                    writer.end_step().unwrap();
                }
                writer.close();
            })
            .unwrap();
            let hub_r = Arc::clone(&hub);
            let r = LaunchHandle::spawn("pr", 1, move |comm| {
                let mut reader = hub_r.open_reader("p.fp", comm.rank(), comm.size());
                while let StepStatus::Ready(_) = reader.begin_step().unwrap() {
                    let v = reader.get_whole("v").unwrap();
                    black_box(smartblock::magnitude::vector_magnitudes(&v).unwrap());
                    reader.end_step();
                }
            })
            .unwrap();
            w.join().unwrap();
            r.join().unwrap();
        })
    });
    group.finish();
}

/// Zero-copy ablation: the same 1-writer x N-reader fan-out served by the
/// zero-copy data plane and by the pre-existing copying plane
/// (`StreamReader::set_force_copy`). Whole-reads stop scaling copy cost
/// with N; slab-reads drop the zeroing pass.
fn bench_fanout(c: &mut Criterion) {
    let (rows, cols) = (40_000usize, 4usize);
    for shape in [FanoutShape::WholeRead, FanoutShape::SlabRead] {
        let mut group = c.benchmark_group(format!("fanout_{}", shape.label()));
        group.sample_size(10);
        group.throughput(Throughput::Bytes(STEPS * (rows * cols * 8) as u64));
        for readers in [1usize, 2, 4, 8] {
            for (mode, force_copy) in [("zero_copy", false), ("copying", true)] {
                group.bench_with_input(BenchmarkId::new(mode, readers), &readers, |b, &readers| {
                    b.iter(|| {
                        black_box(run_fanout(&FanoutConfig {
                            shape,
                            readers,
                            rows,
                            cols,
                            steps: STEPS,
                            force_copy,
                        }))
                    });
                });
            }
        }
        group.finish();
    }
}

/// Transport-backend ablation: the identical MxN pump over the in-proc hub
/// and over the framed TCP transport on loopback — the cost of crossing a
/// process boundary (serialization + socket hops) at several payload
/// sizes. The machine-readable record lives in `BENCH_tcp.json`
/// (regenerate with `cargo run --release -p sb-bench --bin bench_transport
/// -- --tcp`).
fn bench_tcp_vs_inproc(c: &mut Criterion) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use sb_bench::{run_wire_on, WireConfig};
    use sb_stream::tcp::TcpBroker;

    let mut group = c.benchmark_group("tcp_vs_inproc");
    group.sample_size(10);
    let cases = [(1usize, 1usize, 4_096usize), (1, 1, 65_536), (2, 2, 16_384)];
    for (writers, readers, rows) in cases {
        let config = WireConfig {
            writers,
            readers,
            rows,
            cols: 3,
            steps: STEPS,
        };
        let id = format!("{writers}x{readers}_rows{rows}");
        group.throughput(Throughput::Bytes(STEPS * config.payload_bytes()));
        group.bench_with_input(BenchmarkId::new("inproc", &id), &config, |b, config| {
            b.iter(|| black_box(run_wire_on(&StreamHub::new(), "w.fp", config)));
        });
        group.bench_with_input(BenchmarkId::new("tcp", &id), &config, |b, config| {
            // One broker for the whole measurement; a fresh stream name per
            // iteration keeps the pumps independent without re-binding.
            let mut broker = TcpBroker::bind("127.0.0.1:0").expect("bind loopback broker");
            let hub = StreamHub::connect(&broker.url()).expect("connect to broker");
            let iter = AtomicUsize::new(0);
            b.iter(|| {
                let stream = format!("w{}.fp", iter.fetch_add(1, Ordering::Relaxed));
                black_box(run_wire_on(&hub, &stream, config))
            });
            broker.shutdown();
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = transport;
    config = configured();
    targets = bench_overlap, bench_mxn, bench_pipeline_hop, bench_fanout, bench_tcp_vs_inproc
}
criterion_main!(transport);
