//! Prices the tracing layer against the PR 2 transport numbers.
//!
//! * `trace_overhead/fanout_disabled` — the default: tracer never armed.
//!   This is the same traffic as `fanout_whole/zero_copy/4`, and must stay
//!   within noise of it (and of `BENCH_transport.json`) — a disabled
//!   tracer's entire cost is one relaxed atomic load per instrumentation
//!   site.
//! * `trace_overhead/fanout_traced` — the tracer armed and drained, the
//!   cost a traced run knowingly accepts.
//! * `trace_hot_path/*` — the per-event primitives in isolation: a span
//!   call against a disabled tracer, and a ring push on an armed one.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sb_bench::{run_fanout_on, FanoutConfig, FanoutShape};
use sb_stream::{EventKind, StreamHub, TraceConfig, TraceSite, Tracer};

const STEPS: u64 = 8;

fn bench_fanout_overhead(c: &mut Criterion) {
    let (rows, cols) = (40_000usize, 4usize);
    let config = FanoutConfig {
        shape: FanoutShape::WholeRead,
        readers: 4,
        rows,
        cols,
        steps: STEPS,
        force_copy: false,
    };
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(STEPS * (rows * cols * 8) as u64));
    group.bench_function("fanout_disabled", |b| {
        b.iter(|| {
            let hub = StreamHub::new();
            black_box(run_fanout_on(&hub, &config))
        })
    });
    group.bench_function("fanout_traced", |b| {
        b.iter(|| {
            let hub = StreamHub::new();
            hub.tracer().enable(&TraceConfig::new());
            let r = run_fanout_on(&hub, &config);
            black_box(hub.tracer().drain().len());
            black_box(r)
        })
    });
    group.finish();
}

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_hot_path");
    group.bench_function("disabled_span", |b| {
        let tracer = Arc::new(Tracer::new());
        let site = TraceSite::component(0, 0, 0);
        b.iter(|| tracer.span(black_box(EventKind::Compute), site, black_box(0)));
    });
    group.bench_function("armed_ring_span", |b| {
        let tracer = Arc::new(Tracer::new());
        tracer.enable(&TraceConfig::new());
        let _ring = tracer.install_thread_ring();
        let site = TraceSite::component(tracer.intern("bench"), 0, 0);
        b.iter(|| {
            let start = tracer.now_ns();
            tracer.span(EventKind::Compute, site, black_box(start));
        });
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = trace_overhead;
    config = configured();
    targets = bench_fanout_overhead, bench_hot_path
}
criterion_main!(trace_overhead);
