//! Decomposition-strategy ablation: slab (slowest-dim) blocks vs a
//! near-square grid, measured by the cost of the resulting MxN assembly —
//! slabs give long contiguous runs, grids give many short ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sb_data::decompose::{decompose_along, decompose_grid};
use sb_data::region::copy_region;
use sb_data::{Buffer, DType, Region, Shape, SharedBuffer, Variable};
use std::hint::black_box;

/// Scatter a tagged array into `regions` chunks, then gather it back into
/// one buffer through `copy_region` — the transport's assembly path.
fn scatter_gather(source: &Variable, regions: &[Region]) -> Buffer {
    let shape = &source.shape;
    let whole = Region::whole(shape);
    let chunks: Vec<(Region, SharedBuffer)> = regions
        .iter()
        .filter(|r| !r.is_empty())
        .map(|r| (r.clone(), source.extract(r).unwrap().data))
        .collect();
    let mut out = Buffer::zeros(DType::F64, shape.total_len());
    for (region, data) in &chunks {
        copy_region(data, region, &mut out, &whole, region).unwrap();
    }
    out
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose_assembly");
    let shape = Shape::of(&[("rows", 1024), ("cols", 1024)]);
    let source = Variable::new(
        "x",
        shape.clone(),
        Buffer::F64((0..shape.total_len()).map(|i| i as f64).collect()),
    )
    .unwrap();
    group.throughput(Throughput::Bytes((shape.total_len() * 8) as u64));
    for nparts in [4usize, 16, 64] {
        let slabs = decompose_along(&shape, 0, nparts);
        let grid = decompose_grid(&shape, nparts);
        group.bench_with_input(BenchmarkId::new("slab", nparts), &slabs, |b, regions| {
            b.iter(|| black_box(scatter_gather(&source, regions)));
        });
        group.bench_with_input(BenchmarkId::new("grid", nparts), &grid, |b, regions| {
            b.iter(|| black_box(scatter_gather(&source, regions)));
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = decompose;
    config = configured();
    targets = bench_strategies
}
criterion_main!(decompose);
