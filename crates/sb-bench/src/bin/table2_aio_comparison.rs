//! Regenerates **Table II** of the paper: LAMMPS start-to-end completion
//! time with (a) the custom all-in-one analysis component, (b) the full
//! SmartBlock workflow, and (c) the simulation alone with its output
//! routines removed — at five weak scales.
//!
//! As in the paper, the AIO component is allocated the same process count
//! as Select; the SmartBlock run adds the Magnitude and Histogram
//! processes on top. The paper's headline result: the componentized
//! workflow costs at most 1.9% over the fused baseline.
//!
//! Run with: `cargo run --release -p sb-bench --bin table2_aio_comparison`

use sb_bench::{run_aio_comparison_repeated, AioScale};
use smartblock::metrics::format_table;

fn main() {
    // Paper scales: 20, 80, 320, 1280, 5120 MB — a 4x ladder with constant
    // per-process data. Scaled to thread-ranks: particles = nx^2 grow 4x
    // per step (nx doubles), sim procs grow 4x.
    let scales = vec![
        AioScale {
            label_mb: 20.0,
            sim_procs: 1,
            analysis_procs: 1,
            nx: 32,
            io_steps: 4,
            substeps: 8,
        },
        AioScale {
            label_mb: 80.0,
            sim_procs: 2,
            analysis_procs: 1,
            nx: 64,
            io_steps: 4,
            substeps: 8,
        },
        AioScale {
            label_mb: 320.0,
            sim_procs: 4,
            analysis_procs: 2,
            nx: 128,
            io_steps: 4,
            substeps: 8,
        },
        AioScale {
            label_mb: 1280.0,
            sim_procs: 8,
            analysis_procs: 2,
            nx: 256,
            io_steps: 4,
            substeps: 8,
        },
        AioScale {
            label_mb: 5120.0,
            sim_procs: 16,
            analysis_procs: 4,
            nx: 512,
            io_steps: 4,
            substeps: 8,
        },
    ];

    println!("== Table II: LAMMPS — SmartBlock vs. all-in-one comparison ==\n");
    let mut rows = Vec::new();
    for scale in &scales {
        let r = run_aio_comparison_repeated(scale, 3);
        rows.push(vec![
            format!("{:.2}", r.output_mb),
            format!("{:.3}", r.aio.as_secs_f64()),
            format!("{:.3}", r.smartblock.as_secs_f64()),
            format!("{:.3}", r.sim_only.as_secs_f64()),
            format!("{:+.2}%", r.overhead_percent()),
        ]);
        eprintln!(
            "  measured scale {:>7.2} MB: aio {:.3}s, smartblock {:.3}s, sim-only {:.3}s",
            r.output_mb,
            r.aio.as_secs_f64(),
            r.smartblock.as_secs_f64(),
            r.sim_only.as_secs_f64()
        );
    }
    println!(
        "{}",
        format_table(
            &[
                "SIM output (MB)",
                "AIO time (sec)",
                "SmartBlock time (sec)",
                "LMP only (sec)",
                "SB overhead",
            ],
            &rows
        )
    );
    println!("(paper: SmartBlock within 1.9% of AIO at every scale)");
}
