//! Regenerates **Table I** (GTCP weak-scaling setup and end-to-end
//! results) and **Figure 9** (per-component, per-process throughputs) of
//! the paper.
//!
//! The five runs mirror the paper's proc-count ratios (64:84:156:234:1024
//! for GTCP, with analysis components an order of magnitude smaller),
//! scaled to thread-ranks; the per-process data volume is held constant
//! across runs (weak scaling).
//!
//! Run with: `cargo run --release -p sb-bench --bin table1_weak_scaling`

use sb_bench::{run_gtcp_weak, GtcpWeakRun};
use smartblock::metrics::format_table;

fn main() {
    // Paper proc counts divided by ~32, with the same shape: the sim
    // dominates, Select > Dim-Reduce > Histogram.
    let runs = vec![
        GtcpWeakRun {
            run: 1,
            sim_procs: 2,
            select_procs: 1,
            dim_reduce_procs: 1,
            histo_procs: 1,
            slices: 16,
            points: 128,
            io_steps: 5,
            substeps: 10,
        },
        GtcpWeakRun {
            run: 2,
            sim_procs: 3,
            select_procs: 1,
            dim_reduce_procs: 1,
            histo_procs: 1,
            slices: 24,
            points: 128,
            io_steps: 5,
            substeps: 10,
        },
        GtcpWeakRun {
            run: 3,
            sim_procs: 5,
            select_procs: 1,
            dim_reduce_procs: 1,
            histo_procs: 1,
            slices: 40,
            points: 128,
            io_steps: 5,
            substeps: 10,
        },
        GtcpWeakRun {
            run: 4,
            sim_procs: 7,
            select_procs: 1,
            dim_reduce_procs: 1,
            histo_procs: 1,
            slices: 56,
            points: 128,
            io_steps: 5,
            substeps: 10,
        },
        GtcpWeakRun {
            run: 5,
            sim_procs: 12,
            select_procs: 4,
            dim_reduce_procs: 3,
            histo_procs: 1,
            slices: 96,
            points: 128,
            io_steps: 5,
            substeps: 10,
        },
    ];

    println!(
        "== Table I: GTCP-SmartBlock weak-scaling experiment setup and end-to-end results ==\n"
    );
    let mut rows = Vec::new();
    let mut fig9 = Vec::new();
    for config in &runs {
        let r = run_gtcp_weak(config);
        rows.push(vec![
            r.config.run.to_string(),
            format!("{:.1}", r.output_mb),
            r.config.sim_procs.to_string(),
            r.config.select_procs.to_string(),
            r.config.dim_reduce_procs.to_string(),
            r.config.dim_reduce_procs.to_string(),
            r.config.histo_procs.to_string(),
            format!("{:.2}", r.end_to_end.as_secs_f64()),
            format!("{:.0}", r.per_proc_kbs),
            format!("{:.0}", r.aggregate_kbs),
        ]);
        fig9.push(r);
    }
    println!(
        "{}",
        format_table(
            &[
                "Run",
                "GTCP Output (MB)",
                "GTCP Procs",
                "Select Procs",
                "Dim-Red1 Procs",
                "Dim-Red2 Procs",
                "Histo Procs",
                "End2End Time (s)",
                "Per-proc KB/s",
                "Aggregate KB/s",
            ],
            &rows
        )
    );
    println!(
        "(paper: per-proc throughput roughly flat, worst-case 57% decrease at the largest\n\
         scale; on a single-core host the aggregate column is the flat invariant)\n"
    );

    println!("== Figure 9: per-component, per-process throughput (KB/s), mid-run timestep ==\n");
    let mut rows = Vec::new();
    for r in &fig9 {
        let mut row = vec![r.config.run.to_string()];
        for (_, kbs) in &r.component_kbs {
            row.push(format!("{kbs:.0}"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(&["Run", "Select", "Dim-Reduce 1", "Dim-Reduce 2"], &rows)
    );
}
