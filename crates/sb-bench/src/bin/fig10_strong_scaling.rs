//! Regenerates **Figure 10** of the paper: strong scaling of the Magnitude
//! component inside the GROMACS workflow — timestep completion time versus
//! data size per process, with only Magnitude's process count varying.
//!
//! Two sweeps are printed:
//!
//! 1. **Per-proc size sweep** (fixed procs, total size varied): exposes
//!    the linear domain of the timestep-time-vs-size curve — the regime
//!    Figure 10 plots — independent of how many physical cores back the
//!    thread-ranks.
//! 2. **Proc sweep** (fixed total size, procs varied): the paper's literal
//!    axis; on a multi-core host this shows the linear speedup followed by
//!    the flattening the paper describes, on a single-core host only the
//!    flattened regime.
//!
//! Run with: `cargo run --release -p sb-bench --bin fig10_strong_scaling`

use sb_bench::run_gromacs_strong;
use smartblock::metrics::format_table;

fn main() {
    println!("== Figure 10: Magnitude strong scaling in the GROMACS workflow ==\n");

    println!("-- sweep A: timestep time vs size per process (2 Magnitude procs) --\n");
    let mut rows = Vec::new();
    for atoms in [4_000usize, 8_000, 16_000, 32_000, 64_000, 128_000] {
        let p = run_gromacs_strong(atoms, 2, 4);
        rows.push(vec![
            format!("{:.3}", p.mb_per_proc),
            format!("{:.5}", p.step_seconds),
            p.atoms.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(&["Size per proc (MB)", "Timestep (s)", "Atoms"], &rows)
    );
    println!("(paper: a linear domain — time grows proportionally with per-proc size)\n");

    println!("-- sweep B: timestep time vs Magnitude proc count (fixed 64k atoms) --\n");
    let mut rows = Vec::new();
    for procs in [1usize, 2, 3, 4, 6, 8] {
        let p = run_gromacs_strong(64_000, procs, 4);
        rows.push(vec![
            procs.to_string(),
            format!("{:.3}", p.mb_per_proc),
            format!("{:.5}", p.step_seconds),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["Magnitude procs", "Size per proc (MB)", "Timestep (s)"],
            &rows
        )
    );
    println!(
        "(paper: linear scaling then a turning point and flattening; with ranks\n\
         oversubscribed onto few cores only the flattened regime is visible)"
    );
}
