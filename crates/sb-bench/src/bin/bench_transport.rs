//! Records the zero-copy data plane's before/after numbers into
//! `BENCH_transport.json` — the first entry in the repo's perf
//! trajectory.
//!
//! Each run pumps a fixed payload from 1 writer to N readers in two
//! shapes (`whole_read`: N one-rank groups each reading the whole
//! variable; `slab_read`: one N-rank group reading row slabs) and two
//! modes (`zero_copy`: the current data plane; `copying`: the previous
//! plane, pinned via `StreamReader::set_force_copy`). The headline:
//! whole-read `bytes_copied` scaled linearly with N before and is 0
//! after.
//!
//! Run with: `cargo run --release -p sb-bench --bin bench_transport`
//! Options: `--smoke` (tiny sizes, for CI schema validation),
//! `--tcp` (measure the framed TCP backend against in-proc instead,
//! emitting `BENCH_tcp.json`), `--shm` (measure the shared-memory ring
//! backend — broker in a genuinely separate OS process — against both
//! in-proc and the TCP baselines, emitting `BENCH_shm.json`), `--out
//! PATH` (default
//! `BENCH_transport.json`, `BENCH_tcp.json` under `--tcp`, or
//! `BENCH_shm.json` under `--shm`).

use std::time::Duration;

use sb_bench::{run_fanout, run_wire_on, FanoutConfig, FanoutResult, FanoutShape, WireConfig};
use sb_stream::tcp::TcpBroker;
use sb_stream::{ShmBroker, StreamHub};
use smartblock::metrics::format_table;

/// Scale of one emitter invocation.
struct BenchScale {
    smoke: bool,
    rows: usize,
    cols: usize,
    steps: u64,
    reader_counts: &'static [usize],
    /// Timed repetitions per configuration; counters are deterministic so
    /// only wall time benefits from the extra runs (best-of is kept).
    reps: usize,
}

impl BenchScale {
    fn full() -> BenchScale {
        BenchScale {
            smoke: false,
            rows: 131_072,
            cols: 8,
            steps: 12,
            reader_counts: &[1, 2, 4, 8],
            reps: 3,
        }
    }

    fn smoke() -> BenchScale {
        BenchScale {
            smoke: true,
            rows: 256,
            cols: 8,
            steps: 2,
            reader_counts: &[1, 2],
            reps: 1,
        }
    }
}

/// Runs one configuration `reps` times and keeps the fastest wall time
/// (the counters are identical across repetitions).
fn measure(config: &FanoutConfig, reps: usize) -> FanoutResult {
    let mut best: Option<FanoutResult> = None;
    for _ in 0..reps.max(1) {
        let r = run_fanout(config);
        if best.as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
            best = Some(r);
        }
    }
    best.expect("at least one repetition")
}

fn json_run(r: &FanoutResult) -> String {
    let mode = if r.config.force_copy {
        "copying"
    } else {
        "zero_copy"
    };
    let mb_per_s = r.config.payload_bytes() as f64 * r.config.steps as f64
        / r.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
        / 1e6;
    format!(
        "    {{\n      \"shape\": \"{}\",\n      \"mode\": \"{}\",\n      \"readers\": {},\n      \
         \"ns_per_step\": {:.0},\n      \"payload_mb_per_s\": {:.1},\n      \"bytes_read\": {},\n      \
         \"bytes_copied\": {},\n      \"copies_elided\": {},\n      \"zero_fills_elided\": {}\n    }}",
        r.config.shape.label(),
        mode,
        r.config.readers,
        r.ns_per_step(),
        mb_per_s,
        r.metrics.bytes_read,
        r.metrics.bytes_copied,
        r.metrics.copies_elided,
        r.metrics.zero_fills_elided,
    )
}

fn render_json(scale: &BenchScale, runs: &[FanoutResult]) -> String {
    let payload = (scale.rows * scale.cols * 8) as u64;
    let body: Vec<String> = runs.iter().map(json_run).collect();
    format!(
        "{{\n  \"schema\": \"smartblock.bench_transport.v1\",\n  \"smoke\": {},\n  \
         \"rows\": {},\n  \"cols\": {},\n  \"steps\": {},\n  \"payload_bytes_per_step\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        scale.smoke,
        scale.rows,
        scale.cols,
        scale.steps,
        payload,
        body.join(",\n")
    )
}

/// Minimal schema check on the emitted text: every required key appears
/// once per run (plus the header keys). Keeps the CI smoke job honest
/// without a JSON dependency.
fn validate(text: &str, expected_runs: usize) -> Result<(), String> {
    for key in ["\"schema\"", "\"payload_bytes_per_step\"", "\"runs\""] {
        if text.matches(key).count() != 1 {
            return Err(format!("header key {key} missing or repeated"));
        }
    }
    if !text.contains("\"smartblock.bench_transport.v1\"") {
        return Err("schema identifier missing".into());
    }
    for key in [
        "\"shape\"",
        "\"mode\"",
        "\"readers\"",
        "\"ns_per_step\"",
        "\"bytes_read\"",
        "\"bytes_copied\"",
        "\"copies_elided\"",
        "\"zero_fills_elided\"",
    ] {
        let n = text.matches(key).count();
        if n != expected_runs {
            return Err(format!("key {key} appears {n} times, want {expected_runs}"));
        }
    }
    Ok(())
}

/// The claim the file exists to document: with the zero-copy plane, a
/// whole-read's copied bytes do not grow with the reader count (they are
/// zero), while the copying plane moves payload x readers x steps.
fn check_headline(runs: &[FanoutResult]) -> Result<(), String> {
    for r in runs {
        if r.config.shape != FanoutShape::WholeRead {
            continue;
        }
        let expect_copied = if r.config.force_copy {
            r.config.payload_bytes() * r.config.readers as u64 * r.config.steps
        } else {
            0
        };
        if r.metrics.bytes_copied != expect_copied {
            return Err(format!(
                "whole_read readers={} force_copy={}: bytes_copied = {}, want {}",
                r.config.readers, r.config.force_copy, r.metrics.bytes_copied, expect_copied
            ));
        }
    }
    Ok(())
}

/// One transport/protocol/codec combination of the `--tcp` comparison.
#[derive(Clone, Copy, PartialEq, Eq)]
struct TcpVariant {
    /// Row label, also the stream-name tag: `inproc`, `tcp-v1`, `tcp-v2`,
    /// `tcp-v2lz`.
    label: &'static str,
    backend: &'static str,
    protocol: &'static str,
    compression: &'static str,
}

const VARIANTS: &[TcpVariant] = &[
    TcpVariant {
        label: "inproc",
        backend: "inproc",
        protocol: "-",
        compression: "-",
    },
    TcpVariant {
        label: "tcp-v1",
        backend: "tcp",
        protocol: "v1",
        compression: "none",
    },
    TcpVariant {
        label: "tcp-v2",
        backend: "tcp",
        protocol: "v2",
        compression: "none",
    },
    TcpVariant {
        label: "tcp-v2lz",
        backend: "tcp",
        protocol: "v2",
        compression: "lz",
    },
];

/// One (writers, readers, rows) pump of the `--tcp` comparison, measured
/// on one variant.
struct TcpRun {
    variant: TcpVariant,
    result: sb_bench::WireResult,
}

/// Scale of one `--tcp` emitter invocation: each case is pumped on the
/// in-proc backend and on a loopback TCP broker.
struct TcpScale {
    smoke: bool,
    cols: usize,
    steps: u64,
    /// (writers, readers, rows) cases.
    cases: &'static [(usize, usize, usize)],
    reps: usize,
}

impl TcpScale {
    fn full() -> TcpScale {
        TcpScale {
            smoke: false,
            cols: 3,
            steps: 12,
            cases: &[
                (1, 1, 4_096),
                (1, 1, 65_536),
                (1, 1, 262_144),
                (2, 2, 65_536),
                (4, 2, 65_536),
            ],
            reps: 3,
        }
    }

    fn smoke() -> TcpScale {
        TcpScale {
            smoke: true,
            cols: 3,
            steps: 2,
            cases: &[(1, 1, 256), (2, 2, 256)],
            reps: 1,
        }
    }
}

/// Best-of-`reps` wall time for one backend-blind pump; a fresh stream name
/// per repetition keeps pumps independent on a shared hub.
fn measure_wire(
    hub: &std::sync::Arc<StreamHub>,
    tag: &str,
    config: &WireConfig,
    reps: usize,
) -> sb_bench::WireResult {
    let mut best: Option<sb_bench::WireResult> = None;
    for rep in 0..reps.max(1) {
        let r = run_wire_on(hub, &format!("{tag}-rep{rep}.fp"), config);
        if best.as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
            best = Some(r);
        }
    }
    best.expect("at least one repetition")
}

fn json_tcp_run(r: &TcpRun) -> String {
    let c = &r.result.config;
    let m = &r.result.metrics;
    let moved = c.payload_bytes() * c.steps;
    let reader_moved = moved * c.readers as u64;
    let mb_per_s = moved as f64 / r.result.elapsed.as_secs_f64().max(f64::MIN_POSITIVE) / 1e6;
    format!(
        "    {{\n      \"backend\": \"{}\",\n      \"protocol\": \"{}\",\n      \
         \"compression\": \"{}\",\n      \"writers\": {},\n      \"readers\": {},\n      \
         \"rows\": {},\n      \"payload_bytes_per_step\": {},\n      \"ns_per_step\": {:.0},\n      \
         \"payload_mb_per_s\": {:.1},\n      \"wire_writer_bytes\": {},\n      \
         \"wire_reader_bytes\": {},\n      \"writer_hop_amplification\": {:.3},\n      \
         \"reader_hop_amplification\": {:.3},\n      \"bytes_on_wire\": {}\n    }}",
        r.variant.backend,
        r.variant.protocol,
        r.variant.compression,
        c.writers,
        c.readers,
        c.rows,
        c.payload_bytes(),
        r.result.ns_per_step(),
        mb_per_s,
        m.wire_writer_bytes,
        m.wire_reader_bytes,
        m.wire_writer_bytes as f64 / moved as f64,
        m.wire_reader_bytes as f64 / reader_moved as f64,
        m.bytes_on_wire,
    )
}

fn render_tcp_json(scale: &TcpScale, runs: &[TcpRun]) -> String {
    let body: Vec<String> = runs.iter().map(json_tcp_run).collect();
    format!(
        "{{\n  \"schema\": \"smartblock.bench_tcp.v2\",\n  \"smoke\": {},\n  \"cols\": {},\n  \
         \"steps\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        scale.smoke,
        scale.cols,
        scale.steps,
        body.join(",\n")
    )
}

/// Minimal schema check mirroring [`validate`], for the `--tcp` emission.
fn validate_tcp(text: &str, expected_runs: usize) -> Result<(), String> {
    for key in ["\"schema\"", "\"steps\"", "\"runs\""] {
        if text.matches(key).count() != 1 {
            return Err(format!("header key {key} missing or repeated"));
        }
    }
    if !text.contains("\"smartblock.bench_tcp.v2\"") {
        return Err("schema identifier missing".into());
    }
    for key in [
        "\"backend\"",
        "\"protocol\"",
        "\"compression\"",
        "\"writers\"",
        "\"readers\"",
        "\"rows\"",
        "\"payload_bytes_per_step\"",
        "\"ns_per_step\"",
        "\"payload_mb_per_s\"",
        "\"wire_writer_bytes\"",
        "\"wire_reader_bytes\"",
        "\"writer_hop_amplification\"",
        "\"reader_hop_amplification\"",
        "\"bytes_on_wire\"",
    ] {
        let n = text.matches(key).count();
        if n != expected_runs {
            return Err(format!("key {key} appears {n} times, want {expected_runs}"));
        }
    }
    Ok(())
}

/// The claims `BENCH_tcp.json` exists to document. Every variant commits
/// the same steps; the in-proc plane frames nothing. On TCP each hop is
/// counted once: the writer hop carries the committed payload about once
/// and the reader hop about once *per reader* — under interning without
/// compression, within 1.1x of that floor (the old double-counting
/// reported 4x for a 1x1 pipeline). Compressed runs must never exceed
/// their uncompressed payload volume on either hop, and in full mode the
/// biggest 1x1 case must move payload at >= 1.5x the v1 rate under v2+lz.
fn check_tcp_headline(scale: &TcpScale, runs: &[TcpRun]) -> Result<(), String> {
    for r in runs {
        let c = &r.result.config;
        let m = &r.result.metrics;
        let at = format!(
            "{} {}x{} rows={}",
            r.variant.label, c.writers, c.readers, c.rows
        );
        if m.steps_committed != c.steps {
            return Err(format!(
                "{at}: committed {} steps, want {}",
                m.steps_committed, c.steps
            ));
        }
        let moved = c.payload_bytes() * c.steps;
        let reader_moved = moved * c.readers as u64;
        if r.variant.backend == "inproc" {
            if m.bytes_on_wire != 0 {
                return Err(format!("{at}: in-proc framed {} bytes", m.bytes_on_wire));
            }
            continue;
        }
        if m.bytes_on_wire != m.wire_writer_bytes + m.wire_reader_bytes {
            return Err(format!(
                "{at}: hop counters do not sum: {} + {} != {}",
                m.wire_writer_bytes, m.wire_reader_bytes, m.bytes_on_wire
            ));
        }
        if r.variant.compression == "lz" {
            // Compressible bench payload: the wire must not exceed the raw
            // volume (plus framing slack), and the codec ledger must agree.
            if m.wire_compressed_bytes > m.wire_uncompressed_bytes {
                return Err(format!(
                    "{at}: codec grew the payload: {} > {}",
                    m.wire_compressed_bytes, m.wire_uncompressed_bytes
                ));
            }
            if m.wire_writer_bytes as f64 > moved as f64 * 1.1 {
                return Err(format!(
                    "{at}: compressed writer hop above raw volume: {} vs {moved}",
                    m.wire_writer_bytes
                ));
            }
            continue;
        }
        // Uncompressed hops carry every payload byte at least once.
        if m.wire_writer_bytes < moved || m.wire_reader_bytes < reader_moved {
            return Err(format!(
                "{at}: hops lost bytes: writer {} vs {moved}, reader {} vs {reader_moved}",
                m.wire_writer_bytes, m.wire_reader_bytes
            ));
        }
        if r.variant.protocol == "v2" {
            for (hop, bytes, floor) in [
                ("writer", m.wire_writer_bytes, moved),
                ("reader", m.wire_reader_bytes, reader_moved),
            ] {
                if bytes as f64 > floor as f64 * 1.1 {
                    return Err(format!(
                        "{at}: {hop}-hop amplification {:.3} above 1.1",
                        bytes as f64 / floor as f64
                    ));
                }
            }
        }
    }
    if !scale.smoke {
        // Full mode also documents the compression payoff: the biggest 1x1
        // case moves payload at >= 1.5x the v1 rate under v2+lz.
        let (&(w, r_, rows), _) = scale
            .cases
            .iter()
            .zip(0..)
            .filter(|((w, r, _), _)| *w == 1 && *r == 1)
            .max_by_key(|((_, _, rows), _)| *rows)
            .ok_or("no 1x1 case to compare")?;
        let rate = |label: &str| -> Result<f64, String> {
            let run = runs
                .iter()
                .find(|x| {
                    x.variant.label == label
                        && x.result.config.writers == w
                        && x.result.config.readers == r_
                        && x.result.config.rows == rows
                })
                .ok_or_else(|| format!("missing {label} run for the 1x1 headline"))?;
            let moved = run.result.config.payload_bytes() * run.result.config.steps;
            Ok(moved as f64 / run.result.elapsed.as_secs_f64().max(f64::MIN_POSITIVE))
        };
        let (v1, v2lz) = (rate("tcp-v1")?, rate("tcp-v2lz")?);
        if v2lz < v1 * 1.5 {
            return Err(format!(
                "1x1 rows={rows}: v2+lz moves {:.1} MB/s vs v1 {:.1} MB/s — below the 1.5x target",
                v2lz / 1e6,
                v1 / 1e6
            ));
        }
    }
    Ok(())
}

/// The `--tcp` mode: pump every case on both backends, emit
/// `BENCH_tcp.json`, and print the slowdown table.
fn run_tcp_mode(scale: &TcpScale, out_path: &str) {
    use sb_stream::{Compression, TcpOptions, WireProtocol};

    let mut broker = TcpBroker::bind("127.0.0.1:0").expect("bind loopback broker");
    // One broker, one client hub per protocol/codec combination — exactly
    // how mixed-version deployments share a broker in practice.
    let hub_for = |variant: &TcpVariant| {
        let options = match (variant.protocol, variant.compression) {
            ("v1", _) => TcpOptions::default().with_protocol(WireProtocol::V1),
            (_, "lz") => TcpOptions::default().with_compression(Compression::Lz),
            _ => TcpOptions::default(),
        };
        StreamHub::connect_with(&broker.url(), options).expect("connect to broker")
    };
    let tcp_hubs: Vec<_> = VARIANTS
        .iter()
        .filter(|v| v.backend == "tcp")
        .map(|v| (v.label, hub_for(v)))
        .collect();

    let mut runs = Vec::new();
    for &(writers, readers, rows) in scale.cases {
        let config = WireConfig {
            writers,
            readers,
            rows,
            cols: scale.cols,
            steps: scale.steps,
        };
        for variant in VARIANTS {
            let tag = format!("{}-w{writers}r{readers}n{rows}", variant.label);
            let result = if variant.backend == "inproc" {
                measure_wire(&StreamHub::new(), &tag, &config, scale.reps)
            } else {
                let hub = &tcp_hubs
                    .iter()
                    .find(|(label, _)| *label == variant.label)
                    .expect("hub per tcp variant")
                    .1;
                measure_wire(hub, &tag, &config, scale.reps)
            };
            eprintln!(
                "{:>9} {}x{} rows={:>7}: {:>9.2} us/step, wire w->b {} / b->r {}",
                variant.label,
                writers,
                readers,
                rows,
                result.ns_per_step() / 1e3,
                result.metrics.wire_writer_bytes,
                result.metrics.wire_reader_bytes,
            );
            runs.push(TcpRun {
                variant: *variant,
                result,
            });
        }
    }
    broker.shutdown();

    if let Err(e) = check_tcp_headline(scale, &runs) {
        eprintln!("headline claim does not hold: {e}");
        std::process::exit(1);
    }

    let text = render_tcp_json(scale, &runs);
    std::fs::write(out_path, &text).expect("write BENCH_tcp.json");
    let reread = std::fs::read_to_string(out_path).expect("re-read emitted JSON");
    if let Err(e) = validate_tcp(&reread, runs.len()) {
        eprintln!("emitted JSON failed schema validation: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} runs)", runs.len());

    let mut rows_out = Vec::new();
    for case in runs.chunks(VARIANTS.len()) {
        let inproc = &case[0];
        for run in &case[1..] {
            let c = &run.result.config;
            let m = &run.result.metrics;
            let moved = c.payload_bytes() * c.steps;
            rows_out.push(vec![
                format!("{}x{}", c.writers, c.readers),
                c.rows.to_string(),
                run.variant.label.to_string(),
                format!("{:.2}", run.result.ns_per_step() / 1e3),
                format!(
                    "{:.1}x",
                    run.result.ns_per_step() / inproc.result.ns_per_step().max(f64::MIN_POSITIVE)
                ),
                format!("{:.3}", m.wire_writer_bytes as f64 / moved as f64),
                format!(
                    "{:.3}",
                    m.wire_reader_bytes as f64 / (moved * c.readers as u64) as f64
                ),
            ]);
        }
    }
    println!("\n== MxN pump: in-proc vs framed TCP on loopback, per wire protocol ==\n");
    println!(
        "{}",
        format_table(
            &[
                "WxR",
                "Rows",
                "Variant",
                "us/step",
                "vs inproc",
                "Writer-hop amp",
                "Reader-hop amp",
            ],
            &rows_out
        )
    );
}

/// The `--shm` comparison's variants: the same wire grammars as `--tcp`
/// behind the shared-memory ring fabric, bracketed by the in-proc floor
/// and the two TCP baselines the wire gap is measured against.
const SHM_VARIANTS: &[TcpVariant] = &[
    TcpVariant {
        label: "inproc",
        backend: "inproc",
        protocol: "-",
        compression: "-",
    },
    TcpVariant {
        label: "tcp-v1",
        backend: "tcp",
        protocol: "v1",
        compression: "none",
    },
    TcpVariant {
        label: "tcp-v2lz",
        backend: "tcp",
        protocol: "v2",
        compression: "lz",
    },
    TcpVariant {
        label: "shm-v1",
        backend: "shm",
        protocol: "v1",
        compression: "none",
    },
    TcpVariant {
        label: "shm-v2",
        backend: "shm",
        protocol: "v2",
        compression: "none",
    },
    TcpVariant {
        label: "shm-v2lz",
        backend: "shm",
        protocol: "v2",
        compression: "lz",
    },
];

/// Ring capacity for the bench clients: big enough that a whole step of
/// the largest case sits in the ring (so backpressure measures the
/// protocol, not an artificially small pipe), and no bigger — ring pages
/// fault in on first touch, so oversizing pays a cold-page tax every
/// connection without moving a byte more per step.
const BENCH_RING_CAPACITY: usize = 8 << 20;

/// Where the rendezvous directory lives: a shared-memory tmpfs when the
/// host has one, the regular temp dir otherwise.
fn shm_bench_dir() -> std::path::PathBuf {
    let base = std::path::Path::new("/dev/shm");
    let base = if base.is_dir() {
        base.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    base.join(format!("sb-bench-shm-{}", std::process::id()))
}

fn json_shm_run(r: &TcpRun) -> String {
    // The `--tcp` run shape plus the shared-memory fabric attribution.
    let tcp_body = json_tcp_run(r);
    tcp_body.replace(
        "      \"bytes_on_wire\":",
        &format!(
            "      \"wire_shm_bytes\": {},\n      \"bytes_on_wire\":",
            r.result.metrics.wire_shm_bytes
        ),
    )
}

fn render_shm_json(scale: &TcpScale, runs: &[TcpRun]) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let headline = match shm_headline_numbers(scale, runs) {
        Ok((inproc, best_tcp, best_shm, rows)) => format!(
            "{{\n    \"case\": \"1x1 rows={rows}\",\n    \"inproc_ns_per_step\": {inproc:.0},\n    \
             \"best_tcp_ns_per_step\": {best_tcp:.0},\n    \"best_shm_ns_per_step\": {best_shm:.0},\n    \
             \"shm_vs_inproc\": {:.3},\n    \"shm_vs_tcp\": {:.3}\n  }}",
            best_shm / inproc.max(f64::MIN_POSITIVE),
            best_shm / best_tcp.max(f64::MIN_POSITIVE),
        ),
        Err(_) => "null".to_string(),
    };
    let body: Vec<String> = runs.iter().map(json_shm_run).collect();
    format!(
        "{{\n  \"schema\": \"smartblock.bench_shm.v1\",\n  \"smoke\": {},\n  \"cores\": {cores},\n  \
         \"cols\": {},\n  \"steps\": {},\n  \"headline\": {headline},\n  \"runs\": [\n{}\n  ]\n}}\n",
        scale.smoke,
        scale.cols,
        scale.steps,
        body.join(",\n")
    )
}

/// Minimal schema check mirroring [`validate_tcp`], for the `--shm`
/// emission.
fn validate_shm(text: &str, expected_runs: usize) -> Result<(), String> {
    for key in [
        "\"schema\"",
        "\"cores\"",
        "\"steps\"",
        "\"headline\"",
        "\"runs\"",
    ] {
        if text.matches(key).count() != 1 {
            return Err(format!("header key {key} missing or repeated"));
        }
    }
    if !text.contains("\"smartblock.bench_shm.v1\"") {
        return Err("schema identifier missing".into());
    }
    for key in [
        "\"backend\"",
        "\"protocol\"",
        "\"compression\"",
        "\"writers\"",
        "\"readers\"",
        "\"rows\"",
        "\"payload_bytes_per_step\"",
        "\"ns_per_step\"",
        "\"payload_mb_per_s\"",
        "\"wire_writer_bytes\"",
        "\"wire_reader_bytes\"",
        "\"writer_hop_amplification\"",
        "\"reader_hop_amplification\"",
        "\"wire_shm_bytes\"",
        "\"bytes_on_wire\"",
    ] {
        let n = text.matches(key).count();
        if n != expected_runs {
            return Err(format!("key {key} appears {n} times, want {expected_runs}"));
        }
    }
    Ok(())
}

/// The claims `BENCH_shm.json` exists to document. The per-hop accounting
/// contract carries over from `--tcp` unchanged; the new claims:
///
/// * `wire_shm_bytes` equals `bytes_on_wire` on the shm fabric (every
///   frame byte is attributed to shared memory) and is zero on tcp and
///   in-proc;
/// * the headline — on the largest 1x1 constant-payload pump, the best
///   shm variant beats the best TCP variant (the same-host wire gap
///   closes), with the ring broker in a genuinely separate OS process;
/// * on hosts with >= 3 cores — where writer, broker, and reader actually
///   run concurrently and the per-step hops pipeline — the best shm
///   variant additionally lands within 2x of the in-proc data plane. On
///   fewer cores every hop serializes onto one core, the pump's wall time
///   is the *sum* of the stage costs rather than their max, and the
///   in-proc ratio is recorded in the JSON but not enforced.
fn check_shm_headline(scale: &TcpScale, runs: &[TcpRun]) -> Result<(), String> {
    for r in runs {
        let c = &r.result.config;
        let m = &r.result.metrics;
        let at = format!(
            "{} {}x{} rows={}",
            r.variant.label, c.writers, c.readers, c.rows
        );
        if m.steps_committed != c.steps {
            return Err(format!(
                "{at}: committed {} steps, want {}",
                m.steps_committed, c.steps
            ));
        }
        if r.variant.backend == "inproc" {
            if m.bytes_on_wire != 0 || m.wire_shm_bytes != 0 {
                return Err(format!("{at}: in-proc framed {} bytes", m.bytes_on_wire));
            }
            continue;
        }
        if m.bytes_on_wire != m.wire_writer_bytes + m.wire_reader_bytes {
            return Err(format!(
                "{at}: hop counters do not sum: {} + {} != {}",
                m.wire_writer_bytes, m.wire_reader_bytes, m.bytes_on_wire
            ));
        }
        let want_shm = if r.variant.backend == "shm" {
            m.bytes_on_wire
        } else {
            0
        };
        if m.wire_shm_bytes != want_shm {
            return Err(format!(
                "{at}: shm attribution {} != {want_shm} (bytes_on_wire {})",
                m.wire_shm_bytes, m.bytes_on_wire
            ));
        }
        let moved = c.payload_bytes() * c.steps;
        let reader_moved = moved * c.readers as u64;
        if r.variant.compression == "none"
            && (m.wire_writer_bytes < moved || m.wire_reader_bytes < reader_moved)
        {
            return Err(format!(
                "{at}: hops lost bytes: writer {} vs {moved}, reader {} vs {reader_moved}",
                m.wire_writer_bytes, m.wire_reader_bytes
            ));
        }
        if r.variant.compression == "lz" && m.wire_compressed_bytes > m.wire_uncompressed_bytes {
            return Err(format!(
                "{at}: codec grew the payload: {} > {}",
                m.wire_compressed_bytes, m.wire_uncompressed_bytes
            ));
        }
    }
    // The headline case: the largest 1x1 pump (full mode only; smoke
    // sizes are noise-dominated).
    if !scale.smoke {
        let (inproc, best_tcp, best_shm, rows) = shm_headline_numbers(scale, runs)?;
        if best_shm >= best_tcp {
            return Err(format!(
                "1x1 rows={rows}: best shm variant {best_shm:.0} ns/step does not beat \
                 the best tcp variant ({best_tcp:.0} ns/step) — the wire gap did not close"
            ));
        }
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 3 && best_shm > inproc * 2.0 {
            return Err(format!(
                "1x1 rows={rows}: best shm variant {:.0} ns/step is {:.2}x in-proc \
                 ({:.0} ns/step) on a {cores}-core host — above the 2x target",
                best_shm,
                best_shm / inproc.max(f64::MIN_POSITIVE),
                inproc
            ));
        }
    }
    Ok(())
}

/// Best ns/step per backend on the largest 1x1 case, plus its row count:
/// `(inproc, best_tcp, best_shm, rows)`.
fn shm_headline_numbers(
    scale: &TcpScale,
    runs: &[TcpRun],
) -> Result<(f64, f64, f64, usize), String> {
    let (w, r_, rows) = *scale
        .cases
        .iter()
        .filter(|(w, r, _)| *w == 1 && *r == 1)
        .max_by_key(|(_, _, rows)| *rows)
        .ok_or("no 1x1 case for the headline")?;
    let ns = |backend: &str| -> Result<f64, String> {
        runs.iter()
            .filter(|x| {
                let c = &x.result.config;
                c.writers == w && c.readers == r_ && c.rows == rows && x.variant.backend == backend
            })
            .map(|x| x.result.ns_per_step())
            .min_by(f64::total_cmp)
            .ok_or_else(|| format!("missing {backend} runs for the 1x1 headline"))
    };
    Ok((ns("inproc")?, ns("tcp")?, ns("shm")?, rows))
}

/// The `--serve-shm DIR` child mode: bind a ring broker on `DIR` and park
/// until the parent kills the process. Runs in its own OS process so the
/// `--shm` comparison crosses a real process boundary.
fn serve_shm_forever(dir: &str) -> ! {
    let _broker = ShmBroker::bind(dir).expect("bind shm broker");
    loop {
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// The `--shm` mode: spawn the broker in a child process, pump every case
/// through the rings and in-proc, emit `BENCH_shm.json`, and print the
/// slowdown table.
fn run_shm_mode(scale: &TcpScale, out_path: &str) {
    use sb_stream::{Compression, ShmOptions, TcpOptions, WireProtocol};

    let dir = shm_bench_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let url = format!("shm://{}", dir.display());
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = std::process::Command::new(exe)
        .arg("--serve-shm")
        .arg(dir.to_str().expect("utf-8 bench dir"))
        .spawn()
        .expect("spawn shm broker process");

    // The TCP baselines share an in-process loopback broker — the same
    // methodology as `--tcp`, and the conservative side of the comparison
    // (the ring broker pays a real process boundary; the socket one does
    // not even pay that).
    let mut tcp_broker = TcpBroker::bind("127.0.0.1:0").expect("bind loopback broker");
    let wire_for = |variant: &TcpVariant| match (variant.protocol, variant.compression) {
        ("v1", _) => TcpOptions::default().with_protocol(WireProtocol::V1),
        (_, "lz") => TcpOptions::default().with_compression(Compression::Lz),
        _ => TcpOptions::default(),
    };
    let hub_for = |variant: &TcpVariant| match variant.backend {
        "tcp" => StreamHub::connect_with(&tcp_broker.url(), wire_for(variant))
            .expect("connect to tcp broker"),
        _ => {
            let options = ShmOptions::default()
                .with_ring_capacity(BENCH_RING_CAPACITY)
                .with_wire(wire_for(variant));
            StreamHub::connect_shm(&url, options).expect("connect to shm broker")
        }
    };
    let wire_hubs: Vec<_> = SHM_VARIANTS
        .iter()
        .filter(|v| v.backend != "inproc")
        .map(|v| (v.label, hub_for(v)))
        .collect();

    let mut runs = Vec::new();
    for &(writers, readers, rows) in scale.cases {
        let config = WireConfig {
            writers,
            readers,
            rows,
            cols: scale.cols,
            steps: scale.steps,
        };
        for variant in SHM_VARIANTS {
            let tag = format!("{}-w{writers}r{readers}n{rows}", variant.label);
            let result = if variant.backend == "inproc" {
                measure_wire(&StreamHub::new(), &tag, &config, scale.reps)
            } else {
                let hub = &wire_hubs
                    .iter()
                    .find(|(label, _)| *label == variant.label)
                    .expect("hub per wire variant")
                    .1;
                measure_wire(hub, &tag, &config, scale.reps)
            };
            eprintln!(
                "{:>9} {}x{} rows={:>7}: {:>9.2} us/step, wire w->b {} / b->r {}",
                variant.label,
                writers,
                readers,
                rows,
                result.ns_per_step() / 1e3,
                result.metrics.wire_writer_bytes,
                result.metrics.wire_reader_bytes,
            );
            runs.push(TcpRun {
                variant: *variant,
                result,
            });
        }
    }
    // The ring broker lives in the child; killing it is the teardown.
    drop(wire_hubs);
    tcp_broker.shutdown();
    child.kill().expect("kill shm broker process");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);

    if let Err(e) = check_shm_headline(scale, &runs) {
        eprintln!("headline claim does not hold: {e}");
        std::process::exit(1);
    }

    let text = render_shm_json(scale, &runs);
    std::fs::write(out_path, &text).expect("write BENCH_shm.json");
    let reread = std::fs::read_to_string(out_path).expect("re-read emitted JSON");
    if let Err(e) = validate_shm(&reread, runs.len()) {
        eprintln!("emitted JSON failed schema validation: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} runs)", runs.len());

    let mut rows_out = Vec::new();
    for case in runs.chunks(SHM_VARIANTS.len()) {
        let inproc = &case[0];
        for run in &case[1..] {
            let c = &run.result.config;
            let m = &run.result.metrics;
            let moved = c.payload_bytes() * c.steps;
            rows_out.push(vec![
                format!("{}x{}", c.writers, c.readers),
                c.rows.to_string(),
                run.variant.label.to_string(),
                format!("{:.2}", run.result.ns_per_step() / 1e3),
                format!(
                    "{:.1}x",
                    run.result.ns_per_step() / inproc.result.ns_per_step().max(f64::MIN_POSITIVE)
                ),
                format!("{:.3}", m.wire_writer_bytes as f64 / moved as f64),
                format!(
                    "{:.3}",
                    m.wire_reader_bytes as f64 / (moved * c.readers as u64) as f64
                ),
            ]);
        }
    }
    println!(
        "\n== MxN pump: in-proc vs shared-memory rings across processes, per wire protocol ==\n"
    );
    println!(
        "{}",
        format_table(
            &[
                "WxR",
                "Rows",
                "Variant",
                "us/step",
                "vs inproc",
                "Writer-hop amp",
                "Reader-hop amp",
            ],
            &rows_out
        )
    );
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut tcp = false;
    let mut shm = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--tcp" => tcp = true,
            "--shm" => shm = true,
            "--serve-shm" => {
                // Internal: the `--shm` mode's broker child process.
                let dir = args.next().expect("--serve-shm needs a directory");
                serve_shm_forever(&dir);
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!(
                    "unknown argument {other:?} (options: --smoke, --tcp, --shm, --out PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    if tcp {
        let scale = if smoke {
            TcpScale::smoke()
        } else {
            TcpScale::full()
        };
        let out_path = out_path.unwrap_or_else(|| "BENCH_tcp.json".into());
        run_tcp_mode(&scale, &out_path);
        return;
    }

    if shm {
        let scale = if smoke {
            TcpScale::smoke()
        } else {
            TcpScale::full()
        };
        let out_path = out_path.unwrap_or_else(|| "BENCH_shm.json".into());
        run_shm_mode(&scale, &out_path);
        return;
    }

    let out_path = out_path.unwrap_or_else(|| "BENCH_transport.json".into());
    let scale = if smoke {
        BenchScale::smoke()
    } else {
        BenchScale::full()
    };

    let mut runs = Vec::new();
    for shape in [FanoutShape::WholeRead, FanoutShape::SlabRead] {
        for &readers in scale.reader_counts {
            for force_copy in [true, false] {
                let config = FanoutConfig {
                    shape,
                    readers,
                    rows: scale.rows,
                    cols: scale.cols,
                    steps: scale.steps,
                    force_copy,
                };
                let r = measure(&config, scale.reps);
                eprintln!(
                    "{:>10} x{} {:>9}: {:>8.2} ms/step, {} bytes copied, {} copies elided",
                    shape.label(),
                    readers,
                    if force_copy { "copying" } else { "zero_copy" },
                    r.ns_per_step() / 1e6,
                    r.metrics.bytes_copied,
                    r.metrics.copies_elided,
                );
                runs.push(r);
            }
        }
    }

    if let Err(e) = check_headline(&runs) {
        eprintln!("headline claim does not hold: {e}");
        std::process::exit(1);
    }

    let text = render_json(&scale, &runs);
    std::fs::write(&out_path, &text).expect("write BENCH_transport.json");
    let reread = std::fs::read_to_string(&out_path).expect("re-read emitted JSON");
    if let Err(e) = validate(&reread, runs.len()) {
        eprintln!("emitted JSON failed schema validation: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} ({} runs)", runs.len());

    // Human-readable summary: copy bytes per whole-read step, by reader
    // count, before vs after.
    let mut rows = Vec::new();
    for &readers in scale.reader_counts {
        let pick = |force: bool| -> &FanoutResult {
            runs.iter()
                .find(|r| {
                    r.config.shape == FanoutShape::WholeRead
                        && r.config.readers == readers
                        && r.config.force_copy == force
                })
                .expect("whole-read run present")
        };
        let (before, after) = (pick(true), pick(false));
        rows.push(vec![
            readers.to_string(),
            (before.metrics.bytes_copied / before.config.steps).to_string(),
            (after.metrics.bytes_copied / after.config.steps).to_string(),
            format!(
                "{:.2}",
                Duration::from_nanos(before.ns_per_step() as u64).as_secs_f64() * 1e3
            ),
            format!(
                "{:.2}",
                Duration::from_nanos(after.ns_per_step() as u64).as_secs_f64() * 1e3
            ),
        ]);
    }
    println!("\n== whole-read fan-out: copied bytes/step and ms/step, copying vs zero-copy ==\n");
    println!(
        "{}",
        format_table(
            &[
                "Readers",
                "Copied B/step (before)",
                "Copied B/step (after)",
                "ms/step (before)",
                "ms/step (after)",
            ],
            &rows
        )
    );
}
