//! Bench harnesses that regenerate every table and figure of the paper's
//! evaluation (§V). Each `src/bin` binary prints one artifact:
//!
//! * `table1_weak_scaling` — Table I + Figure 9 (GTCP weak scaling)
//! * `table2_aio_comparison` — Table II (SmartBlock vs all-in-one)
//! * `fig10_strong_scaling` — Figure 10 (Magnitude strong scaling)
//!
//! The functions here are the measurement logic; the binaries own the
//! scale configuration and the table formatting. Criterion micro-benches
//! and the design ablations live under `benches/`.
//!
//! **Scale note.** The paper ran on Titan (up to 1600 processes over
//! thousands of cores); this harness runs thread-ranks on whatever machine
//! it is given, frequently a single core. On one core, wall-clock weak
//! scaling is serialized, so alongside the paper's per-process throughput
//! the harness reports *aggregate* throughput — the quantity that stays
//! flat under weak scaling when every rank shares one core. Table II's
//! comparison is scale-valid as-is: both pipelines serialize identically,
//! so their ratio measures exactly the componentization overhead the paper
//! measures.

use std::time::Duration;

use smartblock::prelude::RunOptions;
use smartblock::workflows::{
    gromacs_workflow, gtcp_workflow, lammps_aio_workflow, lammps_sim_only, lammps_workflow,
    PresetScale,
};

/// One row of the Table I / Figure 9 experiment.
#[derive(Debug, Clone)]
pub struct GtcpWeakRun {
    /// Run number (1-based, as in Table I).
    pub run: usize,
    /// Ranks for the GTCP simulation.
    pub sim_procs: usize,
    /// Ranks for Select.
    pub select_procs: usize,
    /// Ranks for each Dim-Reduce.
    pub dim_reduce_procs: usize,
    /// Ranks for Histogram.
    pub histo_procs: usize,
    /// Toroidal slices (grows with `sim_procs` for weak scaling).
    pub slices: usize,
    /// Grid points per slice.
    pub points: usize,
    /// Coarse output steps.
    pub io_steps: u64,
    /// Fine substeps per output step.
    pub substeps: u64,
}

impl GtcpWeakRun {
    /// Total workflow processes (the Table I denominator).
    pub fn total_procs(&self) -> usize {
        self.sim_procs + self.select_procs + 2 * self.dim_reduce_procs + self.histo_procs
    }
}

/// Measured results of one weak-scaling run.
#[derive(Debug, Clone)]
pub struct GtcpWeakResult {
    /// The configuration measured.
    pub config: GtcpWeakRun,
    /// Total simulation output over the run, in MB.
    pub output_mb: f64,
    /// Start-to-finish workflow time.
    pub end_to_end: Duration,
    /// Paper metric: output / (total procs x end-to-end), KB/s.
    pub per_proc_kbs: f64,
    /// Single-core invariant: output / end-to-end, KB/s.
    pub aggregate_kbs: f64,
    /// Figure 9 series: per-component, per-process throughput (KB/s) for a
    /// mid-run timestep, for Select, Dim-Reduce 1 and Dim-Reduce 2.
    pub component_kbs: Vec<(String, f64)>,
}

/// Runs one GTCP weak-scaling configuration and extracts the Table I row
/// plus the Figure 9 points.
pub fn run_gtcp_weak(config: &GtcpWeakRun) -> GtcpWeakResult {
    let scale = PresetScale {
        sim_ranks: config.sim_procs,
        analysis_ranks: vec![
            config.select_procs,
            config.dim_reduce_procs,
            config.dim_reduce_procs,
            config.histo_procs,
        ],
        io_steps: config.io_steps,
        substeps: config.substeps,
        bins: 32,
        ..PresetScale::default()
    }
    .size("slices", config.slices)
    .size("points", config.points);

    let (wf, _results) = gtcp_workflow(&scale);
    let report = wf
        .run_with(RunOptions::default())
        .expect("gtcp weak-scaling run");

    let source = report
        .streams
        .iter()
        .find(|s| s.stream == "gtcp.fp")
        .expect("simulation stream");
    let output_mb = source.bytes_written as f64 / 1e6;
    let elapsed = report.elapsed;
    let per_proc_kbs = report
        .end_to_end_throughput_kbs("gtcp.fp")
        .unwrap_or_default();
    let aggregate_kbs = source.bytes_written as f64 / 1024.0 / elapsed.as_secs_f64().max(1e-9);

    // "for a timestep taken arbitrarily in the workflow" — use the middle.
    let mid = (config.io_steps / 2) as usize;
    let component_kbs = ["select", "dim-reduce", "dim-reduce-2"]
        .iter()
        .map(|label| {
            let c = report.component(label).expect("pipeline component");
            (
                label.to_string(),
                c.per_process_throughput_kbs(mid).unwrap_or_default(),
            )
        })
        .collect();

    GtcpWeakResult {
        config: config.clone(),
        output_mb,
        end_to_end: elapsed,
        per_proc_kbs,
        aggregate_kbs,
        component_kbs,
    }
}

/// One scale of the Table II experiment.
#[derive(Debug, Clone)]
pub struct AioScale {
    /// Target simulation output per run, labelling the row (MB).
    pub label_mb: f64,
    /// Ranks for the LAMMPS simulation.
    pub sim_procs: usize,
    /// Ranks for the analysis front end (Select, and the AIO component).
    pub analysis_procs: usize,
    /// Lattice side (particles approx. `nx * ny`).
    pub nx: usize,
    /// Coarse output steps.
    pub io_steps: u64,
    /// Fine substeps per output step.
    pub substeps: u64,
}

/// Measured Table II row.
#[derive(Debug, Clone)]
pub struct AioResult {
    /// The configuration measured.
    pub scale: AioScale,
    /// Actual simulation output of the SmartBlock run, MB.
    pub output_mb: f64,
    /// All-in-one workflow time.
    pub aio: Duration,
    /// Componentized SmartBlock workflow time.
    pub smartblock: Duration,
    /// Simulation-only time (output routines removed).
    pub sim_only: Duration,
}

impl AioResult {
    /// SmartBlock overhead over AIO, in percent (the paper reports a
    /// maximum of 1.9%).
    pub fn overhead_percent(&self) -> f64 {
        (self.smartblock.as_secs_f64() / self.aio.as_secs_f64() - 1.0) * 100.0
    }
}

/// Runs the three Table II configurations at one scale.
///
/// Each configuration is measured `repeats` times interleaved and the
/// minimum is kept — on an oversubscribed host run-to-run noise easily
/// exceeds the ~2% effect the experiment measures.
pub fn run_aio_comparison_repeated(scale: &AioScale, repeats: usize) -> AioResult {
    let preset = PresetScale {
        sim_ranks: scale.sim_procs,
        // Paper: AIO gets the Select proc count; SmartBlock adds the
        // Magnitude and Histogram processes on top.
        analysis_ranks: vec![scale.analysis_procs, scale.analysis_procs, 1],
        io_steps: scale.io_steps,
        substeps: scale.substeps,
        bins: 32,
        ..PresetScale::default()
    }
    .size("nx", scale.nx)
    .size("ny", scale.nx);

    let mut aio = Duration::MAX;
    let mut smartblock = Duration::MAX;
    let mut sim_only = Duration::MAX;
    let mut output_mb = 0.0;
    for _ in 0..repeats.max(1) {
        let (wf, _r) = lammps_aio_workflow(&preset);
        aio = aio.min(wf.run_with(RunOptions::default()).expect("aio run").elapsed);

        let (wf, _r) = lammps_workflow(&preset);
        let sb_report = wf.run_with(RunOptions::default()).expect("smartblock run");
        smartblock = smartblock.min(sb_report.elapsed);
        output_mb = sb_report
            .streams
            .iter()
            .find(|s| s.stream == "dump.custom.fp")
            .map(|s| s.bytes_written as f64 / 1e6)
            .unwrap_or_default();

        sim_only = sim_only.min(lammps_sim_only(&preset).run().expect("sim-only run"));
    }

    AioResult {
        scale: scale.clone(),
        output_mb,
        aio,
        smartblock,
        sim_only,
    }
}

/// [`run_aio_comparison_repeated`] with a single repetition.
pub fn run_aio_comparison(scale: &AioScale) -> AioResult {
    run_aio_comparison_repeated(scale, 1)
}

/// One point of the Figure 10 experiment.
#[derive(Debug, Clone)]
pub struct StrongScalingPoint {
    /// Ranks given to the Magnitude component.
    pub magnitude_procs: usize,
    /// Total atoms in the GROMACS run.
    pub atoms: usize,
    /// Input data per Magnitude process per timestep, MB.
    pub mb_per_proc: f64,
    /// Mean Magnitude timestep completion time, seconds.
    pub step_seconds: f64,
}

/// Runs the GROMACS workflow once and measures Magnitude's per-timestep
/// completion time with `magnitude_procs` ranks over `atoms` atoms.
pub fn run_gromacs_strong(
    atoms: usize,
    magnitude_procs: usize,
    io_steps: u64,
) -> StrongScalingPoint {
    let chains = atoms.div_ceil(16).max(magnitude_procs);
    let scale = PresetScale {
        sim_ranks: 2,
        analysis_ranks: vec![magnitude_procs, 1],
        io_steps,
        substeps: 4,
        bins: 16,
        ..PresetScale::default()
    }
    .size("chains", chains)
    .size("len", 16);

    let (wf, _r) = gromacs_workflow(&scale);
    let report = wf
        .run_with(RunOptions::default())
        .expect("gromacs strong-scaling run");
    let mag = report.component("magnitude").expect("magnitude component");
    let bytes_per_step = mag.stats.bytes_in as f64 / mag.stats.steps.max(1) as f64;
    StrongScalingPoint {
        magnitude_procs,
        atoms: chains * 16,
        mb_per_proc: bytes_per_step / magnitude_procs as f64 / 1e6,
        step_seconds: mag.stats.mean_step_time().as_secs_f64(),
    }
}

/// Reader-side shape of a 1-writer fan-out over one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FanoutShape {
    /// `readers` reader groups of one rank each; every group whole-reads
    /// the variable. The broadcast pattern: before the zero-copy plane,
    /// copy cost scaled linearly with the group count.
    WholeRead,
    /// One reader group of `readers` ranks; each rank reads its contiguous
    /// row slab. The MxN redistribution pattern at M = 1.
    SlabRead,
}

impl FanoutShape {
    /// Stable identifier used in benchmark names and `BENCH_transport.json`.
    pub fn label(&self) -> &'static str {
        match self {
            FanoutShape::WholeRead => "whole_read",
            FanoutShape::SlabRead => "slab_read",
        }
    }
}

/// One 1-writer x N-reader transport measurement.
#[derive(Debug, Clone)]
pub struct FanoutConfig {
    /// How the readers carve up the stream.
    pub shape: FanoutShape,
    /// Reader count N (groups for `WholeRead`, ranks for `SlabRead`).
    pub readers: usize,
    /// Rows of the `rows x cols` f64 payload.
    pub rows: usize,
    /// Columns of the payload.
    pub cols: usize,
    /// Steps pumped through the stream.
    pub steps: u64,
    /// `true` pins readers to the pre-zero-copy data plane
    /// (`StreamReader::set_force_copy`) — the "before" ablation arm.
    pub force_copy: bool,
}

impl FanoutConfig {
    /// Bytes the writer commits per step.
    pub fn payload_bytes(&self) -> u64 {
        (self.rows * self.cols * 8) as u64
    }
}

/// Wall time and stream counters from one [`run_fanout`] call.
#[derive(Debug, Clone)]
pub struct FanoutResult {
    /// The configuration measured.
    pub config: FanoutConfig,
    /// Start-to-drain wall time.
    pub elapsed: Duration,
    /// The stream's counters after the run (bytes_copied, copies_elided,
    /// zero_fills_elided are the before/after story).
    pub metrics: sb_stream::StreamMetrics,
}

impl FanoutResult {
    /// Mean wall time per step, in nanoseconds.
    pub fn ns_per_step(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.config.steps.max(1) as f64
    }
}

/// Pumps `steps` steps of a `rows x cols` f64 variable from one writer
/// through the configured reader fan-out and returns wall time plus the
/// stream's copy counters.
pub fn run_fanout(config: &FanoutConfig) -> FanoutResult {
    run_fanout_on(&sb_stream::StreamHub::new(), config)
}

/// [`run_fanout`] on a caller-provided hub — the tracing-overhead bench
/// arms the hub's tracer to price the instrumented hot path against the
/// default disabled one on identical traffic.
pub fn run_fanout_on(
    hub: &std::sync::Arc<sb_stream::StreamHub>,
    config: &FanoutConfig,
) -> FanoutResult {
    use std::sync::Arc;
    use std::time::Instant;

    use sb_comm::LaunchHandle;
    use sb_data::{Buffer, Chunk, DType, Region, Shape, VariableMeta};
    use sb_stream::{StepStatus, WriterOptions};

    let groups = match config.shape {
        FanoutShape::WholeRead => config.readers,
        FanoutShape::SlabRead => 1,
    };
    let hub = Arc::clone(hub);
    let shape = Shape::of(&[("rows", config.rows), ("cols", config.cols)]);
    let steps = config.steps;
    let start = Instant::now();

    let hub_w = Arc::clone(&hub);
    let shape_w = shape.clone();
    let writer = LaunchHandle::spawn("fan-writer", 1, move |comm| {
        let _ring = hub_w.tracer().install_thread_ring();
        let mut w = hub_w.open_writer(
            "fan.fp",
            comm.rank(),
            comm.size(),
            WriterOptions::buffered(2).with_reader_groups(groups),
        );
        let meta = VariableMeta::new("x", shape_w.clone(), DType::F64);
        let region = Region::whole(&shape_w);
        // One shared payload: the writer itself never re-copies either.
        let data = sb_data::SharedBuffer::from(Buffer::F64(vec![1.0; region.len()]));
        for _ in 0..steps {
            w.begin_step().unwrap();
            w.put(Chunk::new(meta.clone(), region.clone(), data.clone()).unwrap());
            w.end_step().unwrap();
        }
        w.close();
    })
    .expect("spawn fan-out writer");

    let mut handles = Vec::new();
    match config.shape {
        FanoutShape::WholeRead => {
            for g in 0..config.readers {
                let hub_r = Arc::clone(&hub);
                let force = config.force_copy;
                let group = format!("g{g}");
                handles.push(
                    LaunchHandle::spawn(&format!("fan-reader-{g}"), 1, move |comm| {
                        let _ring = hub_r.tracer().install_thread_ring();
                        let mut r =
                            hub_r.open_reader_grouped("fan.fp", &group, comm.rank(), comm.size());
                        r.set_force_copy(force);
                        while let StepStatus::Ready(_) = r.begin_step().unwrap() {
                            let v = r.get_whole("x").unwrap();
                            std::hint::black_box(v.data.len());
                            r.end_step();
                        }
                    })
                    .expect("spawn whole-read group"),
                );
            }
        }
        FanoutShape::SlabRead => {
            let hub_r = Arc::clone(&hub);
            let force = config.force_copy;
            let shape_r = shape.clone();
            handles.push(
                LaunchHandle::spawn("fan-readers", config.readers, move |comm| {
                    let _ring = hub_r.tracer().install_thread_ring();
                    let mut r = hub_r.open_reader("fan.fp", comm.rank(), comm.size());
                    r.set_force_copy(force);
                    let region =
                        sb_data::decompose::default_partition(&shape_r, comm.size(), comm.rank());
                    while let StepStatus::Ready(_) = r.begin_step().unwrap() {
                        let v = r.get("x", &region).unwrap();
                        std::hint::black_box(v.data.len());
                        r.end_step();
                    }
                })
                .expect("spawn slab-read group"),
            );
        }
    }

    writer.join().expect("fan-out writer");
    for h in handles {
        h.join().expect("fan-out reader");
    }
    let elapsed = start.elapsed();
    let metrics = hub.metrics("fan.fp").expect("fan.fp metrics");
    FanoutResult {
        config: config.clone(),
        elapsed,
        metrics,
    }
}

/// One MxN pump at a fixed volume — the unit the TCP-vs-in-proc comparison
/// measures on both transport backends.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Writer ranks (one group).
    pub writers: usize,
    /// Reader ranks (one group, slab reads).
    pub readers: usize,
    /// Rows of the `rows x cols` f64 payload.
    pub rows: usize,
    /// Columns of the payload.
    pub cols: usize,
    /// Steps pumped through the stream.
    pub steps: u64,
}

impl WireConfig {
    /// Bytes the writer group commits per step.
    pub fn payload_bytes(&self) -> u64 {
        (self.rows * self.cols * 8) as u64
    }
}

/// Wall time and stream counters from one [`run_wire_on`] call.
#[derive(Debug, Clone)]
pub struct WireResult {
    /// The configuration measured.
    pub config: WireConfig,
    /// Start-to-drain wall time.
    pub elapsed: Duration,
    /// The stream's counters after the run; `bytes_on_wire` is zero on the
    /// in-proc backend and counts framed socket traffic on TCP.
    pub metrics: sb_stream::StreamMetrics,
}

impl WireResult {
    /// Mean wall time per step, in nanoseconds.
    pub fn ns_per_step(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.config.steps.max(1) as f64
    }
}

/// Pumps `steps` steps of a `rows x cols` f64 variable from an M-rank
/// writer group to an N-rank slab-reading group over `stream` on the given
/// hub. The hub decides the backend: pass `StreamHub::new()` for in-proc or
/// `StreamHub::connect("tcp://...")` for the framed TCP transport — the
/// pump itself is backend-blind, which is exactly the property the
/// `tcp_vs_inproc` comparison relies on.
pub fn run_wire_on(
    hub: &std::sync::Arc<sb_stream::StreamHub>,
    stream: &str,
    config: &WireConfig,
) -> WireResult {
    use std::sync::Arc;
    use std::time::Instant;

    use sb_comm::LaunchHandle;
    use sb_data::decompose::default_partition;
    use sb_data::{Buffer, Chunk, DType, Shape, VariableMeta};
    use sb_stream::{StepStatus, WriterOptions};

    let shape = Shape::of(&[("rows", config.rows), ("cols", config.cols)]);
    let steps = config.steps;
    let start = Instant::now();

    let hub_w = Arc::clone(hub);
    let shape_w = shape.clone();
    let stream_w = stream.to_string();
    let writer = LaunchHandle::spawn("wire-writer", config.writers, move |comm| {
        let mut w = hub_w.open_writer(
            &stream_w,
            comm.rank(),
            comm.size(),
            WriterOptions::buffered(2),
        );
        let region = default_partition(&shape_w, comm.size(), comm.rank());
        let meta = VariableMeta::new("x", shape_w.clone(), DType::F64);
        let data = Buffer::F64(vec![1.0; region.len()]);
        for _ in 0..steps {
            w.begin_step().unwrap();
            w.put(Chunk::new(meta.clone(), region.clone(), data.clone()).unwrap());
            w.end_step().unwrap();
        }
        w.close();
    })
    .expect("spawn wire writer");

    let hub_r = Arc::clone(hub);
    let stream_r = stream.to_string();
    let reader = LaunchHandle::spawn("wire-reader", config.readers, move |comm| {
        let mut r = hub_r.open_reader(&stream_r, comm.rank(), comm.size());
        let region = default_partition(&shape, comm.size(), comm.rank());
        while let StepStatus::Ready(_) = r.begin_step().unwrap() {
            let v = r.get("x", &region).unwrap();
            std::hint::black_box(v.data.len());
            r.end_step();
        }
    })
    .expect("spawn wire readers");

    writer.join().expect("wire writer");
    reader.join().expect("wire reader");
    let elapsed = start.elapsed();
    let metrics = hub.metrics(stream).expect("wire stream metrics");
    WireResult {
        config: config.clone(),
        elapsed,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtcp_weak_run_produces_consistent_row() {
        let config = GtcpWeakRun {
            run: 1,
            sim_procs: 2,
            select_procs: 1,
            dim_reduce_procs: 1,
            histo_procs: 1,
            slices: 8,
            points: 16,
            io_steps: 2,
            substeps: 2,
        };
        assert_eq!(config.total_procs(), 2 + 1 + 2 + 1);
        let result = run_gtcp_weak(&config);
        // 2 steps x 8 x 16 x 7 props x 8 bytes.
        let expect_mb = 2.0 * 8.0 * 16.0 * 7.0 * 8.0 / 1e6;
        assert!((result.output_mb - expect_mb).abs() < 1e-9);
        assert!(result.end_to_end > Duration::ZERO);
        assert!(result.per_proc_kbs > 0.0);
        assert!(result.aggregate_kbs >= result.per_proc_kbs);
        assert_eq!(result.component_kbs.len(), 3);
    }

    #[test]
    fn aio_comparison_runs_all_three_configs() {
        let scale = AioScale {
            label_mb: 0.1,
            sim_procs: 2,
            analysis_procs: 1,
            nx: 12,
            io_steps: 2,
            substeps: 3,
        };
        let r = run_aio_comparison(&scale);
        assert!(r.output_mb > 0.0);
        assert!(r.aio > Duration::ZERO);
        assert!(r.smartblock > Duration::ZERO);
        assert!(r.sim_only > Duration::ZERO);
        // Overhead is a finite percentage.
        assert!(r.overhead_percent().is_finite());
    }

    #[test]
    fn strong_scaling_point_reports_size_per_proc() {
        let p = run_gromacs_strong(256, 2, 2);
        assert_eq!(p.magnitude_procs, 2);
        assert!(p.atoms >= 256);
        // atoms x 3 coords x 8 bytes split over 2 procs.
        let expect = p.atoms as f64 * 24.0 / 2.0 / 1e6;
        assert!((p.mb_per_proc - expect).abs() < 1e-9, "{p:?}");
        assert!(p.step_seconds > 0.0);
    }

    #[test]
    fn wire_pump_is_backend_blind() {
        let config = WireConfig {
            writers: 2,
            readers: 2,
            rows: 16,
            cols: 4,
            steps: 3,
        };
        let inproc = run_wire_on(&sb_stream::StreamHub::new(), "w.fp", &config);
        assert_eq!(inproc.metrics.steps_committed, 3);
        assert_eq!(
            inproc.metrics.bytes_on_wire, 0,
            "in-proc moves steps by Arc, nothing is framed"
        );

        let mut broker = sb_stream::tcp::TcpBroker::bind("127.0.0.1:0").unwrap();
        let hub = sb_stream::StreamHub::connect(&broker.url()).unwrap();
        let tcp = run_wire_on(&hub, "w.fp", &config);
        broker.shutdown();
        assert_eq!(tcp.metrics.steps_committed, 3);
        // Every committed payload byte crossed a socket at least once.
        assert!(
            tcp.metrics.bytes_on_wire >= config.steps * config.payload_bytes(),
            "{:?}",
            tcp.metrics
        );
    }

    #[test]
    fn fanout_whole_read_elides_every_copy() {
        let config = FanoutConfig {
            shape: FanoutShape::WholeRead,
            readers: 2,
            rows: 16,
            cols: 4,
            steps: 3,
            force_copy: false,
        };
        let r = run_fanout(&config);
        // 2 groups x 3 steps, every read served by the exact-cover path.
        assert_eq!(r.metrics.copies_elided, 6, "{:?}", r.metrics);
        assert_eq!(r.metrics.bytes_copied, 0);
        assert_eq!(r.metrics.bytes_read, 2 * 3 * config.payload_bytes());
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn fanout_force_copy_restores_the_scaling_cost() {
        let config = FanoutConfig {
            shape: FanoutShape::WholeRead,
            readers: 2,
            rows: 16,
            cols: 4,
            steps: 3,
            force_copy: true,
        };
        let r = run_fanout(&config);
        assert_eq!(r.metrics.copies_elided, 0);
        // The "before" plane copies the payload once per group per step.
        assert_eq!(r.metrics.bytes_copied, 2 * 3 * config.payload_bytes());
    }

    #[test]
    fn fanout_slab_read_skips_the_zero_fill() {
        let config = FanoutConfig {
            shape: FanoutShape::SlabRead,
            readers: 2,
            rows: 16,
            cols: 4,
            steps: 3,
            force_copy: false,
        };
        let r = run_fanout(&config);
        // Each rank's row slab is assembled without a zeroing pass; the
        // payload still moves once per step in aggregate.
        assert_eq!(r.metrics.zero_fills_elided, 6, "{:?}", r.metrics);
        assert_eq!(r.metrics.bytes_copied, 3 * config.payload_bytes());
    }
}
