//! A minimal, API-compatible stand-in for the `bytes` crate, so the
//! workspace builds without network access.
//!
//! Provides exactly the cursor surface `sb-data`'s binary container format
//! uses: the [`Buf`] trait on `&[u8]` (little-endian integer getters,
//! `remaining`, `advance`, `copy_to_bytes`), the [`BufMut`] trait on
//! `Vec<u8>` (little-endian putters, `put_slice`), and an owned [`Bytes`]
//! buffer returned by `copy_to_bytes`.

/// An owned byte buffer, as returned by [`Buf::copy_to_bytes`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Little-endian getters consume from the
/// front and panic when fewer than the needed bytes remain (callers check
/// `remaining()` first, mirroring the real crate's contract).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Consumes `len` bytes into an owned buffer.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.copy_to_bytes(1).as_ref()[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let b = self.copy_to_bytes(2);
        u16::from_le_bytes(b.as_ref().try_into().expect("2 bytes"))
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_le_bytes(b.as_ref().try_into().expect("4 bytes"))
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_le_bytes(b.as_ref().try_into().expect("8 bytes"))
    }

    /// Consumes a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of slice");
        let out = Bytes {
            data: self[..len].to_vec(),
        };
        *self = &self[len..];
        out
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"tail");

        let mut cur: &[u8] = &buf;
        assert_eq!(cur.remaining(), 1 + 2 + 4 + 8 + 4);
        assert_eq!(cur.get_u8(), 0xAB);
        assert_eq!(cur.get_u16_le(), 0x1234);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.copy_to_bytes(4).to_vec(), b"tail");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur.get_u8(), 3);
        assert_eq!(cur.remaining(), 1);
    }

    #[test]
    fn f64_roundtrip() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_f64_le(std::f64::consts::PI);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_f64_le(), std::f64::consts::PI);
    }
}
