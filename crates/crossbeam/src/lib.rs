//! A minimal, API-compatible stand-in for the `crossbeam` crate, layered
//! over `std::sync::mpsc`, so the workspace builds without network access.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided —
//! the exact surface `sb-comm`'s point-to-point mesh uses. `std`'s mpsc
//! channel has matching semantics for that use: unbounded FIFO, cloneable
//! senders, `recv` erroring once every sender is dropped.

pub mod channel {
    //! Multi-producer channels with the `crossbeam-channel` API shape.

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(5).unwrap();
        let tx2 = tx.clone();
        tx2.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert!(rx.try_recv().is_err(), "drained channel is empty");
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u32>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn crosses_threads() {
        let (tx, rx) = channel::unbounded();
        let t = std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
        t.join().unwrap();
    }
}
