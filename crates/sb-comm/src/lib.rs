//! # sb-comm — a thread-based rank runtime
//!
//! SmartBlock components are, in the paper, MPI executables: every component
//! is launched with some number of processes that share a communicator, use
//! collectives to agree on data decomposition and global reductions, and use
//! point-to-point messages where needed.
//!
//! This crate provides the same programming model on a single machine: each
//! *rank* is an OS thread, and a [`Communicator`] handle gives that thread
//! its rank id, the communicator size, blocking collectives (barrier,
//! broadcast, reduce, allreduce, gather, allgather, scatter, scan,
//! all-to-all) and tagged point-to-point `send`/`recv`.
//!
//! Collectives are *deterministic*: reductions fold contributions in rank
//! order, so results are reproducible regardless of thread scheduling — a
//! property the test suite relies on heavily.
//!
//! ```
//! use sb_comm::launch;
//!
//! let sums = launch(4, |comm| {
//!     let local = (comm.rank() + 1) as u64;
//!     comm.allreduce(local, |a, b| a + b)
//! })
//! .unwrap();
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

mod collective;
mod error;
mod launch;
mod p2p;
mod stopwatch;
pub mod tree;

pub use collective::Communicator;
pub use error::{CommError, CommResult};
pub use launch::{launch, launch_named, LaunchHandle};
pub use stopwatch::Stopwatch;

/// Reduction helpers usable with [`Communicator::allreduce`] and friends.
pub mod ops {
    /// Sum of two values.
    pub fn sum<T: std::ops::Add<Output = T>>(a: T, b: T) -> T {
        a + b
    }

    /// Minimum of two totally ordered values.
    pub fn min<T: PartialOrd>(a: T, b: T) -> T {
        if b < a {
            b
        } else {
            a
        }
    }

    /// Maximum of two totally ordered values.
    pub fn max<T: PartialOrd>(a: T, b: T) -> T {
        if b > a {
            b
        } else {
            a
        }
    }
}
