//! Tree-based collective algorithms over point-to-point messages.
//!
//! The default [`crate::Communicator`] collectives rendezvous through one
//! shared slot: simple, deterministic, and fine for the rank counts a
//! single node hosts. Real MPI implementations use logarithmic
//! communication trees instead; this module provides binomial-tree
//! reduce/broadcast built purely on `send`/`recv`, both as an ablation
//! target (`cargo bench -p sb-bench` compares the two) and as the natural
//! choice when the reduction operand is large and the flat gather's
//! all-inputs-in-one-place behaviour hurts.
//!
//! Determinism note: the tree folds in a fixed structure —
//! `op(subtree_low, subtree_high)` at every merge — so results are
//! reproducible across runs, but the *grouping* differs from the flat
//! fold's strict rank order. For non-associative floating-point ops the
//! two variants may differ in the last bits; tests pin both behaviours.

use crate::collective::Communicator;

const TREE_TAG: u64 = u64::MAX - 77;

/// Binomial-tree reduction to rank 0: `O(log n)` rounds of pairwise
/// merges. Returns `Some` on rank 0, `None` elsewhere.
///
/// Collective: every rank must call it with a semantically identical `op`.
pub fn tree_reduce<T, F>(comm: &Communicator, value: T, op: F) -> Option<T>
where
    T: Send + 'static,
    F: Fn(T, T) -> T,
{
    let rank = comm.rank();
    let size = comm.size();
    let mut acc = value;
    let mut stride = 1usize;
    while stride < size {
        if rank.is_multiple_of(2 * stride) {
            let partner = rank + stride;
            if partner < size {
                let other: T = comm.recv(partner, TREE_TAG);
                acc = op(acc, other);
            }
        } else {
            let partner = rank - stride;
            comm.send(partner, TREE_TAG, acc);
            return None;
        }
        stride *= 2;
    }
    Some(acc)
}

/// Binomial-tree broadcast from rank 0: the mirror image of
/// [`tree_reduce`].
///
/// Collective: rank 0 passes `Some(value)`, the rest pass `None`.
pub fn tree_broadcast<T>(comm: &Communicator, value: Option<T>) -> T
where
    T: Clone + Send + 'static,
{
    let rank = comm.rank();
    let size = comm.size();
    assert_eq!(
        rank == 0,
        value.is_some(),
        "tree_broadcast: exactly rank 0 must supply Some(value)"
    );
    // Receive from the parent (highest set bit), then forward down.
    let mut have: Option<T> = value;
    if rank != 0 {
        // Parent: clear the lowest set bit of rank.
        let parent = rank & (rank - 1);
        have = Some(comm.recv(parent, TREE_TAG + 1));
    }
    let v = have.expect("received or supplied");
    // Children: rank + 2^k for each k above rank's lowest set bit range.
    let lowest = if rank == 0 {
        usize::BITS
    } else {
        rank.trailing_zeros()
    };
    let mut k = 0u32;
    while k < lowest {
        let child = rank + (1usize << k);
        if child >= size {
            break;
        }
        comm.send(child, TREE_TAG + 1, v.clone());
        k += 1;
    }
    v
}

/// Tree-based allreduce: reduce to rank 0, then broadcast back.
pub fn tree_allreduce<T, F>(comm: &Communicator, value: T, op: F) -> T
where
    T: Clone + Send + 'static,
    F: Fn(T, T) -> T,
{
    let reduced = tree_reduce(comm, value, op);
    tree_broadcast(comm, reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch;

    #[test]
    fn tree_reduce_matches_serial_fold_for_associative_ops() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            let out = launch(n, |comm| {
                tree_reduce(&comm, comm.rank() as u64 + 1, |a, b| a + b)
            })
            .unwrap();
            let expect: u64 = (1..=n as u64).sum();
            assert_eq!(out[0], Some(expect), "n={n}");
            assert!(out[1..].iter().all(Option::is_none), "n={n}");
        }
    }

    #[test]
    fn tree_broadcast_reaches_every_rank() {
        for n in [1usize, 2, 3, 6, 9, 16] {
            let out = launch(n, |comm| {
                let v = (comm.rank() == 0).then(|| vec![42u8, 7]);
                tree_broadcast(&comm, v)
            })
            .unwrap();
            assert!(out.iter().all(|v| v == &vec![42u8, 7]), "n={n}");
        }
    }

    #[test]
    fn tree_allreduce_agrees_with_flat_allreduce() {
        for n in [1usize, 3, 5, 8, 13] {
            let out = launch(n, |comm| {
                let v = (comm.rank() * 3 + 1) as i64;
                let tree = tree_allreduce(&comm, v, |a, b| a + b);
                let flat = comm.allreduce(v, |a, b| a + b);
                (tree, flat)
            })
            .unwrap();
            for (tree, flat) in out {
                assert_eq!(tree, flat, "n={n}");
            }
        }
    }

    #[test]
    fn tree_ops_work_on_large_payloads() {
        let out = launch(6, |comm| {
            let v = vec![comm.rank() as f64; 10_000];
            tree_allreduce(&comm, v, |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            })
        })
        .unwrap();
        let expect = (0..6).sum::<usize>() as f64;
        for v in out {
            assert_eq!(v.len(), 10_000);
            assert!(v.iter().all(|&x| x == expect));
        }
    }

    #[test]
    fn tree_and_flat_interleave_without_cross_talk() {
        launch(4, |comm| {
            for round in 0..20u64 {
                let t = tree_allreduce(&comm, round, |a, b| a + b);
                assert_eq!(t, 4 * round);
                let f = comm.allreduce(round + 1, |a, b| a + b);
                assert_eq!(f, 4 * (round + 1));
            }
        })
        .unwrap();
    }
}
