//! The [`Communicator`] handle and its blocking collective operations.
//!
//! All ranks of a communicator must call the same sequence of collectives
//! with compatible arguments, exactly as in MPI. Reductions fold inputs in
//! rank order so results are deterministic across runs.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::p2p::{Endpoint, Packet};

/// One collective "slot" shared by all ranks of a communicator.
///
/// The protocol is a two-phase rendezvous: every rank deposits its
/// contribution, the last depositor computes the combined result, then every
/// rank picks the result up; the last pickup resets the slot for the next
/// collective. Ranks arriving for collective *k+1* while *k* is still being
/// picked up block until the reset.
struct CollSlot {
    phase: Phase,
    inputs: Vec<Option<Box<dyn Any + Send>>>,
    deposited: usize,
    output: Option<Arc<dyn Any + Send + Sync>>,
    picked: usize,
    epoch: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Deposit,
    Pickup,
}

pub(crate) struct Shared {
    slot: Mutex<CollSlot>,
    cond: Condvar,
}

impl Shared {
    pub(crate) fn new(size: usize) -> Self {
        Shared {
            slot: Mutex::new(CollSlot {
                phase: Phase::Deposit,
                inputs: (0..size).map(|_| None).collect(),
                deposited: 0,
                output: None,
                picked: 0,
                epoch: 0,
            }),
            cond: Condvar::new(),
        }
    }
}

/// A per-rank handle onto a communicator of `size` thread-ranks.
///
/// The handle is moved into its rank's thread; it is `Send` but deliberately
/// not `Sync` (each rank owns private receive-side state). Collectives block
/// until every rank of the communicator has made the matching call.
pub struct Communicator {
    rank: usize,
    size: usize,
    shared: Arc<Shared>,
    endpoint: Endpoint,
}

impl std::fmt::Debug for Communicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

impl Communicator {
    /// Builds the `size` per-rank handles of a fresh communicator.
    pub(crate) fn create(size: usize) -> Vec<Communicator> {
        assert!(size > 0, "communicator must have at least one rank");
        let shared = Arc::new(Shared::new(size));
        let endpoints = Endpoint::create(size);
        endpoints
            .into_iter()
            .enumerate()
            .map(|(rank, endpoint)| Communicator {
                rank,
                size,
                shared: Arc::clone(&shared),
                endpoint,
            })
            .collect()
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Core rendezvous: deposit `input`, let the final depositor run
    /// `combine` over all inputs (in rank order), and hand every rank an
    /// `Arc` of the result.
    ///
    /// Every rank must pass a semantically identical `combine`; only the last
    /// arriver's closure runs, exactly like an MPI reduction op.
    fn collective<R, F>(&self, input: Box<dyn Any + Send>, combine: F) -> Arc<R>
    where
        R: Send + Sync + 'static,
        F: FnOnce(Vec<Box<dyn Any + Send>>) -> R,
    {
        let mut slot = self.shared.slot.lock();
        // Gate entry: the previous collective must be fully picked up.
        while slot.phase != Phase::Deposit {
            self.shared.cond.wait(&mut slot);
        }
        debug_assert!(
            slot.inputs[self.rank].is_none(),
            "rank {} double-deposited in a collective",
            self.rank
        );
        slot.inputs[self.rank] = Some(input);
        slot.deposited += 1;
        if slot.deposited == self.size {
            let inputs: Vec<Box<dyn Any + Send>> = slot
                .inputs
                .iter_mut()
                .map(|i| i.take().expect("all ranks deposited"))
                .collect();
            let result: Arc<R> = Arc::new(combine(inputs));
            slot.output = Some(result);
            slot.phase = Phase::Pickup;
            self.shared.cond.notify_all();
        } else {
            let my_epoch = slot.epoch;
            while slot.phase != Phase::Pickup || slot.epoch != my_epoch {
                self.shared.cond.wait(&mut slot);
            }
        }
        let out = slot
            .output
            .as_ref()
            .expect("output present in pickup phase")
            .clone();
        slot.picked += 1;
        if slot.picked == self.size {
            slot.phase = Phase::Deposit;
            slot.deposited = 0;
            slot.picked = 0;
            slot.output = None;
            slot.epoch += 1;
            self.shared.cond.notify_all();
        }
        drop(slot);
        out.downcast::<R>()
            .expect("collective result type mismatch across ranks")
    }

    /// Blocks until every rank of the communicator reaches the barrier.
    pub fn barrier(&self) {
        let _ = self.collective::<(), _>(Box::new(()), |_| ());
    }

    /// Broadcasts `value` from `root` to all ranks. Non-root ranks pass
    /// `None`; the root must pass `Some`.
    pub fn broadcast<T>(&self, root: usize, value: Option<T>) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        assert!(root < self.size, "broadcast root {root} out of range");
        assert_eq!(
            self.rank == root,
            value.is_some(),
            "broadcast: exactly the root rank must supply Some(value)"
        );
        let out = self.collective::<T, _>(Box::new(value), move |mut inputs| {
            let boxed = inputs.swap_remove(root);
            boxed
                .downcast::<Option<T>>()
                .expect("broadcast payload type mismatch")
                .expect("root deposited Some")
        });
        (*out).clone()
    }

    /// Gathers one value from every rank to `root`, in rank order.
    pub fn gather<T>(&self, root: usize, value: T) -> Option<Vec<T>>
    where
        T: Clone + Send + Sync + 'static,
    {
        assert!(root < self.size, "gather root {root} out of range");
        let out = self.all_inputs::<T>(value);
        (self.rank == root).then(|| (*out).clone())
    }

    /// Gathers one value from every rank to every rank, in rank order.
    pub fn allgather<T>(&self, value: T) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        (*self.all_inputs::<T>(value)).clone()
    }

    /// Like [`Communicator::allgather`], but hands every rank a shared,
    /// non-cloned view of the gathered vector. Preferred for large payloads
    /// (`Vec<f64>` chunks and the like) where per-rank clones would double
    /// memory traffic.
    pub fn allgather_shared<T>(&self, value: T) -> Arc<Vec<T>>
    where
        T: Send + Sync + 'static,
    {
        self.all_inputs::<T>(value)
    }

    fn all_inputs<T>(&self, value: T) -> Arc<Vec<T>>
    where
        T: Send + Sync + 'static,
    {
        self.collective::<Vec<T>, _>(Box::new(value), |inputs| {
            inputs
                .into_iter()
                .map(|b| *b.downcast::<T>().expect("gather payload type mismatch"))
                .collect()
        })
    }

    /// Reduces one value per rank down to `root` with `op`, folding in rank
    /// order (deterministic). Returns `Some` on the root only.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        assert!(root < self.size, "reduce root {root} out of range");
        let out = self.fold_inputs(value, op);
        (self.rank == root).then(|| (*out).clone())
    }

    /// Reduces one value per rank with `op` and returns the result on every
    /// rank. Folds in rank order (deterministic).
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        (*self.fold_inputs(value, op)).clone()
    }

    fn fold_inputs<T, F>(&self, value: T, op: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        self.collective::<T, _>(Box::new(value), move |inputs| {
            inputs
                .into_iter()
                .map(|b| *b.downcast::<T>().expect("reduce payload type mismatch"))
                .reduce(&op)
                .expect("communicator is non-empty")
        })
    }

    /// Inclusive prefix reduction: rank *r* receives
    /// `op(v_0, op(v_1, ... v_r))` folded in rank order.
    pub fn scan<T, F>(&self, value: T, op: F) -> T
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        let rank = self.rank;
        let out = self.collective::<Vec<T>, _>(Box::new(value), move |inputs| {
            let values: Vec<T> = inputs
                .into_iter()
                .map(|b| *b.downcast::<T>().expect("scan payload type mismatch"))
                .collect();
            let mut prefixes = Vec::with_capacity(values.len());
            let mut iter = values.into_iter();
            let mut acc = iter.next().expect("communicator is non-empty");
            prefixes.push(acc.clone());
            for v in iter {
                acc = op(acc, v);
                prefixes.push(acc.clone());
            }
            prefixes
        });
        out[rank].clone()
    }

    /// Exclusive prefix reduction: rank 0 receives `None`, rank *r > 0*
    /// receives the fold of ranks `0..r`.
    pub fn exscan<T, F>(&self, value: T, op: F) -> Option<T>
    where
        T: Clone + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        let rank = self.rank;
        let out = self.collective::<Vec<T>, _>(Box::new(value), move |inputs| {
            let values: Vec<T> = inputs
                .into_iter()
                .map(|b| *b.downcast::<T>().expect("exscan payload type mismatch"))
                .collect();
            let mut prefixes = Vec::with_capacity(values.len());
            let mut acc: Option<T> = None;
            for v in values {
                if let Some(a) = acc.clone() {
                    prefixes.push(a.clone());
                    acc = Some(op(a, v));
                } else {
                    acc = Some(v);
                }
            }
            prefixes
        });
        (rank > 0).then(|| out[rank - 1].clone())
    }

    /// Scatters one element of `values` (root-only, length == `size`) to
    /// each rank in rank order.
    pub fn scatter<T>(&self, root: usize, values: Option<Vec<T>>) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        assert!(root < self.size, "scatter root {root} out of range");
        assert_eq!(
            self.rank == root,
            values.is_some(),
            "scatter: exactly the root rank must supply Some(values)"
        );
        if let Some(v) = &values {
            assert_eq!(
                v.len(),
                self.size,
                "scatter: root must supply exactly one value per rank"
            );
        }
        let rank = self.rank;
        let out = self.collective::<Vec<T>, _>(Box::new(values), move |mut inputs| {
            let boxed = inputs.swap_remove(root);
            boxed
                .downcast::<Option<Vec<T>>>()
                .expect("scatter payload type mismatch")
                .expect("root deposited Some")
        });
        out[rank].clone()
    }

    /// All-to-all personalized exchange: rank *r* supplies one value per
    /// destination and receives one value per source (`out[s]` came from
    /// rank *s*'s `values[r]`).
    pub fn alltoall<T>(&self, values: Vec<T>) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        assert_eq!(
            values.len(),
            self.size,
            "alltoall: supply exactly one value per rank"
        );
        let rank = self.rank;
        let out = self.collective::<Vec<Vec<T>>, _>(Box::new(values), |inputs| {
            inputs
                .into_iter()
                .map(|b| {
                    *b.downcast::<Vec<T>>()
                        .expect("alltoall payload type mismatch")
                })
                .collect()
        });
        out.iter().map(|row| row[rank].clone()).collect()
    }

    /// Splits the communicator MPI-style: ranks passing the same `color`
    /// land in a fresh sub-communicator together; ranks within a color are
    /// ordered by `key` (ties broken by parent rank). Ranks passing
    /// `color = None` receive `None` (the `MPI_UNDEFINED` case).
    ///
    /// Collective: every rank of the parent must call it.
    ///
    /// ```
    /// use sb_comm::launch;
    /// let sums = launch(4, |comm| {
    ///     let sub = comm.split(Some((comm.rank() % 2) as u64), 0).unwrap();
    ///     sub.allreduce(comm.rank(), |a, b| a + b)
    /// })
    /// .unwrap();
    /// assert_eq!(sums, vec![0 + 2, 1 + 3, 0 + 2, 1 + 3]);
    /// ```
    pub fn split(&self, color: Option<u64>, key: i64) -> Option<Communicator> {
        let rank = self.rank;
        let all = self.allgather((color, key, rank));
        let my_color = color?;
        // Members of my color, ordered by (key, parent rank).
        let mut members: Vec<(i64, usize)> = all
            .iter()
            .filter_map(|&(c, k, r)| (c == Some(my_color)).then_some((k, r)))
            .collect();
        members.sort_unstable();
        let my_new_rank = members
            .iter()
            .position(|&(_, r)| r == rank)
            .expect("caller is a member of its own color");

        // The lowest parent rank of each color creates that color's handles
        // and distributes them to the members via point-to-point messages.
        let leader = members[0].1;
        const SPLIT_TAG: u64 = u64::MAX - 51;
        if rank == leader {
            let comms = Communicator::create(members.len());
            let mut mine = None;
            for ((_, dest), comm) in members.iter().zip(comms) {
                if *dest == rank {
                    debug_assert_eq!(comm.rank(), my_new_rank);
                    mine = Some(comm);
                } else {
                    self.send(*dest, SPLIT_TAG, comm);
                }
            }
            Some(mine.expect("leader is one of its members"))
        } else {
            let comm: Communicator = self.recv(leader, SPLIT_TAG);
            debug_assert_eq!(comm.rank(), my_new_rank);
            Some(comm)
        }
    }

    /// Sends `value` to `dst` under `tag`. Never blocks (the underlying
    /// queues are unbounded, like MPI eager sends at these payload sizes).
    ///
    /// Tags at and above `u64::MAX - 127` are reserved for internal
    /// protocols ([`Communicator::split`], [`crate::tree`]); user tags must
    /// stay below that range.
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, value: T) {
        assert!(dst < self.size, "send destination {dst} out of range");
        self.endpoint.send(self.rank, dst, tag, Box::new(value));
    }

    /// Blocks until a message with `tag` from `src` arrives, and returns it.
    ///
    /// Panics if the payload type does not match `T`. Like `MPI_Recv`, a
    /// receive posted against a rank that already exited without sending
    /// blocks indefinitely — the workflow layer's stream timeouts are the
    /// intended safety net for mis-wired programs.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        assert!(src < self.size, "recv source {src} out of range");
        let packet = self.endpoint.recv(src, tag);
        *packet
            .payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("recv: payload type mismatch from rank {src} tag {tag}"))
    }

    /// Non-blocking receive: returns a matching queued message if one has
    /// already arrived.
    pub fn try_recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Option<T> {
        assert!(src < self.size, "recv source {src} out of range");
        let packet = self.endpoint.try_recv(src, tag)?;
        Some(*packet.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!("try_recv: payload type mismatch from rank {src} tag {tag}")
        }))
    }

    /// Blocks for the next message carrying `tag` from *any* rank; returns
    /// `(source_rank, value)`.
    pub fn recv_any<T: Send + 'static>(&self, tag: u64) -> (usize, T) {
        let packet = self.endpoint.recv_any(tag);
        let src = packet.src;
        (
            src,
            *packet.payload.downcast::<T>().unwrap_or_else(|_| {
                panic!("recv_any: payload type mismatch from rank {src} tag {tag}")
            }),
        )
    }
}

/// A small FIFO of out-of-order packets, used by the endpoint to implement
/// (src, tag) matching over a single per-rank queue.
pub(crate) type Stash = VecDeque<Packet>;

#[cfg(test)]
mod tests {
    use crate::launch;

    #[test]
    fn barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let fail = AtomicUsize::new(0);
        launch(8, |comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            if before.load(Ordering::SeqCst) != 8 {
                fail.fetch_add(1, Ordering::SeqCst);
            }
        })
        .unwrap();
        assert_eq!(fail.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn broadcast_reaches_every_rank() {
        let got = launch(5, |comm| {
            if comm.rank() == 2 {
                comm.broadcast(2, Some(vec![9u32, 8, 7]))
            } else {
                comm.broadcast(2, None::<Vec<u32>>)
            }
        })
        .unwrap();
        for v in got {
            assert_eq!(v, vec![9, 8, 7]);
        }
    }

    #[test]
    fn allreduce_sum_matches_serial_fold() {
        for n in [1usize, 2, 3, 7, 16] {
            let out = launch(n, |comm| {
                comm.allreduce((comm.rank() + 1) as u64, |a, b| a + b)
            })
            .unwrap();
            let expect: u64 = (1..=n as u64).sum();
            assert!(out.iter().all(|&v| v == expect), "n={n}");
        }
    }

    #[test]
    fn allreduce_min_max() {
        let out = launch(6, |comm| {
            let v = [5.0f64, -3.0, 8.5, 0.0, 2.5, -3.5][comm.rank()];
            (
                comm.allreduce(v, crate::ops::min),
                comm.allreduce(v, crate::ops::max),
            )
        })
        .unwrap();
        for (mn, mx) in out {
            assert_eq!(mn, -3.5);
            assert_eq!(mx, 8.5);
        }
    }

    #[test]
    fn reduce_delivers_only_to_root() {
        let out = launch(4, |comm| comm.reduce(1, comm.rank() as i64, |a, b| a + b)).unwrap();
        assert_eq!(out[0], None);
        assert_eq!(out[1], Some(1 + 2 + 3));
        assert_eq!(out[2], None);
        assert_eq!(out[3], None);
    }

    #[test]
    fn gather_and_allgather_preserve_rank_order() {
        let out = launch(5, |comm| {
            let g = comm.gather(0, comm.rank() * 10);
            let ag = comm.allgather(comm.rank() * 10);
            (g, ag)
        })
        .unwrap();
        let expect: Vec<usize> = vec![0, 10, 20, 30, 40];
        assert_eq!(out[0].0.as_ref(), Some(&expect));
        for (g, ag) in &out[1..] {
            assert!(g.is_none());
            assert_eq!(ag, &expect);
        }
        assert_eq!(out[0].1, expect);
    }

    #[test]
    fn allgather_shared_is_one_copy() {
        let out = launch(3, |comm| comm.allgather_shared(vec![comm.rank(); 2])).unwrap();
        // All ranks see the same Arc contents.
        for arc in &out {
            assert_eq!(**arc, vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
        }
    }

    #[test]
    fn scan_and_exscan_prefixes() {
        let out = launch(5, |comm| {
            let v = (comm.rank() + 1) as u64;
            (comm.scan(v, |a, b| a + b), comm.exscan(v, |a, b| a + b))
        })
        .unwrap();
        let scans: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        let exscans: Vec<Option<u64>> = out.iter().map(|(_, e)| *e).collect();
        assert_eq!(scans, vec![1, 3, 6, 10, 15]);
        assert_eq!(exscans, vec![None, Some(1), Some(3), Some(6), Some(10)]);
    }

    #[test]
    fn scatter_hands_each_rank_its_slot() {
        let out = launch(4, |comm| {
            let values = (comm.rank() == 0).then(|| vec!["a", "b", "c", "d"]);
            comm.scatter(0, values)
        })
        .unwrap();
        assert_eq!(out, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn alltoall_transposes() {
        let out = launch(3, |comm| {
            let values: Vec<(usize, usize)> = (0..3).map(|dst| (comm.rank(), dst)).collect();
            comm.alltoall(values)
        })
        .unwrap();
        for (rank, row) in out.iter().enumerate() {
            for (src, &(from, to)) in row.iter().enumerate() {
                assert_eq!(from, src);
                assert_eq!(to, rank);
            }
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let out = launch(4, |comm| {
            let mut acc = 0u64;
            for round in 0..100u64 {
                acc += comm.allreduce(round + comm.rank() as u64, |a, b| a + b);
            }
            acc
        })
        .unwrap();
        // Every round: sum of (round + r) over r in 0..4 = 4*round + 6.
        let expect: u64 = (0..100u64).map(|r| 4 * r + 6).sum();
        assert!(out.iter().all(|&v| v == expect));
    }

    #[test]
    fn send_recv_basic_and_tag_matching() {
        let out = launch(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 123u32);
                comm.send(1, 9, 456u32);
                0
            } else {
                // Receive in reverse tag order to exercise the stash.
                let b: u32 = comm.recv(0, 9);
                let a: u32 = comm.recv(0, 7);
                assert_eq!((a, b), (123, 456));
                1
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn recv_any_reports_source() {
        let out = launch(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = vec![];
                for _ in 0..3 {
                    let (src, v): (usize, usize) = comm.recv_any(1);
                    assert_eq!(v, src * 2);
                    seen.push(src);
                }
                seen.sort_unstable();
                assert_eq!(seen, vec![1, 2, 3]);
            } else {
                comm.send(0, 1, comm.rank() * 2);
            }
        })
        .unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        launch(2, |comm| {
            if comm.rank() == 0 {
                assert!(comm.try_recv::<u32>(1, 5).is_none());
                comm.barrier(); // let rank 1 send
                comm.barrier(); // ensure delivery ordering via rendezvous
                                // After both barriers the message is in flight or arrived;
                                // recv (blocking) must find it.
                let v: u32 = comm.recv(1, 5);
                assert_eq!(v, 77);
            } else {
                comm.barrier();
                comm.send(0, 5, 77u32);
                comm.barrier();
            }
        })
        .unwrap();
    }

    #[test]
    fn split_partitions_by_color_with_key_order() {
        let out = launch(6, |comm| {
            // Colors: even/odd parent rank; key reverses the parent order.
            let color = Some((comm.rank() % 2) as u64);
            let key = -(comm.rank() as i64);
            let sub = comm.split(color, key).expect("everyone has a color");
            // Each sub-communicator has 3 ranks and works.
            let members = sub.allgather(comm.rank());
            let sum = sub.allreduce(1u32, |a, b| a + b);
            (sub.rank(), sub.size(), members, sum)
        })
        .unwrap();
        for (parent_rank, (sub_rank, sub_size, members, sum)) in out.iter().enumerate() {
            assert_eq!(*sub_size, 3);
            assert_eq!(*sum, 3);
            // Reversed key ordering: highest parent rank becomes rank 0.
            let mut expect: Vec<usize> = (0..6).filter(|r| r % 2 == parent_rank % 2).collect();
            expect.reverse();
            assert_eq!(members, &expect);
            assert_eq!(expect[*sub_rank], parent_rank);
        }
    }

    #[test]
    fn split_with_undefined_color_returns_none() {
        let out = launch(4, |comm| {
            let color = (comm.rank() != 0).then_some(7u64);
            match comm.split(color, 0) {
                None => {
                    assert_eq!(comm.rank(), 0);
                    0
                }
                Some(sub) => {
                    assert_eq!(sub.size(), 3);
                    sub.allreduce(1usize, |a, b| a + b)
                }
            }
        })
        .unwrap();
        assert_eq!(out, vec![0, 3, 3, 3]);
    }

    #[test]
    fn split_subcommunicators_are_independent() {
        launch(4, |comm| {
            let sub = comm.split(Some((comm.rank() / 2) as u64), 0).unwrap();
            // Interleave parent and sub collectives; no cross-talk.
            for round in 0..10u64 {
                let parent_sum = comm.allreduce(round, |a, b| a + b);
                assert_eq!(parent_sum, 4 * round);
                let sub_sum = sub.allreduce(round, |a, b| a + b);
                assert_eq!(sub_sum, 2 * round);
            }
        })
        .unwrap();
    }

    #[test]
    fn single_rank_communicator_works() {
        let out = launch(1, |comm| {
            comm.barrier();
            let s = comm.allreduce(41, |a, b| a + b);
            let g = comm.allgather(s);

            comm.broadcast(0, Some(g[0] + 1))
        })
        .unwrap();
        assert_eq!(out, vec![42]);
    }
}
